//! The telemetry registry's padded-cell coherent-collect protocol
//! (`MetricsRegistry::snapshot` in `asgd-telemetry`) as an explorable step
//! function — the registry-wide generalisation of
//! [`ShardedCounterModel`](crate::sharded_model::ShardedCounterModel).
//!
//! A telemetry counter stripes its updates over cache-line-padded cells
//! (one per writer thread); the registry snapshot assembles a cross-metric
//! state by reading every monotone cell of every counter, one atomic load
//! at a time. Exactly like the sharded store's progress vector, the *cut*
//! across cells can be torn: counter A's cell read before a burst, counter
//! B's after, yielding per-metric totals the registry never simultaneously
//! held. The shipped snapshot repairs this with double-collect validation
//! — collect every cell, collect again, and only flag the snapshot
//! `coherent` when a whole validation pass observes no movement — and then
//! **derives the published totals from the validated collect itself**.
//! That last clause matters: a reader that validates but then re-reads the
//! cells to build its totals re-opens the race it just closed (movement
//! between the validated instant and the re-read goes out flagged
//! coherent). [`CollectMode::Validated`] models the shipped protocol;
//! [`CollectMode::SinglePass`] is the deliberately seeded bug twin that
//! publishes its first collect as coherent with no validation pass, which
//! the explorer tears with a single adversarial preemption and minimizes
//! to a replayable trace.
//!
//! Invariants, checked after every atomic step:
//!
//! * **Coherence**: per-metric totals published as coherent must equal an
//!   instantaneous totals state the cells actually passed through;
//! * **Monotone reads**: every collected cell is ≤ its live value (reads
//!   never invent progress), and the live totals always equal the bump
//!   history's last state;
//! * **Honest failure**: a publish flagged *incoherent* (validation
//!   retries exhausted) is allowed to be torn — the flag, not the vector,
//!   is the contract.

use crate::explore::{Schedulable, StepStatus};

/// Atomicity the modeled snapshot claims for its collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectMode {
    /// The shipped protocol: collect every cell, re-collect until a whole
    /// validation pass observes no movement (bounded retries; exhaustion
    /// publishes the last collect flagged incoherent), and derive the
    /// published totals from the validated collect.
    Validated,
    /// Seeded bug: the first per-cell collect is published as coherent
    /// with no validation pass.
    SinglePass,
}

/// Model parameters: `writers × bumps_each` striped counter bumps against
/// one snapshot reader assembling cross-metric totals.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryCellModel {
    /// Registered counters (the metrics whose totals the snapshot
    /// publishes).
    pub metrics: usize,
    /// Padded cells per counter (the model's `STRIPES`).
    pub stripes: usize,
    /// Concurrent writer threads; writer `t` always bumps stripe
    /// `t % stripes`, like the registry's per-thread stripe assignment.
    pub writers: usize,
    /// Bumps each writer applies, rotating through metrics from metric 0
    /// (the cross-metric spread that tears a single-pass collect).
    pub bumps_each: usize,
    /// Validation passes the reader may retry beyond the first (the
    /// model's `COHERENT_RETRIES`).
    pub retries: usize,
    /// Collect atomicity under test.
    pub collect_mode: CollectMode,
}

impl TelemetryCellModel {
    /// The headline race: one writer bumping two different counters while
    /// the reader assembles its totals. One adversarial preemption between
    /// the reader's two cell loads tears the [`CollectMode::SinglePass`]
    /// twin's published snapshot.
    #[must_use]
    pub fn contended(collect_mode: CollectMode) -> Self {
        Self {
            metrics: 2,
            stripes: 1,
            writers: 1,
            bumps_each: 2,
            retries: 2,
            collect_mode,
        }
    }

    /// A deeper configuration: two writers on distinct stripes keep both
    /// counters moving, so the validation-retry and exhaustion paths are
    /// actually exercised across a 2×2 cell matrix.
    #[must_use]
    pub fn churning(collect_mode: CollectMode) -> Self {
        Self {
            metrics: 2,
            stripes: 2,
            writers: 2,
            bumps_each: 2,
            retries: 2,
            collect_mode,
        }
    }

    /// Cells in the registry: `metrics × stripes`, row-major by metric.
    fn cells(&self) -> usize {
        self.metrics * self.stripes
    }

    /// Per-metric totals of a row-major cell vector.
    fn totals(&self, cells: &[u64]) -> Vec<u64> {
        cells.chunks(self.stripes).map(|c| c.iter().sum()).collect()
    }
}

/// Where the reader is in its collect/validate program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderPc {
    /// Initial collect, next reading cell `i`.
    Collect(usize),
    /// Validation pass, next re-reading cell `i`; `stable` is true while
    /// no re-read of this pass has observed movement.
    Validate { i: usize, stable: bool },
}

/// Published per-metric totals plus the coherence the reader claimed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Published {
    totals: Vec<u64>,
    coherent: bool,
}

/// The modeled cells plus every thread's control state.
#[derive(Debug, Clone)]
pub struct TelemetryCellState {
    /// Live cells, row-major by metric (`metric × stripes + stripe`).
    cells: Vec<u64>,
    /// Every instantaneous per-metric totals state, in order — bumps are
    /// the only mutations and each changes exactly one total, so this is
    /// the exact set of totals the registry passed through.
    history: Vec<Vec<u64>>,
    /// Bumps applied by each writer so far.
    bumps_done: Vec<usize>,
    reader_pc: ReaderPc,
    /// The reader's in-progress per-cell collect.
    collect: Vec<u64>,
    retries_left: usize,
    published: Option<Published>,
}

impl Schedulable for TelemetryCellModel {
    type State = TelemetryCellState;

    fn init(&self) -> TelemetryCellState {
        TelemetryCellState {
            cells: vec![0; self.cells()],
            history: vec![vec![0; self.metrics]],
            bumps_done: vec![0; self.writers],
            reader_pc: ReaderPc::Collect(0),
            collect: Vec::new(),
            retries_left: self.retries,
            published: None,
        }
    }

    fn thread_count(&self) -> usize {
        self.writers + 1
    }

    fn step(&self, state: &mut TelemetryCellState, tid: usize) -> StepStatus {
        if tid < self.writers {
            self.writer_step(state, tid)
        } else {
            self.reader_step(state)
        }
    }

    fn check(&self, state: &TelemetryCellState, _done: bool) -> Result<(), String> {
        // The live totals are, by construction, the last recorded state; a
        // mismatch is a model bug, caught loudly.
        let live = self.totals(&state.cells);
        if state.history.last() != Some(&live) {
            return Err(format!(
                "history desynchronised: live {:?} vs recorded {:?}",
                live,
                state.history.last()
            ));
        }
        // Monotone reads: a collected cell can never exceed its live value
        // (cells only go up after the read).
        for (i, &v) in state.collect.iter().enumerate() {
            if v > state.cells[i] {
                return Err(format!(
                    "collect invented progress: cell {i} read {v} > live {}",
                    state.cells[i]
                ));
            }
        }
        if let Some(p) = &state.published {
            if p.totals.len() != self.metrics {
                return Err(format!(
                    "published {} totals for {} metrics",
                    p.totals.len(),
                    self.metrics
                ));
            }
            // The invariant the seeded twin breaks: coherent-flagged
            // totals must be a state the registry simultaneously held.
            if p.coherent && !state.history.contains(&p.totals) {
                return Err(format!(
                    "torn snapshot published as coherent: {:?} was never an \
                     instantaneous totals state (history {:?})",
                    p.totals, state.history
                ));
            }
        }
        Ok(())
    }
}

impl TelemetryCellModel {
    fn writer_step(&self, state: &mut TelemetryCellState, tid: usize) -> StepStatus {
        // Bumps rotate through metrics from metric 0 on the writer's own
        // stripe — the cross-metric spread that tears a single-pass read.
        let metric = state.bumps_done[tid] % self.metrics;
        let stripe = tid % self.stripes;
        state.cells[metric * self.stripes + stripe] += 1;
        let totals = self.totals(&state.cells);
        state.history.push(totals);
        state.bumps_done[tid] += 1;
        if state.bumps_done[tid] == self.bumps_each {
            StepStatus::Done
        } else {
            StepStatus::Runnable
        }
    }

    fn reader_step(&self, state: &mut TelemetryCellState) -> StepStatus {
        match state.reader_pc {
            ReaderPc::Collect(i) => {
                state.collect.push(state.cells[i]);
                if i + 1 < self.cells() {
                    state.reader_pc = ReaderPc::Collect(i + 1);
                    return StepStatus::Runnable;
                }
                match self.collect_mode {
                    CollectMode::SinglePass => {
                        // The seeded bug: the first collect goes out as
                        // coherent — no pass ever validated the cut.
                        self.publish(state, true)
                    }
                    CollectMode::Validated => {
                        state.reader_pc = ReaderPc::Validate { i: 0, stable: true };
                        StepStatus::Runnable
                    }
                }
            }
            ReaderPc::Validate { i, stable } => {
                let again = state.cells[i];
                let stable = stable && again == state.collect[i];
                state.collect[i] = again;
                if i + 1 < self.cells() {
                    state.reader_pc = ReaderPc::Validate { i: i + 1, stable };
                    return StepStatus::Runnable;
                }
                if stable {
                    // A whole pass saw no movement: monotone cells pin
                    // every entry through the instant between the passes,
                    // and the totals are derived from that pinned collect.
                    self.publish(state, true)
                } else if state.retries_left == 0 {
                    // Honest failure: the last collect, flagged torn.
                    self.publish(state, false)
                } else {
                    state.retries_left -= 1;
                    state.reader_pc = ReaderPc::Validate { i: 0, stable: true };
                    StepStatus::Runnable
                }
            }
        }
    }

    fn publish(&self, state: &mut TelemetryCellState, coherent: bool) -> StepStatus {
        state.published = Some(Published {
            totals: self.totals(&state.collect),
            coherent,
        });
        StepStatus::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, ReplayOutcome};

    #[test]
    fn the_shipped_validated_collect_verifies_under_churn() {
        let model = TelemetryCellModel::churning(CollectMode::Validated);
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
        assert!(report.schedules > 50, "exhaustiveness: {report:?}");
    }

    #[test]
    fn single_pass_publishes_torn_totals_and_the_trace_replays_identically() {
        let model = TelemetryCellModel::contended(CollectMode::SinglePass);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report.counterexample.expect("single pass must tear");
        assert!(
            cex.violation.message.contains("torn snapshot"),
            "{:?}",
            cex.violation
        );
        // The classic torn cut needs exactly one adversarial preemption:
        // the writer's cross-metric burst lands between two of the
        // reader's cell loads.
        assert_eq!(cex.preemptions, 1, "{cex:?}");
        match replay(&model, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("minimized trace must reproduce the tear, got {other:?}"),
        }
        // And the artifact text round-trips to the same trace.
        let decoded = asgd_shmem::sched::decode_schedule(&cex.artifact()).expect("artifact parses");
        assert_eq!(decoded, cex.trace);
    }

    #[test]
    fn single_pass_is_safe_with_a_single_bump() {
        // One bump mutates one total once, so any assembled totals vector
        // equals the before- or after-state — sanity that the model only
        // reports real torn cuts, not every interleaving.
        let model = TelemetryCellModel {
            metrics: 2,
            stripes: 1,
            writers: 1,
            bumps_each: 1,
            retries: 2,
            collect_mode: CollectMode::SinglePass,
        };
        let report = Explorer::with_bound(3).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
    }

    #[test]
    fn striping_isolates_writers_but_not_the_cut() {
        // Two writers on distinct stripes never touch the same cell — the
        // padding discipline — yet a single-pass collect across the 2×2
        // matrix still tears, because isolation of *writes* does nothing
        // for the atomicity of a multi-cell *read*.
        let model = TelemetryCellModel::churning(CollectMode::SinglePass);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report
            .counterexample
            .expect("striping must not save a single-pass read");
        assert!(cex.violation.message.contains("torn snapshot"));
    }

    #[test]
    fn exhausted_retries_publish_the_last_collect_flagged_incoherent() {
        // Deterministic schedule through the honest-failure path: the
        // reader collects [0, 0], a writer bump dirties metric 0 so the
        // validation pass is unstable, and with zero retries the reader
        // publishes the repaired collect flagged incoherent.
        let model = TelemetryCellModel {
            metrics: 2,
            stripes: 1,
            writers: 1,
            bumps_each: 1,
            retries: 0,
            collect_mode: CollectMode::Validated,
        };
        let reader = model.writers; // reader tid follows the writers
        let mut state = model.init();
        assert_eq!(model.step(&mut state, reader), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, reader), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, 0), StepStatus::Done);
        assert_eq!(model.step(&mut state, reader), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, reader), StepStatus::Done);
        assert_eq!(
            state.published,
            Some(Published {
                totals: vec![1, 0],
                coherent: false
            })
        );
        assert!(model.check(&state, true).is_ok());
    }
}
