//! Cost of one stochastic-gradient evaluation per workload — the unit of
//! work each SGD iteration performs besides memory traffic.

use asgd_oracle::{
    GradientOracle, LinearRegression, NoisyQuadratic, RidgeLogistic, SparseQuadratic,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_oracles(c: &mut Criterion) {
    let d = 32;
    let mut group = c.benchmark_group("sample_gradient_d32");
    group.sample_size(50);
    group.measurement_time(std::time::Duration::from_secs(2));

    let x = vec![0.5; d];
    let mut g = vec![0.0; d];

    let quad = NoisyQuadratic::new(d, 0.5).expect("valid");
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("noisy_quadratic", |b| {
        b.iter(|| quad.sample_gradient(black_box(&x), &mut rng, &mut g))
    });

    let sparse = SparseQuadratic::uniform(d, 1.0, 0.5).expect("valid");
    let mut rng = StdRng::seed_from_u64(2);
    group.bench_function("sparse_quadratic", |b| {
        b.iter(|| sparse.sample_gradient(black_box(&x), &mut rng, &mut g))
    });

    let linreg = LinearRegression::synthetic(500, d, 0.05, 3).expect("well-conditioned");
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("linear_regression_m500", |b| {
        b.iter(|| linreg.sample_gradient(black_box(&x), &mut rng, &mut g))
    });

    let logreg = RidgeLogistic::synthetic(500, d, 0.1, 0.05, 4).expect("valid lambda");
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function("ridge_logistic_m500", |b| {
        b.iter(|| logreg.sample_gradient(black_box(&x), &mut rng, &mut g))
    });

    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
