//! Cross-validation of §5: the *executed* adversary (simulator) against the
//! *derived* closed forms (theory crate), over a grid of step sizes and
//! delays. This is the strongest reproduction statement in the repo: the
//! paper's algebra and an independent operational model agree to machine
//! precision.

use asyncsgd::prelude::*;
use asyncsgd::theory::lower_bound;
use std::sync::Arc;

fn run_adversary(alpha: f64, tau: u64, x0: f64, sigma: f64, seed: u64) -> f64 {
    let oracle = Arc::new(NoisyQuadratic::new(1, sigma).expect("valid"));
    let run = LockFreeSgd::builder(oracle)
        .threads(2)
        .iterations(tau + 1)
        .learning_rate(alpha)
        .initial_point(vec![x0])
        .scheduler(StaleGradientAdversary::new(0, 1, tau))
        .seed(seed)
        .run();
    run.final_model[0]
}

#[test]
fn closed_form_matches_execution_over_grid() {
    for &alpha in &[0.05, 0.1, 0.25, 0.5] {
        for &tau in &[1_u64, 3, 7, 20, 50] {
            for &x0 in &[1.0, -2.0, 0.3] {
                let measured = run_adversary(alpha, tau, x0, 0.0, 1);
                let predicted = lower_bound::adversarial_iterate(alpha, tau, x0);
                assert!(
                    (measured - predicted).abs() <= 1e-12 * predicted.abs().max(1.0),
                    "α={alpha} τ={tau} x0={x0}: measured {measured} vs {predicted}"
                );
            }
        }
    }
}

#[test]
fn slowdown_is_realised_not_just_predicted() {
    // τ*(α) is the crossover where the stale merge starts dominating; by
    // τ = 2τ* the clean run has contracted to ≈ (α/2)² while the
    // adversarial one is pinned near α/2 — a widening, realised gap.
    for &alpha in &[0.1, 0.2, 0.3] {
        let tau = 2 * lower_bound::required_delay(alpha);
        let adversarial = run_adversary(alpha, tau, 1.0, 0.0, 2).abs();
        let clean = lower_bound::clean_contraction(alpha, tau + 1, 1.0).abs();
        assert!(
            adversarial > 2.0 * clean,
            "α={alpha}, τ={tau}: adversarial {adversarial} vs clean {clean}"
        );
        assert!(adversarial >= lower_bound::adversarial_magnitude_floor(alpha, 1.0) - 1e-12);
    }
}

#[test]
fn noise_variance_prediction_brackets_monte_carlo() {
    // With σ > 0, Var[x_{τ+1}] should match the §5 formula. Monte-Carlo
    // over seeds; tolerance 3 standard errors of the variance estimate.
    let (alpha, tau, sigma) = (0.2, 10_u64, 1.0);
    let trials = 400;
    let mut stats = asyncsgd::math::OnlineStats::new();
    for seed in 0..trials {
        let x = run_adversary(alpha, tau, 1.0, sigma, seed);
        // Subtract the deterministic part; the residual is the noise term.
        stats.push(x - lower_bound::adversarial_iterate(alpha, tau, 1.0));
    }
    let predicted_var = lower_bound::adversarial_noise_variance(alpha, tau, sigma);
    let measured_var = stats.variance();
    // Variance of the sample variance ≈ 2σ⁴/(n−1) for Gaussian data.
    let se = (2.0 * predicted_var * predicted_var / (trials as f64 - 1.0)).sqrt();
    assert!(
        (measured_var - predicted_var).abs() < 4.0 * se,
        "measured var {measured_var} vs predicted {predicted_var} (se {se})"
    );
    assert!(
        stats.mean().abs() < 4.0 * (predicted_var / trials as f64).sqrt(),
        "noise term should be zero-mean, got {}",
        stats.mean()
    );
}
