//! `bench-check` — the committed-artifact regression gate.
//!
//! The repo commits full-run artifacts for the serving tiers
//! (`BENCH_serving.json`, `BENCH_net.json`) **and** the training side
//! (`BENCH_sparse_path.json`, `BENCH_validation.json`). This module
//! re-measures fresh and compares every cell whose configuration appears
//! on both sides, all under one tolerance (default 30%):
//!
//! - **serving / serving-net**: fresh *quick* sweeps; answered throughput
//!   must not drop, and p99 latency must not rise, past the tolerance
//!   (p99 breaches additionally need [`P99_NOISE_FLOOR_NS`] of absolute
//!   slack before they count). The deliberately saturated `overload` cell
//!   is excluded on principle — its latency is governed by the shedding
//!   policy, not by code speed.
//! - **sparse-path**: the committed grid's `d ≤ 1024` corner re-measured
//!   at the committed iteration budget (quick cells are too short — thread
//!   spawn would dominate); per-cell `iters_per_sec` must not drop.
//! - **validation**: a fresh quick theory-validation corner derived at the
//!   committed plan parameters; every intersecting cell must stay
//!   consistent with its upper bound, and the *derived* quantities
//!   (α, horizon, total iterations, bound) must agree with the committed
//!   artifact within the tolerance. Fewer fresh trials only coarsen the
//!   measured rate, which the gate does not compare.
//! - **ingest**: the committed `BENCH_ingest.json` must parse row-by-row
//!   as [`IngestReport`]s, and every drifted cell must carry a finite
//!   time-to-recover — a committed cell that never got back inside the
//!   success region is not a baseline, it is a regression already. One
//!   fresh quick drift cell then re-runs the live loop end to end and must
//!   itself recover; TTR magnitudes are not compared (wall-clock recovery
//!   on a shared core is far noisier than the tolerance).
//!
//! - **telemetry overhead**: the instrumentation contract — a hogwild run
//!   with the strided step-timing sink installed (the same sink the driver
//!   wires into every session, feeding `asgd_hogwild_step_ns`) must keep
//!   at least [`TELEMETRY_OVERHEAD_FLOOR`] of the uninstrumented run's
//!   throughput at serving scale (d = 1M, 4 pinned threads, best-of-N
//!   both arms). Skipped in unoptimised builds, where the ratio would
//!   gate compiler settings rather than the sink.
//!
//! Cells only one side measured (the full grids are wider than the fresh
//! ones) are skipped. An empty intersection is itself a failure: a gate
//! that compares nothing gates nothing.

use crate::experiments::{ingest, serving, serving_net, sparse_scaling};
use asgd_driver::json::{self, Value};
use asgd_driver::report::{field_f64, field_str, field_u64};
use asgd_driver::{validate, ValidationCell, ValidationPlan, ValidationReport};
use asgd_ingest::IngestReport;
use asgd_oracle::OracleSpec;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Default allowed regression: 30% on throughput and on p99.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Absolute p99 slack beneath which a ratio breach is not a failure.
/// Tail quantiles of sub-second quick cells on a shared core move by
/// hundreds of µs from scheduler noise alone; a regression must clear
/// both the relative ceiling *and* this absolute floor to be real.
pub const P99_NOISE_FLOOR_NS: u64 = 1_000_000; // 1 ms

/// One artifact's measured baseline for a cell.
#[derive(Debug, Clone, Copy)]
struct Baseline {
    qps: f64,
    p99_ns: u64,
}

/// The gate's outcome: human-readable per-cell lines plus the failures
/// that make it red.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Per-cell comparison lines (and skip notes), in artifact order.
    pub lines: Vec<String>,
    /// Regressions and structural problems. Empty means the gate passes.
    pub failures: Vec<String>,
}

impl CheckReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if self.passed() {
            let _ = writeln!(out, "bench-check: PASS");
        } else {
            for f in &self.failures {
                let _ = writeln!(out, "FAIL: {f}");
            }
            let _ = writeln!(
                out,
                "bench-check: FAIL ({} regression(s))",
                self.failures.len()
            );
        }
        out
    }
}

fn load_rows(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let root = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let rows = root
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: missing `rows` array", path.display()))?;
    Ok(rows.to_vec())
}

fn committed_map(
    rows: &[Value],
    key_of: impl Fn(&Value) -> Result<Option<String>, asgd_driver::DecodeError>,
    baseline_of: impl Fn(&Value) -> Result<Baseline, asgd_driver::DecodeError>,
) -> Result<BTreeMap<String, Baseline>, String> {
    let mut map = BTreeMap::new();
    for row in rows {
        let Some(key) = key_of(row).map_err(|e| e.to_string())? else {
            continue;
        };
        map.insert(key, baseline_of(row).map_err(|e| e.to_string())?);
    }
    Ok(map)
}

/// The serving artifacts' measured pair: answered throughput + p99.
fn qps_p99(row: &Value) -> Result<Baseline, asgd_driver::DecodeError> {
    Ok(Baseline {
        qps: field_f64(row, "qps")?,
        p99_ns: field_u64(row, "p99_ns")?,
    })
}

/// Compares fresh cells against committed baselines; appends one line per
/// intersecting cell and failure entries for regressions past `tol`.
fn compare(
    label: &str,
    committed: &BTreeMap<String, Baseline>,
    fresh: &BTreeMap<String, Baseline>,
    tol: f64,
    report: &mut CheckReport,
) {
    let mut matched = 0usize;
    for (key, now) in fresh {
        let Some(base) = committed.get(key) else {
            continue;
        };
        matched += 1;
        let qps_ratio = if base.qps > 0.0 {
            now.qps / base.qps
        } else {
            1.0
        };
        let p99_ratio = if base.p99_ns > 0 {
            now.p99_ns as f64 / base.p99_ns as f64
        } else {
            1.0
        };
        let mut verdict = "ok";
        if qps_ratio < 1.0 - tol {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "{label} {key}: throughput {:.0}/s vs committed {:.0}/s (x{qps_ratio:.2}, floor x{:.2})",
                now.qps,
                base.qps,
                1.0 - tol
            ));
        }
        if p99_ratio > 1.0 + tol && now.p99_ns > base.p99_ns.saturating_add(P99_NOISE_FLOOR_NS) {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "{label} {key}: p99 {}ns vs committed {}ns (x{p99_ratio:.2}, ceiling x{:.2})",
                now.p99_ns,
                base.p99_ns,
                1.0 + tol
            ));
        }
        report.lines.push(format!(
            "{label} {key}: qps x{qps_ratio:.2}, p99 x{p99_ratio:.2} [{verdict}]"
        ));
    }
    report.lines.push(format!(
        "{label}: compared {matched} cell(s) ({} fresh, {} committed)",
        fresh.len(),
        committed.len()
    ));
    if matched == 0 {
        report.failures.push(format!(
            "{label}: no comparable cells — the gate is vacuous"
        ));
    }
}

fn serving_fresh() -> BTreeMap<String, Baseline> {
    serving::sweep(true)
        .into_iter()
        .map(|r| {
            (
                format!(
                    "clients={},mode={},threads={}",
                    r.clients, r.mode, r.trainer_threads
                ),
                Baseline {
                    qps: r.qps,
                    p99_ns: r.p99_ns,
                },
            )
        })
        .collect()
}

/// The corner of the committed sparse-path grid the gate re-measures, at
/// the committed iteration budget (20k). The quick sweep's 2k-iteration
/// cells are a few hundred µs of work — thread-spawn overhead would read
/// as a throughput regression — so the gate pays for real cells instead;
/// at `d ≤ 1024` the whole corner is still well under a second.
const SPARSE_GATE_DIMS: &[usize] = &[16, 1024];
const SPARSE_GATE_THREADS: &[usize] = &[1, 2];
const SPARSE_GATE_ITERATIONS: u64 = 20_000;

fn sparse_key(d: u64, path: &str, store: &str, threads: u64) -> String {
    format!("d={d},path={path},store={store},threads={threads}")
}

fn sparse_fresh() -> BTreeMap<String, Baseline> {
    sparse_scaling::sweep_cells(
        SPARSE_GATE_DIMS,
        SPARSE_GATE_THREADS,
        SPARSE_GATE_ITERATIONS,
    )
    .into_iter()
    .map(|r| {
        (
            sparse_key(r.d as u64, r.path, r.store, r.threads as u64),
            Baseline {
                qps: r.iters_per_sec,
                p99_ns: 0, // throughput-only: the artifact has no latency column
            },
        )
    })
    .collect()
}

/// The dimension floor above which the committed artifact must show the
/// sharded store holding its own against the flat one.
const SHARDED_GATE_MIN_D: u64 = 1 << 20;
/// The thread floor for the same gate: below real concurrency the stores
/// are equivalent by construction, so the comparison would gate nothing.
const SHARDED_GATE_MIN_THREADS: u64 = 4;

/// Gates the committed artifact's own store comparison: at every
/// `(d ≥ 1M, threads ≥ 4)` sparse-path cell measured on both stores, the
/// sharded store's throughput must be at least `1 − tol` of the flat
/// store's. This reads the committed rows only — re-measuring d = 10M
/// cells on every check would dominate the gate's runtime — so it pins the
/// claim the artifact was committed to support: sharding does not lose
/// throughput where it is supposed to win.
fn sharded_store_gate(rows: &[Value], tol: f64, report: &mut CheckReport) {
    let mut by_cell: BTreeMap<(u64, u64), (Option<f64>, Option<f64>)> = BTreeMap::new();
    for row in rows {
        let parsed = (|| -> Result<_, asgd_driver::DecodeError> {
            Ok((
                field_u64(row, "d")?,
                field_u64(row, "threads")?,
                field_str(row, "path")?,
                field_str(row, "store")?,
                field_f64(row, "iters_per_sec")?,
            ))
        })();
        let Ok((d, threads, path, store, ips)) = parsed else {
            continue; // rows without a store column predate the grid
        };
        if d < SHARDED_GATE_MIN_D || threads < SHARDED_GATE_MIN_THREADS || path != "sparse" {
            continue;
        }
        let slot = by_cell.entry((d, threads)).or_default();
        match store.as_str() {
            "flat" => slot.0 = Some(ips),
            "sharded" => slot.1 = Some(ips),
            _ => {}
        }
    }
    let mut matched = 0usize;
    for ((d, threads), (flat, sharded)) in &by_cell {
        let (Some(flat), Some(sharded)) = (flat, sharded) else {
            continue;
        };
        matched += 1;
        let ratio = if *flat > 0.0 { sharded / flat } else { 1.0 };
        let mut verdict = "ok";
        if ratio < 1.0 - tol {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "sharded-store d={d},threads={threads}: sharded {sharded:.0}/s vs flat \
                 {flat:.0}/s (x{ratio:.2}, floor x{:.2})",
                1.0 - tol
            ));
        }
        report.lines.push(format!(
            "sharded-store d={d},threads={threads}: sharded/flat x{ratio:.2} [{verdict}]"
        ));
    }
    report.lines.push(format!(
        "sharded-store: compared {matched} committed cell(s) at d ≥ {SHARDED_GATE_MIN_D}, \
         threads ≥ {SHARDED_GATE_MIN_THREADS}"
    ));
    if matched == 0 {
        report.failures.push(
            "sharded-store: no committed flat/sharded pair at gate scale — the gate is vacuous"
                .to_string(),
        );
    }
}

/// The telemetry overhead gate's fixed cell: the serving-scale sparse
/// configuration the instrumentation contract is written against.
const TELEMETRY_GATE_DIM: usize = 1 << 20;
const TELEMETRY_GATE_THREADS: usize = 4;
const TELEMETRY_GATE_ITERATIONS: u64 = 200_000;
const TELEMETRY_GATE_TRIALS: usize = 3;

/// Instrumented throughput must stay at or above this fraction of the
/// uninstrumented run's: the strided timing sink (one `Instant` read per
/// success-check window plus one striped histogram record) is allowed at
/// most 3%.
pub const TELEMETRY_OVERHEAD_FLOOR: f64 = 0.97;

/// Judges the measured overhead ratio; split out of the measurement so the
/// verdict logic is unit-testable without paying for d = 1M runs.
fn judge_telemetry_overhead(
    instrumented: f64,
    baseline: f64,
    samples: u64,
    report: &mut CheckReport,
) {
    if samples == 0 {
        report.failures.push(
            "telemetry-overhead: instrumented runs recorded no step samples — the gate is vacuous"
                .to_string(),
        );
        return;
    }
    let ratio = if baseline > 0.0 {
        instrumented / baseline
    } else {
        1.0
    };
    let mut verdict = "ok";
    if ratio < TELEMETRY_OVERHEAD_FLOOR {
        verdict = "REGRESSED";
        report.failures.push(format!(
            "telemetry-overhead: instrumented {instrumented:.0}/s vs uninstrumented \
             {baseline:.0}/s (x{ratio:.3}, floor x{TELEMETRY_OVERHEAD_FLOOR:.2})"
        ));
    }
    report.lines.push(format!(
        "telemetry-overhead: instrumented/uninstrumented x{ratio:.3} over {samples} step \
         sample(s) [{verdict}]"
    ));
}

/// Measures the instrumentation contract live: best-of-N hogwild
/// throughput with the step-timing sink installed versus without, at
/// d = 1M on 4 pinned threads. The sink is the exact shape the driver
/// installs in every session (strided interval timing recorded into the
/// process-wide `asgd_hogwild_step_ns` histogram), so the ratio gates
/// what users actually pay, not a synthetic stand-in.
fn telemetry_overhead_gate(report: &mut CheckReport) {
    use asgd_hogwild::{ExecTuning, Hogwild, HogwildConfig, RunControl, TimingSink};
    if cfg!(debug_assertions) {
        report.lines.push(
            "telemetry-overhead: skipped (unoptimised build — the ratio would gate compiler \
             settings, not the sink)"
                .to_string(),
        );
        return;
    }
    let oracle = match OracleSpec::new("sparse-quadratic", TELEMETRY_GATE_DIM)
        .sigma(0.0)
        .build()
    {
        Ok(oracle) => oracle,
        Err(e) => {
            report
                .failures
                .push(format!("telemetry-overhead: building the oracle: {e}"));
            return;
        }
    };
    let exec = Hogwild::new(
        oracle,
        HogwildConfig {
            threads: TELEMETRY_GATE_THREADS,
            iterations: TELEMETRY_GATE_ITERATIONS,
            alpha: 0.5 / TELEMETRY_GATE_DIM as f64,
            seed: 0x0B5E,
            success_radius_sq: None,
        },
    )
    .tuning(ExecTuning {
        pin: true,
        ..ExecTuning::default()
    });
    let x0 = vec![1.0; TELEMETRY_GATE_DIM];
    let hist = asgd_telemetry::global().histogram("asgd_hogwild_step_ns");
    let recorded_before = hist.snapshot().count;
    let timing = |_claim: u64, elapsed_ns: u64, steps: u64| {
        hist.record(elapsed_ns / steps.max(1));
    };
    let best_of = |instrumented: bool| -> f64 {
        let mut best = 0.0_f64;
        for _ in 0..TELEMETRY_GATE_TRIALS {
            let ctrl = if instrumented {
                RunControl {
                    timing: Some(TimingSink { f: &timing }),
                    ..RunControl::default()
                }
            } else {
                RunControl::default()
            };
            best = best.max(exec.run_controlled(&x0, ctrl).iterations_per_sec());
        }
        best
    };
    let baseline = best_of(false);
    let instrumented = best_of(true);
    let samples = hist.snapshot().count.saturating_sub(recorded_before);
    judge_telemetry_overhead(instrumented, baseline, samples, report);
}

fn validation_cell_key(cell: &ValidationCell) -> String {
    format!(
        "backend={},criterion={},threads={},eps={}",
        cell.backend, cell.criterion, cell.threads, cell.eps
    )
}

/// Compares fresh validation cells against committed ones: every
/// intersecting cell must remain consistent with its upper bound, and its
/// derived quantities must sit within `tol` of the committed values.
fn compare_validation_cells(
    committed: &[ValidationCell],
    fresh: &[ValidationCell],
    tol: f64,
    report: &mut CheckReport,
) {
    let by_key: BTreeMap<String, &ValidationCell> = committed
        .iter()
        .map(|c| (validation_cell_key(c), c))
        .collect();
    let mut matched = 0usize;
    for cell in fresh {
        let key = validation_cell_key(cell);
        let Some(base) = by_key.get(&key) else {
            continue;
        };
        matched += 1;
        let mut verdict = "ok";
        if !cell.consistent_with_upper_bound {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "validation {key}: measured failure rate {:.3} is no longer consistent with its bound {:.3}",
                cell.measured, cell.bound
            ));
        }
        for (name, now, then) in [
            ("alpha", cell.alpha, base.alpha),
            ("horizon", cell.horizon as f64, base.horizon as f64),
            (
                "total_iterations",
                cell.total_iterations as f64,
                base.total_iterations as f64,
            ),
            ("bound", cell.bound, base.bound),
        ] {
            let ratio = if then != 0.0 {
                now / then
            } else if now == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            if !(1.0 - tol..=1.0 + tol).contains(&ratio) {
                verdict = "REGRESSED";
                report.failures.push(format!(
                    "validation {key}: derived {name} {now} vs committed {then} (x{ratio:.2}, tolerance ±{:.0}%)",
                    tol * 100.0
                ));
            }
        }
        report.lines.push(format!("validation {key}: [{verdict}]"));
    }
    report.lines.push(format!(
        "validation: compared {matched} cell(s) ({} fresh, {} committed)",
        fresh.len(),
        committed.len()
    ));
    if matched == 0 {
        report
            .failures
            .push("validation: no comparable cells — the gate is vacuous".to_string());
    }
}

/// Loads the committed validation artifact, re-derives a quick corner of
/// its grid at the same plan parameters, and compares.
fn validation_gate(dir: &Path, tol: f64, report: &mut CheckReport) {
    let path = dir.join("BENCH_validation.json");
    let committed = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e}", path.display()))
        .and_then(|text| {
            ValidationReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
        });
    let committed = match committed {
        Ok(committed) => committed,
        Err(e) => {
            report.failures.push(format!("validation baseline: {e}"));
            return;
        }
    };
    // Fewer trials than the committed 40 only widens the fresh cells'
    // confidence intervals; the derived (α, T, bound) depend on the plan
    // alone, so they must reproduce the committed values exactly (the
    // tolerance is slack for float-environment drift, not for noise).
    let plan = ValidationPlan::new(
        OracleSpec::new(&committed.oracle, committed.dim).sigma(committed.sigma),
    )
    .thread_counts(vec![1, 2])
    .eps_grid(vec![0.04])
    .tau_max(committed.cells.first().map_or(8, |c| c.tau_max))
    .theta(committed.theta)
    .target(committed.target)
    .radius(committed.radius)
    .trials(8)
    .seed(committed.seed);
    match validate(&plan) {
        Ok(fresh) => compare_validation_cells(&committed.cells, &fresh.cells, tol, report),
        Err(e) => report
            .failures
            .push(format!("validation: fresh quick validate failed: {e}")),
    }
}

/// Validates the committed ingest artifact (every drifted cell recovered)
/// and re-runs one fresh quick drift cell over the live socket, which must
/// also recover. Absolute TTRs are too noisy to compare across machines;
/// what the gate pins is the *property* every committed and fresh cell
/// must have — finite recovery.
fn ingest_gate(dir: &Path, report: &mut CheckReport) {
    let path = dir.join("BENCH_ingest.json");
    let rows = match load_rows(&path) {
        Ok(rows) => rows,
        Err(e) => {
            report.failures.push(format!("ingest baseline: {e}"));
            return;
        }
    };
    if rows.is_empty() {
        report
            .failures
            .push("ingest: committed artifact has no rows — the gate is vacuous".to_string());
        return;
    }
    for (i, row) in rows.iter().enumerate() {
        let cell = match IngestReport::from_value(row) {
            Ok(cell) => cell,
            Err(e) => {
                report.failures.push(format!(
                    "ingest row {i}: does not parse as IngestReport: {e}"
                ));
                continue;
            }
        };
        let key = format!("producers={},policy={}", cell.producers, cell.policy);
        let mut verdict = "ok";
        if cell.consumed == 0 {
            verdict = "REGRESSED";
            report
                .failures
                .push(format!("ingest {key}: committed cell consumed nothing"));
        }
        if cell.drift.is_some() && cell.time_to_recover_secs.is_none() {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "ingest {key}: committed drifted cell never recovered"
            ));
        }
        report.lines.push(format!(
            "ingest {key}: recover {} [{verdict}]",
            cell.time_to_recover_secs
                .map_or_else(|| "never".to_string(), |t| format!("{:.1}ms", t * 1e3)),
        ));
    }
    // One live cell: the loop itself must still close after drift.
    match ingest::cell_spec(2, asgd_oracle::BackpressurePolicy::DropOldest, 0.8, 0.3).run(None) {
        Ok(fresh) => match fresh.time_to_recover_secs {
            Some(ttr) => report.lines.push(format!(
                "ingest fresh drift cell: recovered in {:.1}ms",
                ttr * 1e3
            )),
            None => report.failures.push(format!(
                "ingest: fresh drift cell never recovered (consumed {}, jump {:.3e})",
                fresh.consumed, fresh.drift_dist_sq
            )),
        },
        Err(e) => report
            .failures
            .push(format!("ingest: fresh drift cell failed to run: {e}")),
    }
}

fn serving_net_fresh() -> BTreeMap<String, Baseline> {
    serving_net::sweep(true)
        .into_iter()
        .filter(|r| r.cell == "grid")
        .map(|r| {
            (
                format!("clients={},mode={},models={}", r.clients, r.mode, r.models),
                Baseline {
                    qps: r.qps,
                    p99_ns: r.p99_ns,
                },
            )
        })
        .collect()
}

/// Runs the full gate: fresh quick sweeps of `serving` and `serving-net`
/// compared against `BENCH_serving.json` and `BENCH_net.json`, a fresh
/// budget-matched sparse-path corner against `BENCH_sparse_path.json`, a
/// fresh quick validation corner against `BENCH_validation.json`, the
/// committed-plus-fresh ingest recovery gate against `BENCH_ingest.json`,
/// all read from `dir`, plus the artifact-free telemetry overhead gate
/// (instrumented vs uninstrumented hogwild throughput, optimised builds
/// only).
///
/// Missing or malformed artifacts are failures — they are committed files
/// in this repository, so their absence means the gate's baseline is gone.
#[must_use]
pub fn run_bench_check(dir: &Path, tol: f64) -> CheckReport {
    let mut report = CheckReport::default();
    report.lines.push(format!("tolerance: {:.0}%", tol * 100.0));

    match load_rows(&dir.join("BENCH_serving.json")).and_then(|rows| {
        committed_map(
            &rows,
            |row| {
                Ok(Some(format!(
                    "clients={},mode={},threads={}",
                    field_u64(row, "clients")?,
                    field_str(row, "mode")?,
                    field_u64(row, "trainer_threads")?
                )))
            },
            qps_p99,
        )
    }) {
        Ok(committed) => compare("serving", &committed, &serving_fresh(), tol, &mut report),
        Err(e) => report.failures.push(format!("serving baseline: {e}")),
    }

    match load_rows(&dir.join("BENCH_net.json")).and_then(|rows| {
        committed_map(
            &rows,
            |row| {
                if field_str(row, "cell")? != "grid" {
                    return Ok(None);
                }
                Ok(Some(format!(
                    "clients={},mode={},models={}",
                    field_u64(row, "clients")?,
                    field_str(row, "mode")?,
                    field_u64(row, "models")?
                )))
            },
            qps_p99,
        )
    }) {
        Ok(committed) => compare(
            "serving-net",
            &committed,
            &serving_net_fresh(),
            tol,
            &mut report,
        ),
        Err(e) => report.failures.push(format!("serving-net baseline: {e}")),
    }

    match load_rows(&dir.join("BENCH_sparse_path.json")) {
        Ok(rows) => {
            match committed_map(
                &rows,
                |row| {
                    Ok(Some(sparse_key(
                        field_u64(row, "d")?,
                        &field_str(row, "path")?,
                        &field_str(row, "store")?,
                        field_u64(row, "threads")?,
                    )))
                },
                |row| {
                    Ok(Baseline {
                        qps: field_f64(row, "iters_per_sec")?,
                        p99_ns: 0,
                    })
                },
            ) {
                Ok(committed) => {
                    compare("sparse-path", &committed, &sparse_fresh(), tol, &mut report);
                }
                Err(e) => report.failures.push(format!("sparse-path baseline: {e}")),
            }
            sharded_store_gate(&rows, tol, &mut report);
        }
        Err(e) => report.failures.push(format!("sparse-path baseline: {e}")),
    }

    validation_gate(dir, tol, &mut report);

    ingest_gate(dir, &mut report);

    telemetry_overhead_gate(&mut report);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(qps: f64, p99_ns: u64) -> Baseline {
        Baseline { qps, p99_ns }
    }

    #[test]
    fn identical_measurements_pass() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &base.clone(), DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn regressions_past_tolerance_fail_with_named_cell() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 5_000_000))].into();
        let slow: BTreeMap<_, _> = [("a".to_string(), cell(600.0, 9_000_000))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &slow, DEFAULT_TOLERANCE, &mut report);
        assert_eq!(report.failures.len(), 2, "{report:?}");
        assert!(report.failures[0].contains("t a:"), "{report:?}");
        assert!(report.render().contains("bench-check: FAIL"));
    }

    #[test]
    fn sub_floor_tail_noise_passes_even_past_the_ratio_ceiling() {
        // 500ns → 900ns is x1.8 but only 400ns absolute — scheduler
        // noise on a tail quantile, not a regression.
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let noisy: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 900))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &noisy, DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn within_tolerance_noise_passes() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let noisy: BTreeMap<_, _> = [("a".to_string(), cell(750.0, 620))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &noisy, DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn disjoint_grids_make_the_gate_fail_as_vacuous() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let other: BTreeMap<_, _> = [("b".to_string(), cell(1000.0, 500))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &other, DEFAULT_TOLERANCE, &mut report);
        assert!(!report.passed());
        assert!(report.failures[0].contains("vacuous"), "{report:?}");
    }

    #[test]
    fn missing_artifacts_fail_for_every_gate() {
        let report = run_bench_check(Path::new("/nonexistent-dir-for-test"), DEFAULT_TOLERANCE);
        assert!(!report.passed());
        for artifact in [
            "BENCH_serving.json",
            "BENCH_net.json",
            "BENCH_sparse_path.json",
            "BENCH_validation.json",
            "BENCH_ingest.json",
        ] {
            assert!(
                report.failures.iter().any(|f| f.contains(artifact)),
                "no failure names {artifact}: {report:?}"
            );
        }
    }

    fn store_row(d: u64, threads: u64, path: &str, store: &str, ips: f64) -> Value {
        Value::obj([
            ("d", Value::U64(d)),
            ("threads", Value::U64(threads)),
            ("path", Value::Str(path.to_string())),
            ("store", Value::Str(store.to_string())),
            ("iterations", Value::U64(20_000)),
            ("wall_time_secs", Value::f64(0.1)),
            ("iters_per_sec", Value::f64(ips)),
        ])
    }

    #[test]
    fn sharded_gate_passes_when_the_sharded_store_holds_throughput() {
        let rows = vec![
            store_row(1 << 20, 4, "sparse", "flat", 1000.0),
            store_row(1 << 20, 4, "sparse", "sharded", 950.0),
            // Sub-scale cells and dense cells are outside the gate.
            store_row(1024, 4, "sparse", "flat", 1000.0),
            store_row(1024, 4, "sparse", "sharded", 1.0),
            store_row(1 << 20, 2, "sparse", "sharded", 1.0),
        ];
        let mut report = CheckReport::default();
        sharded_store_gate(&rows, DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn sharded_gate_fails_on_a_sharded_regression_past_tolerance() {
        let rows = vec![
            store_row(10_000_000, 4, "sparse", "flat", 1000.0),
            store_row(10_000_000, 4, "sparse", "sharded", 600.0),
        ];
        let mut report = CheckReport::default();
        sharded_store_gate(&rows, DEFAULT_TOLERANCE, &mut report);
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("sharded-store d=10000000"),
            "{report:?}"
        );
    }

    #[test]
    fn sharded_gate_without_gate_scale_pairs_is_vacuous() {
        let rows = vec![
            store_row(1024, 4, "sparse", "flat", 1000.0),
            store_row(1024, 4, "sparse", "sharded", 1000.0),
            // A gate-scale flat cell with no sharded twin gates nothing.
            store_row(1 << 20, 8, "sparse", "flat", 1000.0),
        ];
        let mut report = CheckReport::default();
        sharded_store_gate(&rows, DEFAULT_TOLERANCE, &mut report);
        assert!(!report.passed());
        assert!(report.failures[0].contains("vacuous"), "{report:?}");
    }

    #[test]
    fn telemetry_overhead_within_floor_passes() {
        let mut report = CheckReport::default();
        judge_telemetry_overhead(980.0, 1000.0, 1_000, &mut report);
        assert!(report.passed(), "{report:?}");
        assert!(report.lines[0].contains("x0.980"), "{report:?}");
    }

    #[test]
    fn telemetry_overhead_past_floor_fails_with_both_rates() {
        let mut report = CheckReport::default();
        judge_telemetry_overhead(900.0, 1000.0, 1_000, &mut report);
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("instrumented 900/s"),
            "{report:?}"
        );
        assert!(report.failures[0].contains("floor x0.97"), "{report:?}");
    }

    #[test]
    fn telemetry_overhead_without_samples_is_vacuous() {
        // A sink that never fired measured nothing: the instrumented arm
        // silently ran uninstrumented, which must fail, not pass at x1.0.
        let mut report = CheckReport::default();
        judge_telemetry_overhead(1000.0, 1000.0, 0, &mut report);
        assert!(!report.passed());
        assert!(report.failures[0].contains("vacuous"), "{report:?}");
    }

    fn vcell(backend: &str, threads: usize, alpha: f64, consistent: bool) -> ValidationCell {
        ValidationCell {
            backend: backend.to_string(),
            criterion: "hitting".to_string(),
            threads,
            eps: 0.04,
            tau_max: 8,
            alpha,
            horizon: 3_000,
            halving_epochs: None,
            total_iterations: 3_000,
            trials: 8,
            failures: 0,
            measured: 0.0,
            ci_lower: 0.0,
            ci_upper: 0.3,
            bound: 0.5,
            consistent_with_upper_bound: consistent,
        }
    }

    #[test]
    fn matching_validation_cells_pass() {
        let committed = vec![vcell("hogwild", 1, 0.003, true)];
        let fresh = vec![vcell("hogwild", 1, 0.003, true)];
        let mut report = CheckReport::default();
        compare_validation_cells(&committed, &fresh, DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn drifted_derivations_and_broken_bounds_fail() {
        let committed = vec![
            vcell("hogwild", 1, 0.003, true),
            vcell("hogwild", 2, 0.003, true),
        ];
        // Cell 1: alpha drifted x2 past tolerance. Cell 2: the measured
        // failure rate escaped the theorem's bound.
        let fresh = vec![
            vcell("hogwild", 1, 0.006, true),
            vcell("hogwild", 2, 0.003, false),
        ];
        let mut report = CheckReport::default();
        compare_validation_cells(&committed, &fresh, DEFAULT_TOLERANCE, &mut report);
        assert_eq!(report.failures.len(), 2, "{report:?}");
        assert!(report.failures.iter().any(|f| f.contains("alpha")));
        assert!(report.failures.iter().any(|f| f.contains("consistent")));
    }

    #[test]
    fn disjoint_validation_grids_are_vacuous_failures() {
        let committed = vec![vcell("hogwild", 4, 0.003, true)];
        let fresh = vec![vcell("sequential", 1, 0.003, true)];
        let mut report = CheckReport::default();
        compare_validation_cells(&committed, &fresh, DEFAULT_TOLERANCE, &mut report);
        assert!(!report.passed());
        assert!(report.failures[0].contains("vacuous"), "{report:?}");
    }
}
