//! Recording and replaying schedules.
//!
//! Determinism is a first-class property of the simulator: the same master
//! seed and scheduler must reproduce the same execution bit-for-bit. These
//! wrappers make that testable — record a schedule once, replay it, and the
//! resulting executions must be identical.

use super::{Decision, SchedView, Scheduler};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a recorded decision log.
pub type ScheduleLog = Rc<RefCell<Vec<Decision>>>;

/// Wraps a scheduler, appending every decision to a shared log.
#[derive(Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    log: ScheduleLog,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`; decisions are appended to a fresh log obtainable via
    /// [`RecordingScheduler::log`].
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            log: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// A handle to the decision log (cheap to clone, shared with the
    /// scheduler).
    #[must_use]
    pub fn log(&self) -> ScheduleLog {
        Rc::clone(&self.log)
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        let d = self.inner.decide(view);
        self.log.borrow_mut().push(d);
        d
    }

    fn name(&self) -> &str {
        "recording"
    }
}

/// Replays a previously recorded schedule verbatim.
///
/// # Panics
///
/// `decide` panics if the log is exhausted — a replay must cover the whole
/// execution, and running out means the replayed run diverged from the
/// recorded one.
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    decisions: Vec<Decision>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates a replayer from a decision sequence.
    #[must_use]
    pub fn new(decisions: Vec<Decision>) -> Self {
        Self { decisions, pos: 0 }
    }

    /// Creates a replayer from a recording log handle.
    ///
    /// # Panics
    ///
    /// Panics if the log is still mutably borrowed.
    #[must_use]
    pub fn from_log(log: &ScheduleLog) -> Self {
        Self::new(log.borrow().clone())
    }

    /// Number of decisions not yet replayed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.decisions.len() - self.pos
    }
}

impl Scheduler for ReplayScheduler {
    fn decide(&mut self, _view: &SchedView<'_>) -> Decision {
        let d = *self
            .decisions
            .get(self.pos)
            .expect("replay log exhausted: replayed execution diverged from recording");
        self.pos += 1;
        d
    }

    fn name(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionTracker;
    use crate::memory::Memory;
    use crate::op::{Action, MemOp, OpTag};
    use crate::sched::{SerialScheduler, ThreadStatus, ThreadView};

    fn one_thread_view() -> Vec<ThreadView> {
        vec![ThreadView {
            id: 0,
            status: ThreadStatus::Runnable,
            pending: Some(Action::Op {
                op: MemOp::ReadF64 { idx: 0 },
                tag: OpTag::Untagged,
            }),
        }]
    }

    #[test]
    fn record_then_replay_matches() {
        let threads = one_thread_view();
        let m = Memory::new(1, 0);
        let tr = ContentionTracker::new(1);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 0,
        };
        let mut rec = RecordingScheduler::new(SerialScheduler::new());
        let log = rec.log();
        let d1 = rec.decide(&view);
        let d2 = rec.decide(&view);
        let mut rep = ReplayScheduler::from_log(&log);
        assert_eq!(rep.remaining(), 2);
        assert_eq!(rep.decide(&view), d1);
        assert_eq!(rep.decide(&view), d2);
        assert_eq!(rep.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "replay log exhausted")]
    fn replay_exhaustion_panics() {
        let threads = one_thread_view();
        let m = Memory::new(1, 0);
        let tr = ContentionTracker::new(1);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 0,
        };
        let mut rep = ReplayScheduler::new(vec![]);
        let _ = rep.decide(&view);
    }
}
