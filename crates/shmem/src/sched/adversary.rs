//! Adaptive adversarial schedulers.
//!
//! These implement the attacks the paper reasons about:
//!
//! * [`BoundedDelayAdversary`] — freezes a thread at the moment it is about
//!   to apply a gradient computed from an old view, and keeps it frozen while
//!   other threads push iterations through, up to a configurable contention
//!   budget `τ`. Used to exercise the upper bound of Theorem 6.5 at a chosen
//!   `τ_max`.
//! * [`StaleGradientAdversary`] — the exact §5 construction: both threads
//!   compute a gradient at `x₀`, one thread then runs `τ` full iterations,
//!   and only then is the other thread's stale gradient merged. Drives the
//!   `Ω(τ)` lower bound of Theorem 5.1.
//! * [`CrashAdversary`] — wraps another scheduler and crashes chosen threads
//!   at chosen steps (the model allows up to `n − 1` crashes).

use super::{Decision, SchedView, Scheduler};
use crate::op::{OpTag, Step, ThreadId};

/// Freezes threads holding stale pending gradients to manufacture interval
/// contention up to a budget.
///
/// Strategy, repeated forever: wait until some thread's declared action is
/// the *first write* of an iteration (its gradient is computed, its view is
/// now only getting staler); freeze it; schedule everyone else round-robin
/// until `budget` further iterations have been claimed; then release the
/// victim, let it finish its (now maximally stale) iteration, and pick the
/// next victim.
///
/// The achieved interval contention is ≈ `budget` for victim iterations, so
/// sweeping `budget` sweeps the measured `τ_max`.
#[derive(Debug, Clone)]
pub struct BoundedDelayAdversary {
    budget: u64,
    victim: Option<ThreadId>,
    victim_mark: u64,
    releasing: Option<ThreadId>,
    rr: ThreadId,
    last_victim: Option<ThreadId>,
}

impl BoundedDelayAdversary {
    /// Creates the adversary with the given iteration-contention budget
    /// (≥ 1; a budget of 0 is clamped to 1).
    #[must_use]
    pub fn new(budget: u64) -> Self {
        Self {
            budget: budget.max(1),
            victim: None,
            victim_mark: 0,
            releasing: None,
            rr: 0,
            last_victim: None,
        }
    }

    /// The configured contention budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn schedule_rr(&mut self, view: &SchedView<'_>, skip: Option<ThreadId>) -> Decision {
        let n = view.threads.len();
        let from = self.rr % n;
        let pick = match skip {
            Some(s) => view
                .next_runnable_excluding(from, s)
                .or_else(|| view.next_runnable_from(from)),
            None => view.next_runnable_from(from),
        }
        .expect("engine guarantees a runnable thread");
        self.rr = (pick + 1) % n;
        Decision::Schedule(pick)
    }
}

impl Scheduler for BoundedDelayAdversary {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        // Phase 1: drive a released victim through the rest of its iteration
        // so its stale writes land back-to-back.
        if let Some(r) = self.releasing {
            if view.is_runnable(r) && view.threads[r].mid_iteration() {
                return Decision::Schedule(r);
            }
            self.releasing = None;
        }

        // Phase 2: victim held — starve it while others make progress.
        if let Some(v) = self.victim {
            if !view.is_runnable(v) {
                self.victim = None;
            } else {
                let started_since = view.tracker.claims().saturating_sub(self.victim_mark);
                let others_exist = view.runnable().any(|t| t.id != v);
                if started_since >= self.budget || !others_exist {
                    self.victim = None;
                    self.last_victim = Some(v);
                    self.releasing = Some(v);
                    return Decision::Schedule(v);
                }
                return self.schedule_rr(view, Some(v));
            }
        }

        // Phase 3: look for a fresh victim: a thread about to perform its
        // first gradient write (prefer one we did not just victimise, so the
        // damage spreads across threads).
        let about_to_first_write = |t: &&crate::sched::ThreadView| {
            matches!(t.pending_tag(), Some(OpTag::ModelWrite { first: true, .. }))
        };
        let candidate = view
            .runnable()
            .filter(about_to_first_write)
            .map(|t| t.id)
            .find(|&id| Some(id) != self.last_victim)
            .or_else(|| {
                view.runnable()
                    .filter(about_to_first_write)
                    .map(|t| t.id)
                    .next()
            });
        if let Some(v) = candidate {
            if view.runnable().any(|t| t.id != v) {
                self.victim = Some(v);
                self.victim_mark = view.tracker.claims();
                return self.schedule_rr(view, Some(v));
            }
        }
        self.schedule_rr(view, None)
    }

    fn name(&self) -> &str {
        "bounded-delay-adversary"
    }
}

/// The §5 lower-bound adversary for two threads.
///
/// Cycle structure (repeating if the step budget allows):
///
/// 1. **Setup** — advance both threads until each has computed a gradient
///    from the *same* model state and is about to perform its first write.
/// 2. **Run** — schedule only the `runner` until it has completed `delay`
///    full iterations.
/// 3. **Merge** — release the `victim`: its gradient, computed `delay`
///    iterations ago, lands on the advanced model, knocking it back towards
///    the stale state (the `((1−α)^τ − α)·x₀` effect derived in §5).
///
/// Threads other than `runner` and `victim` are starved forever (legal for
/// an adversary; they are never formally crashed).
#[derive(Debug, Clone)]
pub struct StaleGradientAdversary {
    runner: ThreadId,
    victim: ThreadId,
    delay: u64,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Setup,
    Run { completed_mark: u64 },
    Merge,
}

impl StaleGradientAdversary {
    /// Creates the adversary: `runner` executes `delay` iterations between
    /// the `victim`'s gradient computation and its merge.
    ///
    /// # Panics
    ///
    /// Panics if `runner == victim`.
    #[must_use]
    pub fn new(runner: ThreadId, victim: ThreadId, delay: u64) -> Self {
        assert_ne!(runner, victim, "runner and victim must differ");
        Self {
            runner,
            victim,
            delay: delay.max(1),
            phase: Phase::Setup,
        }
    }

    /// The configured delay `τ`.
    #[must_use]
    pub fn delay(&self) -> u64 {
        self.delay
    }
}

impl Scheduler for StaleGradientAdversary {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        let runner_ok = view.is_runnable(self.runner);
        let victim_ok = view.is_runnable(self.victim);
        // If either protagonist is gone, degrade to serving whoever remains.
        if !runner_ok || !victim_ok {
            if let Some(t) = view.first_runnable() {
                return Decision::Schedule(t);
            }
            unreachable!("engine guarantees a runnable thread");
        }

        let at_first_write = |tid: ThreadId| {
            matches!(
                view.threads[tid].pending_tag(),
                Some(OpTag::ModelWrite { first: true, .. })
            )
        };

        loop {
            match self.phase {
                Phase::Setup => {
                    // Bring both to the brink of their first write. Advance
                    // the victim first so the runner's coin is the fresher.
                    if !at_first_write(self.victim) {
                        return Decision::Schedule(self.victim);
                    }
                    if !at_first_write(self.runner) {
                        return Decision::Schedule(self.runner);
                    }
                    self.phase = Phase::Run {
                        completed_mark: view.tracker.completed_by(self.runner),
                    };
                }
                Phase::Run { completed_mark } => {
                    let done = view.tracker.completed_by(self.runner) - completed_mark;
                    if done < self.delay {
                        return Decision::Schedule(self.runner);
                    }
                    self.phase = Phase::Merge;
                }
                Phase::Merge => {
                    if view.threads[self.victim].mid_iteration() {
                        return Decision::Schedule(self.victim);
                    }
                    // Victim completed its stale iteration: next cycle.
                    self.phase = Phase::Setup;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "stale-gradient-adversary"
    }
}

/// Wraps a scheduler and crashes chosen threads at chosen steps.
///
/// Crash requests beyond the engine's `n − 1` budget, or aimed at already
/// dead threads, are silently dropped (the adversary wastes its step on the
/// inner scheduler instead).
#[derive(Debug, Clone)]
pub struct CrashAdversary<S> {
    inner: S,
    /// `(step, thread)` pairs, sorted by step at construction.
    plan: Vec<(Step, ThreadId)>,
    next: usize,
}

impl<S: Scheduler> CrashAdversary<S> {
    /// Wraps `inner`, crashing each thread in `plan` at (or after) the given
    /// step.
    #[must_use]
    pub fn new(inner: S, mut plan: Vec<(Step, ThreadId)>) -> Self {
        plan.sort_unstable();
        Self {
            inner,
            plan,
            next: 0,
        }
    }
}

impl<S: Scheduler> Scheduler for CrashAdversary<S> {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        while self.next < self.plan.len() && self.plan[self.next].0 <= view.step {
            let (_, tid) = self.plan[self.next];
            self.next += 1;
            if view.crashes_remaining > 0 && view.is_runnable(tid) && view.runnable().count() > 1 {
                return Decision::Crash(tid);
            }
        }
        self.inner.decide(view)
    }

    fn name(&self) -> &str {
        "crash-adversary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionTracker;
    use crate::memory::Memory;
    use crate::op::{Action, MemOp};
    use crate::sched::{SerialScheduler, ThreadStatus, ThreadView};

    fn thread(id: ThreadId, tag: OpTag) -> ThreadView {
        ThreadView {
            id,
            status: ThreadStatus::Runnable,
            pending: Some(Action::Op {
                op: MemOp::ReadF64 { idx: 0 },
                tag,
            }),
        }
    }

    fn first_write() -> OpTag {
        OpTag::ModelWrite {
            entry: 0,
            first: true,
            last: false,
        }
    }

    #[test]
    fn bounded_delay_freezes_first_writer() {
        let threads = vec![thread(0, first_write()), thread(1, OpTag::ClaimIteration)];
        let m = Memory::new(1, 1);
        let tr = ContentionTracker::new(2);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 1,
        };
        let mut adv = BoundedDelayAdversary::new(4);
        // Thread 0 is about to first-write: it becomes the victim; thread 1
        // gets scheduled instead.
        assert_eq!(adv.decide(&view), Decision::Schedule(1));
        assert_eq!(adv.victim, Some(0));
        assert_eq!(adv.budget(), 4);
    }

    #[test]
    fn bounded_delay_releases_after_budget() {
        let threads = vec![thread(0, first_write()), thread(1, OpTag::ClaimIteration)];
        let m = Memory::new(1, 1);
        let mut tr = ContentionTracker::new(2);
        let mut adv = BoundedDelayAdversary::new(2);
        {
            let view = SchedView {
                step: 0,
                memory: &m,
                threads: &threads,
                tracker: &tr,
                crashes_remaining: 1,
            };
            assert_eq!(adv.decide(&view), Decision::Schedule(1));
        }
        // Two claims happen while the victim is frozen.
        tr.observe(1, 1, OpTag::ClaimIteration);
        tr.observe(1, 2, OpTag::ClaimIteration);
        let view = SchedView {
            step: 3,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 1,
        };
        // Budget met: victim released and scheduled.
        assert_eq!(adv.decide(&view), Decision::Schedule(0));
    }

    #[test]
    fn bounded_delay_zero_budget_clamped() {
        assert_eq!(BoundedDelayAdversary::new(0).budget(), 1);
    }

    #[test]
    fn stale_gradient_setup_advances_victim_then_runner() {
        let threads = vec![
            thread(0, OpTag::ClaimIteration),
            thread(1, OpTag::ClaimIteration),
        ];
        let m = Memory::new(1, 1);
        let tr = ContentionTracker::new(2);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 1,
        };
        let mut adv = StaleGradientAdversary::new(0, 1, 3);
        assert_eq!(adv.decide(&view), Decision::Schedule(1), "victim first");
    }

    #[test]
    fn stale_gradient_runs_runner_during_run_phase() {
        let threads = vec![thread(0, first_write()), thread(1, first_write())];
        let m = Memory::new(1, 1);
        let tr = ContentionTracker::new(2);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 1,
        };
        let mut adv = StaleGradientAdversary::new(0, 1, 2);
        // Both at first write ⇒ Setup completes, Run begins: runner chosen.
        assert_eq!(adv.decide(&view), Decision::Schedule(0));
        assert_eq!(adv.delay(), 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn stale_gradient_rejects_same_thread() {
        let _ = StaleGradientAdversary::new(1, 1, 4);
    }

    #[test]
    fn crash_adversary_executes_plan_then_delegates() {
        let threads = vec![
            thread(0, OpTag::ClaimIteration),
            thread(1, OpTag::ClaimIteration),
        ];
        let m = Memory::new(1, 1);
        let tr = ContentionTracker::new(2);
        let view = SchedView {
            step: 5,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 1,
        };
        let mut adv = CrashAdversary::new(SerialScheduler::new(), vec![(3, 1)]);
        assert_eq!(adv.decide(&view), Decision::Crash(1));
        // Plan exhausted: delegates to serial.
        assert_eq!(adv.decide(&view), Decision::Schedule(0));
    }

    #[test]
    fn crash_adversary_skips_when_budget_exhausted() {
        let threads = vec![
            thread(0, OpTag::ClaimIteration),
            thread(1, OpTag::ClaimIteration),
        ];
        let m = Memory::new(1, 1);
        let tr = ContentionTracker::new(2);
        let view = SchedView {
            step: 5,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 0,
        };
        let mut adv = CrashAdversary::new(SerialScheduler::new(), vec![(0, 1)]);
        assert_eq!(adv.decide(&view), Decision::Schedule(0));
    }
}
