//! The [`AtomicF64`](asgd_hogwild::AtomicF64) `fetch_add` CAS loop as an
//! explorable step function.
//!
//! `AtomicF64::fetch_add` is a load → compare-exchange retry loop over the
//! bit pattern; conservation of the accumulated sum comes from the CAS, not
//! from fences — which is exactly what [`AddMode::BlindStore`] removes to
//! seed the classic lost-update bug (load, add locally, plain store). The
//! model's threads each add a distinct power-of-two delta a fixed number of
//! times, so the quiescent sum is exact in floating point and any lost
//! update changes it.
//!
//! The CAS loop is lock-free, not wait-free: a thread whose CAS fails
//! re-reads and retries, and under exhaustive scheduling that retry chain
//! terminates because some thread's CAS must have succeeded for another's
//! to fail — total work per schedule stays finite, so the DFS terminates.

use crate::explore::{Schedulable, StepStatus};

/// How the modeled adder writes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddMode {
    /// The shipped protocol: compare-exchange, retry on contention.
    Cas,
    /// Seeded bug: plain store of the locally computed sum (lost updates).
    BlindStore,
}

/// `threads` adders, each performing `adds_each` additions of its own
/// power-of-two delta.
#[derive(Debug, Clone, Copy)]
pub struct AtomicAddModel {
    /// Concurrent adder threads (≤ 52 so deltas stay exactly summable).
    pub threads: usize,
    /// Additions per thread.
    pub adds_each: usize,
    /// Write-back discipline.
    pub mode: AddMode,
}

impl AtomicAddModel {
    /// The headline configuration: 2 threads × 2 adds each.
    #[must_use]
    pub fn two_by_two(mode: AddMode) -> Self {
        Self {
            threads: 2,
            adds_each: 2,
            mode,
        }
    }

    /// Thread `tid`'s delta: `2^tid`, exactly representable and exactly
    /// summable for small configurations.
    fn delta(tid: usize) -> f64 {
        (1u64 << tid) as f64
    }

    fn expected_sum(&self) -> f64 {
        (0..self.threads)
            .map(|tid| Self::delta(tid) * self.adds_each as f64)
            .sum()
    }
}

#[derive(Debug, Clone)]
struct Adder {
    /// The value observed by the pending load, if mid-add.
    observed: Option<f64>,
    remaining: usize,
}

/// The shared accumulator plus each adder's in-flight load.
#[derive(Debug, Clone)]
pub struct AtomicAddState {
    value: f64,
    adders: Vec<Adder>,
}

impl Schedulable for AtomicAddModel {
    type State = AtomicAddState;

    fn init(&self) -> AtomicAddState {
        AtomicAddState {
            value: 0.0,
            adders: (0..self.threads)
                .map(|_| Adder {
                    observed: None,
                    remaining: self.adds_each,
                })
                .collect(),
        }
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn step(&self, state: &mut AtomicAddState, tid: usize) -> StepStatus {
        let observed = state.adders[tid].observed;
        match observed {
            None => {
                state.adders[tid].observed = Some(state.value);
                StepStatus::Runnable
            }
            Some(seen) => {
                let proposed = seen + Self::delta(tid);
                match self.mode {
                    AddMode::Cas => {
                        if state.value.to_bits() == seen.to_bits() {
                            state.value = proposed;
                        } else {
                            // CAS failed: re-read immediately (the re-read
                            // is the atomic failure-reload of
                            // `compare_exchange_weak`'s returned value) and
                            // stay mid-add.
                            state.adders[tid].observed = Some(state.value);
                            return StepStatus::Runnable;
                        }
                    }
                    AddMode::BlindStore => state.value = proposed,
                }
                state.adders[tid].observed = None;
                state.adders[tid].remaining -= 1;
                if state.adders[tid].remaining == 0 {
                    StepStatus::Done
                } else {
                    StepStatus::Runnable
                }
            }
        }
    }

    fn check(&self, state: &AtomicAddState, done: bool) -> Result<(), String> {
        if done {
            let expected = self.expected_sum();
            if state.value.to_bits() != expected.to_bits() {
                return Err(format!(
                    "conservation violated: accumulated {} != expected {expected}",
                    state.value
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, ReplayOutcome};

    #[test]
    fn cas_fetch_add_conserves_the_sum_under_two_preemptions() {
        let model = AtomicAddModel::two_by_two(AddMode::Cas);
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
        assert!(report.schedules > 10, "exhaustiveness: {report:?}");
    }

    #[test]
    fn three_threads_still_conserve() {
        let model = AtomicAddModel {
            threads: 3,
            adds_each: 1,
            mode: AddMode::Cas,
        };
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
    }

    #[test]
    fn blind_store_loses_an_update_with_one_preemption() {
        let model = AtomicAddModel::two_by_two(AddMode::BlindStore);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report.counterexample.expect("blind store must lose");
        assert_eq!(cex.preemptions, 1, "{cex:?}");
        assert!(cex.violation.message.contains("conservation violated"));
        match replay(&model, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("minimized trace must reproduce, got {other:?}"),
        }
    }
}
