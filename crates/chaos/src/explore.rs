//! The bounded-preemption interleaving explorer.
//!
//! A protocol implements [`Schedulable`]: a fixed set of threads, each
//! advanced one *atomic step* at a time over a cloneable shared state, with
//! an invariant checked after every step. The [`Explorer`] then enumerates
//! every schedule whose number of *preemptions* — switching away from a
//! thread that could still run — stays within a bound, depth-first. This is
//! the classic context-bounded model-checking trade: most concurrency bugs
//! need only one or two preemptions at exactly the wrong step, so a small
//! bound buys exhaustive coverage of the dangerous schedules at a cost that
//! stays polynomial in program length per preemption.
//!
//! Schedules are recorded in the same [`Decision`] vocabulary as the shmem
//! simulator's adversary logs (`asgd_shmem::sched`), and counterexamples
//! serialize through
//! [`encode_schedule`](asgd_shmem::sched::encode_schedule) — one replayable
//! text line. [`replay`] re-executes a trace step for step; a minimized
//! counterexample must reproduce its violation *bit for bit* (same message,
//! same step), which is what makes an artifact from CI actionable locally.
//!
//! Minimization is two-stage: the explorer searches preemption bounds in
//! increasing order, so the first counterexample found already uses the
//! fewest preemptions any failure needs; a greedy delta pass then deletes
//! individual steps while the replayed violation message stays identical.

use asgd_shmem::sched::Decision;

/// Whether a thread can take more steps after the one just executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The thread has more steps to run.
    Runnable,
    /// The thread finished its program.
    Done,
}

/// A concurrent protocol lifted into an explorable step function.
///
/// Implementations must be deterministic: the same schedule over the same
/// initial state must visit the same states — that determinism is what
/// makes counterexample traces replayable.
pub trait Schedulable {
    /// The shared state the threads race on. Cloned at every branch point
    /// of the DFS, so keep it small.
    type State: Clone;

    /// The initial shared state.
    fn init(&self) -> Self::State;

    /// Number of threads; thread ids are `0..thread_count()`.
    fn thread_count(&self) -> usize;

    /// True when thread `tid` can make progress right now. A blocked
    /// thread (e.g. spinning on a latch another thread holds) must report
    /// `false` instead of burning no-op steps, so the schedule space stays
    /// finite. Threads that returned [`StepStatus::Done`] are never asked.
    fn enabled(&self, _state: &Self::State, _tid: usize) -> bool {
        true
    }

    /// Executes thread `tid`'s next atomic step.
    fn step(&self, state: &mut Self::State, tid: usize) -> StepStatus;

    /// The protocol invariant, checked after every step; `Err` is the
    /// violation message. `done` is true once every thread has finished
    /// (for invariants, like conservation, that only hold at quiescence).
    fn check(&self, state: &Self::State, done: bool) -> Result<(), String>;
}

/// An invariant violation at a specific step of a specific schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The protocol's message from [`Schedulable::check`].
    pub message: String,
    /// 0-based index of the schedule step after which the check failed.
    pub step: usize,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "after step {}: {}", self.step, self.message)
    }
}

/// A failing schedule: the trace that reaches the violation, minimized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The schedule, one [`Decision::Schedule`] per step, ending at the
    /// violating step.
    pub trace: Vec<Decision>,
    /// What failed.
    pub violation: Violation,
    /// Preemptions the trace uses (minimal: lower bounds found nothing).
    pub preemptions: usize,
}

impl Counterexample {
    /// The replayable one-line artifact form of the trace
    /// (see [`encode_schedule`](asgd_shmem::sched::encode_schedule)).
    #[must_use]
    pub fn artifact(&self) -> String {
        asgd_shmem::sched::encode_schedule(&self.trace)
    }
}

/// What an exploration found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Complete schedules executed across all searched preemption bounds.
    pub schedules: u64,
    /// Total steps executed.
    pub steps: u64,
    /// The minimized counterexample, if any schedule violated the
    /// invariant. `None` means every schedule within the bound passed.
    pub counterexample: Option<Counterexample>,
    /// True if the schedule budget ran out before the space was exhausted
    /// — a `None` counterexample is then *not* a verification.
    pub truncated: bool,
}

impl ExploreReport {
    /// True when the invariant held on every explored schedule *and* the
    /// space within the bound was fully enumerated.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.counterexample.is_none() && !self.truncated
    }
}

/// Why a [`replay`] did not reproduce a clean run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The trace replayed to this violation.
    Violation(Violation),
    /// The trace named a thread that was done or blocked at that step —
    /// the trace does not belong to this protocol instance.
    Diverged {
        /// The step at which the trace stopped making sense.
        step: usize,
    },
}

/// DFS explorer over bounded-preemption schedules.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum preemptions per schedule (searched 0..=bound, in order).
    pub max_preemptions: usize,
    /// Safety valve on complete schedules before giving up (`truncated`).
    pub max_schedules: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_schedules: 5_000_000,
        }
    }
}

struct Dfs<'a, P: Schedulable> {
    protocol: &'a P,
    bound: usize,
    budget: u64,
    schedules: u64,
    steps: u64,
    truncated: bool,
    trace: Vec<Decision>,
}

impl<P: Schedulable> Dfs<'_, P> {
    /// Explores every completion of the current prefix; `Some` is the first
    /// violation found.
    fn run(
        &mut self,
        state: &P::State,
        alive: &[bool],
        last: Option<usize>,
        preemptions_left: usize,
    ) -> Option<Counterexample> {
        let enabled: Vec<usize> = (0..alive.len())
            .filter(|&tid| alive[tid] && self.protocol.enabled(state, tid))
            .collect();
        if enabled.is_empty() {
            // Deadlock (alive threads, none enabled) would also land here;
            // protocols in this crate block only on latches whose holder is
            // alive, so an empty enabled set with live threads cannot
            // persist — treat it as schedule end and let `check(done)`
            // judge the state (alive threads ⇒ done=false ⇒ quiescence
            // invariants are not asserted spuriously).
            self.schedules += 1;
            if self.schedules >= self.budget {
                self.truncated = true;
            }
            return None;
        }
        // Continue the running thread first: low-preemption schedules come
        // out of the DFS earliest, which keeps counterexamples natural.
        let mut order = Vec::with_capacity(enabled.len());
        if let Some(last) = last {
            if enabled.contains(&last) {
                order.push(last);
            }
        }
        for &tid in &enabled {
            if Some(tid) != last {
                order.push(tid);
            }
        }
        let last_still_enabled = last.is_some_and(|l| enabled.contains(&l));
        for tid in order {
            if self.truncated {
                return None;
            }
            let preemption = last_still_enabled && Some(tid) != last;
            if preemption && preemptions_left == 0 {
                continue;
            }
            let mut next = state.clone();
            let status = self.protocol.step(&mut next, tid);
            self.steps += 1;
            self.trace.push(Decision::Schedule(tid));
            let done_after = {
                let mut alive_after = alive.to_vec();
                if status == StepStatus::Done {
                    alive_after[tid] = false;
                }
                alive_after
            };
            let all_done = !done_after.iter().any(|&a| a);
            if let Err(message) = self.protocol.check(&next, all_done) {
                let violation = Violation {
                    message,
                    step: self.trace.len() - 1,
                };
                let trace = self.trace.clone();
                self.trace.pop();
                return Some(Counterexample {
                    trace,
                    violation,
                    preemptions: self.bound - preemptions_left + usize::from(preemption),
                });
            }
            let found = self.run(
                &next,
                &done_after,
                Some(tid),
                preemptions_left - usize::from(preemption),
            );
            self.trace.pop();
            if found.is_some() {
                return found;
            }
        }
        None
    }
}

impl Explorer {
    /// An explorer with the given preemption bound.
    #[must_use]
    pub fn with_bound(max_preemptions: usize) -> Self {
        Self {
            max_preemptions,
            ..Self::default()
        }
    }

    /// Explores all schedules of `protocol` with at most
    /// [`max_preemptions`](Explorer::max_preemptions) preemptions.
    ///
    /// Bounds are searched in increasing order, so a returned
    /// counterexample uses the fewest preemptions any failure needs; it is
    /// then step-minimized with [`minimize`].
    pub fn explore<P: Schedulable>(&self, protocol: &P) -> ExploreReport {
        let mut report = ExploreReport {
            schedules: 0,
            steps: 0,
            counterexample: None,
            truncated: false,
        };
        for bound in 0..=self.max_preemptions {
            let mut dfs = Dfs {
                protocol,
                bound,
                budget: self.max_schedules.saturating_sub(report.schedules),
                schedules: 0,
                steps: 0,
                truncated: false,
                trace: Vec::new(),
            };
            let state = protocol.init();
            let alive = vec![true; protocol.thread_count()];
            let found = dfs.run(&state, &alive, None, bound);
            report.schedules += dfs.schedules;
            report.steps += dfs.steps;
            report.truncated |= dfs.truncated;
            if let Some(cex) = found {
                report.counterexample = Some(minimize(protocol, cex));
                return report;
            }
            if report.truncated {
                return report;
            }
        }
        report
    }
}

/// Replays `trace` against a fresh instance of `protocol`. `Ok` means the
/// whole trace executed without violating the invariant.
///
/// Deterministic protocols make this exact: replaying a counterexample's
/// trace yields the same [`Violation`] — message and step — bit for bit.
///
/// # Errors
///
/// [`ReplayOutcome::Violation`] when the invariant fails mid-trace,
/// [`ReplayOutcome::Diverged`] when the trace schedules a thread that is
/// done or blocked (the trace belongs to a different protocol instance).
pub fn replay<P: Schedulable>(protocol: &P, trace: &[Decision]) -> Result<(), ReplayOutcome> {
    let mut state = protocol.init();
    let mut alive = vec![true; protocol.thread_count()];
    for (step, decision) in trace.iter().enumerate() {
        let Decision::Schedule(tid) = *decision else {
            return Err(ReplayOutcome::Diverged { step });
        };
        if tid >= alive.len() || !alive[tid] || !protocol.enabled(&state, tid) {
            return Err(ReplayOutcome::Diverged { step });
        }
        if protocol.step(&mut state, tid) == StepStatus::Done {
            alive[tid] = false;
        }
        let done = !alive.iter().any(|&a| a);
        if let Err(message) = protocol.check(&state, done) {
            return Err(ReplayOutcome::Violation(Violation { message, step }));
        }
    }
    Ok(())
}

/// Greedy delta-minimization: tries to delete each step of the trace,
/// keeping a deletion whenever the replayed run still fails with the *same
/// violation message*. The returned counterexample's violation is the
/// replayed one (its `step` reflects the shortened trace).
#[must_use]
pub fn minimize<P: Schedulable>(protocol: &P, cex: Counterexample) -> Counterexample {
    let mut trace = cex.trace;
    let mut violation = cex.violation;
    let mut i = 0;
    while i < trace.len() {
        let mut candidate = trace.clone();
        candidate.remove(i);
        match replay(protocol, &candidate) {
            Err(ReplayOutcome::Violation(v)) if v.message == violation.message => {
                trace = candidate;
                violation = v;
                // Do not advance: the element now at `i` is new.
            }
            _ => i += 1,
        }
    }
    // The violating step is the last one that matters; drop any tail.
    trace.truncate(violation.step + 1);
    Counterexample {
        preemptions: count_preemptions(protocol, &trace),
        trace,
        violation,
    }
}

/// Preemptions a trace uses: switches away from a thread that was still
/// runnable and enabled at the switch point.
fn count_preemptions<P: Schedulable>(protocol: &P, trace: &[Decision]) -> usize {
    let mut state = protocol.init();
    let mut alive = vec![true; protocol.thread_count()];
    let mut last: Option<usize> = None;
    let mut preemptions = 0;
    for decision in trace {
        let Decision::Schedule(tid) = *decision else {
            break;
        };
        if let Some(l) = last {
            if l != tid && alive.get(l).copied().unwrap_or(false) && protocol.enabled(&state, l) {
                preemptions += 1;
            }
        }
        if tid >= alive.len() || !alive[tid] {
            break;
        }
        if protocol.step(&mut state, tid) == StepStatus::Done {
            alive[tid] = false;
        }
        last = Some(tid);
    }
    preemptions
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a counter via load-then-store; the classic
    /// lost update needs exactly one preemption between load and store.
    #[derive(Clone)]
    struct RacyCounter;

    #[derive(Clone)]
    struct RacyState {
        value: u32,
        loaded: [Option<u32>; 2],
        done: [bool; 2],
    }

    impl Schedulable for RacyCounter {
        type State = RacyState;

        fn init(&self) -> RacyState {
            RacyState {
                value: 0,
                loaded: [None, None],
                done: [false, false],
            }
        }

        fn thread_count(&self) -> usize {
            2
        }

        fn step(&self, state: &mut RacyState, tid: usize) -> StepStatus {
            match state.loaded[tid] {
                None => {
                    state.loaded[tid] = Some(state.value);
                    StepStatus::Runnable
                }
                Some(v) => {
                    state.value = v + 1;
                    state.done[tid] = true;
                    StepStatus::Done
                }
            }
        }

        fn check(&self, state: &RacyState, done: bool) -> Result<(), String> {
            if done && state.value != 2 {
                return Err(format!("lost update: value {} != 2", state.value));
            }
            Ok(())
        }
    }

    #[test]
    fn zero_preemptions_misses_the_lost_update() {
        let report = Explorer::with_bound(0).explore(&RacyCounter);
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.schedules, 2, "two serial orders");
    }

    #[test]
    fn one_preemption_finds_and_minimizes_the_lost_update() {
        let report = Explorer::with_bound(2).explore(&RacyCounter);
        let cex = report.counterexample.expect("racy counter must fail");
        assert_eq!(cex.preemptions, 1, "minimal preemption count");
        // Minimal failing schedule: both loads, both stores — 4 steps.
        assert_eq!(cex.trace.len(), 4, "{cex:?}");
        assert!(cex.violation.message.contains("lost update"));
        // The artifact replays to the identical violation.
        let decoded = asgd_shmem::sched::decode_schedule(&cex.artifact()).expect("artifact parses");
        assert_eq!(decoded, cex.trace);
        match replay(&RacyCounter, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("expected the same violation, got {other:?}"),
        }
    }

    #[test]
    fn replay_of_a_foreign_trace_diverges_with_a_typed_outcome() {
        let trace = vec![Decision::Schedule(7)];
        assert_eq!(
            replay(&RacyCounter, &trace),
            Err(ReplayOutcome::Diverged { step: 0 })
        );
        let trace = vec![Decision::Crash(0)];
        assert_eq!(
            replay(&RacyCounter, &trace),
            Err(ReplayOutcome::Diverged { step: 0 })
        );
    }

    #[test]
    fn schedule_budget_truncation_is_reported_not_verified() {
        let explorer = Explorer {
            max_preemptions: 2,
            max_schedules: 1,
        };
        let report = explorer.explore(&RacyCounter);
        assert!(report.truncated);
        assert!(!report.verified());
    }
}
