//! Benign (non-adversarial) schedulers.

use super::{Decision, SchedView, Scheduler};
use crate::op::{OpTag, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the lowest-id runnable thread to completion, then the next.
///
/// With the Algorithm-1 program this produces a fully serial execution:
/// thread 0 performs all `T` iterations, the remaining threads find the
/// counter exhausted and halt. Used as the no-concurrency baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialScheduler;

impl SerialScheduler {
    /// Creates a serial scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for SerialScheduler {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        Decision::Schedule(
            view.first_runnable()
                .expect("engine guarantees a runnable thread"),
        )
    }

    fn name(&self) -> &str {
        "serial"
    }
}

/// Fires one action per thread in cyclic order — maximal benign interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepRoundRobin {
    next: ThreadId,
}

impl StepRoundRobin {
    /// Creates a round-robin scheduler starting at thread 0.
    #[must_use]
    pub fn new() -> Self {
        Self { next: 0 }
    }
}

impl Scheduler for StepRoundRobin {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        let tid = view
            .next_runnable_from(self.next % view.threads.len().max(1))
            .expect("engine guarantees a runnable thread");
        self.next = (tid + 1) % view.threads.len();
        Decision::Schedule(tid)
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Schedules a uniformly random runnable thread each step (the oblivious
/// stochastic scheduler assumed by much prior work, e.g. De Sa et al.).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with its own deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        let runnable: Vec<ThreadId> = view.runnable().map(|t| t.id).collect();
        let pick = runnable[self.rng.gen_range(0..runnable.len())];
        Decision::Schedule(pick)
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Serialises *iterations* but rotates the executing thread at every
/// iteration boundary.
///
/// Equivalent to sequential SGD in which consecutive iterations are executed
/// by different threads (different coin streams). Useful for separating "the
/// effect of concurrency" from "the effect of multiple coin streams".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterationSerial {
    token: ThreadId,
    fresh: bool,
}

impl IterationSerial {
    /// Creates the scheduler with the token at thread 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            token: 0,
            fresh: true,
        }
    }
}

impl Scheduler for IterationSerial {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        let n = view.threads.len();
        for _ in 0..=n {
            if !view.is_runnable(self.token) {
                self.token = view
                    .next_runnable_from((self.token + 1) % n)
                    .expect("engine guarantees a runnable thread");
                self.fresh = true;
            }
            let at_boundary = view.threads[self.token].pending_tag() == Some(OpTag::ClaimIteration);
            if at_boundary && !self.fresh {
                // Iteration finished: pass the token along.
                self.token = view
                    .next_runnable_from((self.token + 1) % n)
                    .expect("engine guarantees a runnable thread");
                self.fresh = true;
                continue;
            }
            self.fresh = false;
            return Decision::Schedule(self.token);
        }
        // All runnable threads sit at boundaries; schedule the token holder.
        Decision::Schedule(self.token)
    }

    fn name(&self) -> &str {
        "iteration-serial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionTracker;
    use crate::memory::Memory;
    use crate::op::{Action, MemOp};
    use crate::sched::{ThreadStatus, ThreadView};

    fn runnable_with_tags(tags: &[Option<OpTag>]) -> Vec<ThreadView> {
        tags.iter()
            .enumerate()
            .map(|(id, tag)| ThreadView {
                id,
                status: if tag.is_some() {
                    ThreadStatus::Runnable
                } else {
                    ThreadStatus::Halted
                },
                pending: tag.map(|tag| Action::Op {
                    op: MemOp::ReadF64 { idx: 0 },
                    tag,
                }),
            })
            .collect()
    }

    fn view<'a>(
        threads: &'a [ThreadView],
        memory: &'a Memory,
        tracker: &'a ContentionTracker,
    ) -> SchedView<'a> {
        SchedView {
            step: 0,
            memory,
            threads,
            tracker,
            crashes_remaining: threads.len().saturating_sub(1),
        }
    }

    #[test]
    fn serial_picks_lowest() {
        let threads = runnable_with_tags(&[None, Some(OpTag::Untagged), Some(OpTag::Untagged)]);
        let m = Memory::new(1, 1);
        let t = ContentionTracker::new(3);
        let mut s = SerialScheduler::new();
        assert_eq!(s.decide(&view(&threads, &m, &t)), Decision::Schedule(1));
        assert_eq!(s.name(), "serial");
    }

    #[test]
    fn round_robin_cycles() {
        let threads = runnable_with_tags(&[
            Some(OpTag::Untagged),
            Some(OpTag::Untagged),
            Some(OpTag::Untagged),
        ]);
        let m = Memory::new(1, 1);
        let t = ContentionTracker::new(3);
        let mut s = StepRoundRobin::new();
        let v = view(&threads, &m, &t);
        assert_eq!(s.decide(&v), Decision::Schedule(0));
        assert_eq!(s.decide(&v), Decision::Schedule(1));
        assert_eq!(s.decide(&v), Decision::Schedule(2));
        assert_eq!(s.decide(&v), Decision::Schedule(0));
    }

    #[test]
    fn round_robin_skips_dead_threads() {
        let threads = runnable_with_tags(&[Some(OpTag::Untagged), None, Some(OpTag::Untagged)]);
        let m = Memory::new(1, 1);
        let t = ContentionTracker::new(3);
        let mut s = StepRoundRobin::new();
        let v = view(&threads, &m, &t);
        assert_eq!(s.decide(&v), Decision::Schedule(0));
        assert_eq!(s.decide(&v), Decision::Schedule(2));
        assert_eq!(s.decide(&v), Decision::Schedule(0));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let threads = runnable_with_tags(&[Some(OpTag::Untagged), Some(OpTag::Untagged)]);
        let m = Memory::new(1, 1);
        let t = ContentionTracker::new(2);
        let seq = |seed: u64| -> Vec<Decision> {
            let mut s = RandomScheduler::new(seed);
            (0..16).map(|_| s.decide(&view(&threads, &m, &t))).collect()
        };
        assert_eq!(seq(5), seq(5));
    }

    #[test]
    fn iteration_serial_holds_token_mid_iteration() {
        // Thread 0 mid-iteration, thread 1 at boundary: token stays on 0.
        let threads = runnable_with_tags(&[
            Some(OpTag::ModelWrite {
                entry: 0,
                first: true,
                last: false,
            }),
            Some(OpTag::ClaimIteration),
        ]);
        let m = Memory::new(1, 1);
        let t = ContentionTracker::new(2);
        let mut s = IterationSerial::new();
        let v = view(&threads, &m, &t);
        assert_eq!(s.decide(&v), Decision::Schedule(0));
        assert_eq!(s.decide(&v), Decision::Schedule(0));
    }

    #[test]
    fn iteration_serial_rotates_at_boundary() {
        let m = Memory::new(1, 1);
        let t = ContentionTracker::new(2);
        let mut s = IterationSerial::new();
        // Token 0, fresh: schedules 0 even at boundary.
        let both_boundary =
            runnable_with_tags(&[Some(OpTag::ClaimIteration), Some(OpTag::ClaimIteration)]);
        let v = view(&both_boundary, &m, &t);
        assert_eq!(s.decide(&v), Decision::Schedule(0));
        // Still at boundary next step (claim fired, new claim pending after a
        // full iteration...) — not fresh anymore, so token passes to 1.
        assert_eq!(s.decide(&v), Decision::Schedule(1));
        assert_eq!(s.decide(&v), Decision::Schedule(0));
    }
}
