//! The driver's error type.

use asgd_core::runner::RunnerError;
use asgd_oracle::OracleSpecError;
use asgd_theory::martingale::UnstableStepSizeError;

/// Error running a [`RunSpec`](crate::RunSpec).
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// The oracle spec could not be built.
    Oracle(OracleSpecError),
    /// The spec is not executable on the selected backend (e.g. a halving
    /// step schedule on a constant-step backend), or a theory-derived
    /// configuration is invalid (e.g. a step size violating the Lemma 6.6
    /// stability condition).
    InvalidSpec(String),
    /// The simulated runner rejected the configuration.
    Runner(RunnerError),
    /// The run (or an attached observer) panicked. Session entry points
    /// contain the unwind instead of cascading it into unrelated pooled
    /// jobs; the payload message is preserved here.
    Panicked(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Oracle(e) => write!(f, "oracle: {e}"),
            Self::InvalidSpec(msg) => write!(f, "invalid spec: {msg}"),
            Self::Runner(e) => write!(f, "runner: {e}"),
            Self::Panicked(msg) => write!(f, "run panicked: {msg}"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Oracle(e) => Some(e),
            Self::Runner(e) => Some(e),
            Self::InvalidSpec(_) | Self::Panicked(_) => None,
        }
    }
}

impl From<OracleSpecError> for DriverError {
    fn from(e: OracleSpecError) -> Self {
        Self::Oracle(e)
    }
}

impl From<RunnerError> for DriverError {
    fn from(e: RunnerError) -> Self {
        Self::Runner(e)
    }
}

impl From<UnstableStepSizeError> for DriverError {
    fn from(e: UnstableStepSizeError) -> Self {
        // Route the Lemma 6.6 stability failure through the spec-error path:
        // a bad theory-derived step size must surface as a recoverable
        // error, never as `RateSupermartingale::new`'s panic inside a worker
        // thread.
        Self::InvalidSpec(e.to_string())
    }
}
