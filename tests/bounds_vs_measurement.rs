//! Bound-domination integration tests: the paper's probability bounds must
//! sit above measured failure rates on real executions (small scale;
//! the full sweeps live in the experiment harness).

use asyncsgd::metrics::estimate_probability;
use asyncsgd::prelude::*;
use asyncsgd::theory::{bounds, martingale::RateSupermartingale};
use std::sync::Arc;

#[test]
fn theorem_3_1_dominates_sequential_measurement() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 1.0).expect("valid"));
    let consts = oracle.constants(2.0);
    let (eps, theta, t) = (0.25, 1.0, 600_u64);
    let alpha = bounds::theorem_3_1_learning_rate(&consts, eps, theta);
    let est = estimate_probability(40, 0x31, |seed| {
        SequentialSgd::new(&oracle)
            .learning_rate(alpha)
            .iterations(t)
            .initial_point(vec![1.0, 0.0])
            .success_radius_sq(eps)
            .seed(seed)
            .run()
            .hit_iteration
            .is_none()
    });
    let bound = bounds::theorem_3_1(&consts, eps, theta, t, 1.0);
    assert!(
        est.consistent_with_upper_bound(bound),
        "measured {} exceeds bound {bound}",
        est.interval.lower
    );
}

#[test]
fn corollary_6_7_dominates_adversarial_measurement() {
    let d = 2;
    let oracle = Arc::new(NoisyQuadratic::new(d, 0.5).expect("valid"));
    let consts = oracle.constants(2.0);
    let (eps, theta, tau, n) = (0.04, 1.0, 8_u64, 3);
    let alpha = bounds::corollary_6_7_learning_rate(&consts, eps, tau, n, d, theta);
    let t = bounds::corollary_6_7_horizon(&consts, eps, tau, n, d, theta, 0.5, 1.0);
    let est = estimate_probability(12, 0x67, |seed| {
        LockFreeSgd::builder(Arc::clone(&oracle))
            .threads(n)
            .iterations(t)
            .learning_rate(alpha)
            .initial_point(vec![(0.5_f64).sqrt(); d])
            .success_radius_sq(eps)
            .scheduler(BoundedDelayAdversary::new(tau))
            .seed(seed)
            .run()
            .hit_iteration
            .is_none()
    });
    let bound = bounds::corollary_6_7(&consts, eps, tau, n, d, theta, t, 1.0);
    assert!(
        est.consistent_with_upper_bound(bound),
        "measured {} exceeds Eq. 13 bound {bound}",
        est.interval.lower
    );
}

#[test]
fn theorem_6_5_bound_computable_from_run_artifacts() {
    // Assemble the Theorem 6.5 bound from a real execution's measured τ_max
    // (rather than an assumed one) and verify the run's failure status is
    // consistent with it.
    let d = 2;
    let oracle = Arc::new(NoisyQuadratic::new(d, 0.5).expect("valid"));
    let consts = oracle.constants(2.0);
    let eps = 0.04;
    let alpha = bounds::corollary_6_7_learning_rate(&consts, eps, 8, 3, d, 1.0);
    let w = RateSupermartingale::new(alpha, &consts, eps);
    let t = 30_000_u64;
    let run = LockFreeSgd::builder(Arc::clone(&oracle))
        .threads(3)
        .iterations(t)
        .learning_rate(alpha)
        .initial_point(vec![(0.5_f64).sqrt(); d])
        .success_radius_sq(eps)
        .scheduler(BoundedDelayAdversary::new(8))
        .seed(1)
        .run();
    let tau_measured = run.execution.contention.tau_max();
    let bound = bounds::theorem_6_5(
        w.w0_upper_bound(1.0),
        alpha,
        w.lipschitz_h(),
        &consts,
        tau_measured,
        3,
        d,
        t,
    );
    assert!(bound.is_finite(), "precondition must hold at this scale");
    // The bound is small at this long horizon; the run indeed succeeded.
    assert!(bound < 0.5, "bound {bound}");
    assert!(run.hit_iteration.is_some());
}

#[test]
fn gibson_gramoli_and_lemmas_hold_on_a_long_adversarial_run() {
    let oracle = Arc::new(NoisyQuadratic::new(4, 1.0).expect("valid"));
    let run = LockFreeSgd::builder(oracle)
        .threads(4)
        .iterations(1_500)
        .learning_rate(0.02)
        .scheduler(BoundedDelayAdversary::new(24))
        .seed(2)
        .run();
    let c = &run.execution.contention;
    assert!(c.gibson_gramoli_holds(), "τ_avg = {} > 2n", c.tau_avg());
    assert!(c.lemma_6_4().holds);
    for k in [1, 2, 4] {
        if let Some(audit) = c.lemma_6_2(k) {
            assert!(audit.holds, "Lemma 6.2 failed at K={k}: {audit:?}");
        }
    }
}
