//! The [`GradientOracle`] trait.

use crate::constants::Constants;
use crate::sparse_grad::{ModelView, SparseGrad};
use rand::RngCore;

/// A stochastic-gradient oracle for a strongly convex objective.
///
/// This is the interface consumed by every SGD implementation in the
/// workspace (the sequential baseline, the simulated lock-free Algorithm 1,
/// and the native Hogwild runtime). Implementations must be `Send + Sync` —
/// native threads share one oracle — and deterministic given the caller's
/// RNG, so simulated executions replay exactly.
pub trait GradientOracle: Send + Sync {
    /// Model dimension `d`.
    fn dimension(&self) -> usize;

    /// Draws a stochastic gradient `g̃(x)` into `out`, using `rng` for the
    /// sample coin (and any gradient noise).
    ///
    /// Must satisfy `E[g̃(x)] = ∇f(x)` (unbiasedness).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `out.len()` differ from
    /// [`GradientOracle::dimension`].
    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]);

    /// Upper bound Δ on the number of nonzero entries any stochastic
    /// gradient can have, when the oracle knows one (§3's sparsity
    /// parameter). `None` means dense/unknown — the default — and executors
    /// then stay on the O(d) path.
    fn max_support(&self) -> Option<usize> {
        None
    }

    /// Draws a stochastic gradient reading only its support through `view`,
    /// writing the (≤ Δ) nonzero entries into `out` — the O(Δ) counterpart
    /// of [`GradientOracle::sample_gradient`].
    ///
    /// Sparse oracles override this to read exactly their support and must
    /// consume the *same RNG stream* as `sample_gradient` (so the two paths
    /// are trajectory-equivalent given one seed). The default falls back to
    /// the dense sampler: it materialises the full view, samples densely,
    /// and compresses the nonzeros — correct for every oracle, but it
    /// allocates O(d) per call, so executors only take the sparse path when
    /// [`GradientOracle::max_support`] says it pays off.
    fn sample_gradient_sparse(
        &self,
        view: &dyn ModelView,
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        out.clear();
        let d = self.dimension();
        assert_eq!(view.dimension(), d, "view dimension mismatch");
        let mut support = Vec::new();
        if self.sample_support(rng, &mut support) {
            let values: Vec<f64> = support.iter().map(|&j| view.entry(j)).collect();
            self.gradient_on_support(&support, &values, rng, out);
        } else {
            let mut x = vec![0.0; d];
            for (j, xj) in x.iter_mut().enumerate() {
                *xj = view.entry(j);
            }
            let mut g = vec![0.0; d];
            self.sample_gradient(&x, rng, &mut g);
            for (j, &gj) in g.iter().enumerate() {
                if gj != 0.0 {
                    out.push(j, gj);
                }
            }
        }
    }

    /// Phase 1 of two-phase sparse sampling: draws the *support* (coordinate
    /// index set) of the next stochastic gradient into `out`, consuming
    /// exactly the RNG draws `sample_gradient` uses for coordinate
    /// selection. Returns `false` (the default) when the oracle has no
    /// two-phase decomposition; `true` commits the caller to follow up with
    /// [`GradientOracle::gradient_on_support`].
    ///
    /// This split exists for executors that must *declare* their reads
    /// before performing them — the simulated shared-memory machine issues
    /// one schedulable read op per support entry instead of scanning all d
    /// registers.
    fn sample_support(&self, rng: &mut dyn RngCore, out: &mut Vec<usize>) -> bool {
        let _ = (rng, &out);
        false
    }

    /// Phase 2 of two-phase sparse sampling: given the `support` drawn by
    /// [`GradientOracle::sample_support`] and the model `values` read at
    /// exactly those coordinates, writes the gradient entries into `out`
    /// (consuming any remaining RNG draws, e.g. gradient noise).
    ///
    /// Only called after `sample_support` returned `true`; the default
    /// panics to surface contract violations.
    fn gradient_on_support(
        &self,
        support: &[usize],
        values: &[f64],
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        let _ = (support, values, rng, out);
        unreachable!("gradient_on_support called on an oracle whose sample_support returned false")
    }

    /// Writes the exact gradient `∇f(x)` into `out` (for diagnostics and
    /// unbiasedness tests).
    fn full_gradient(&self, x: &[f64], out: &mut [f64]);

    /// Evaluates the objective `f(x)`.
    fn objective(&self, x: &[f64]) -> f64;

    /// The minimiser `x*` of `f`.
    fn minimizer(&self) -> &[f64];

    /// Analytic constants `(c, L, M²)` valid within distance `radius` of the
    /// minimiser (§3 assumptions). Documented upper bounds, not estimates.
    fn constants(&self, radius: f64) -> Constants;

    /// Convenience: squared distance of `x` to the minimiser, the quantity
    /// compared against the success threshold `ε`.
    fn dist_sq_to_opt(&self, x: &[f64]) -> f64 {
        asgd_math::vec::l2_dist_sq(x, self.minimizer())
    }

    /// Short name for experiment tables.
    fn name(&self) -> &str {
        "oracle"
    }
}

/// Blanket impl so `&O` can be passed where an oracle is expected.
impl<O: GradientOracle + ?Sized> GradientOracle for &O {
    fn dimension(&self) -> usize {
        (**self).dimension()
    }
    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        (**self).sample_gradient(x, rng, out);
    }
    fn max_support(&self) -> Option<usize> {
        (**self).max_support()
    }
    fn sample_gradient_sparse(
        &self,
        view: &dyn ModelView,
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        (**self).sample_gradient_sparse(view, rng, out);
    }
    fn sample_support(&self, rng: &mut dyn RngCore, out: &mut Vec<usize>) -> bool {
        (**self).sample_support(rng, out)
    }
    fn gradient_on_support(
        &self,
        support: &[usize],
        values: &[f64],
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        (**self).gradient_on_support(support, values, rng, out);
    }
    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        (**self).full_gradient(x, out);
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (**self).objective(x)
    }
    fn minimizer(&self) -> &[f64] {
        (**self).minimizer()
    }
    fn constants(&self, radius: f64) -> Constants {
        (**self).constants(radius)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Blanket impl for shared ownership across native threads.
impl<O: GradientOracle + ?Sized> GradientOracle for std::sync::Arc<O> {
    fn dimension(&self) -> usize {
        (**self).dimension()
    }
    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        (**self).sample_gradient(x, rng, out);
    }
    fn max_support(&self) -> Option<usize> {
        (**self).max_support()
    }
    fn sample_gradient_sparse(
        &self,
        view: &dyn ModelView,
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        (**self).sample_gradient_sparse(view, rng, out);
    }
    fn sample_support(&self, rng: &mut dyn RngCore, out: &mut Vec<usize>) -> bool {
        (**self).sample_support(rng, out)
    }
    fn gradient_on_support(
        &self,
        support: &[usize],
        values: &[f64],
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        (**self).gradient_on_support(support, values, rng, out);
    }
    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        (**self).full_gradient(x, out);
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (**self).objective(x)
    }
    fn minimizer(&self) -> &[f64] {
        (**self).minimizer()
    }
    fn constants(&self, radius: f64) -> Constants {
        (**self).constants(radius)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Checks `E[g̃(x)] ≈ ∇f(x)` by Monte-Carlo averaging `samples` stochastic
/// gradients at `x` and comparing with the exact gradient.
///
/// Returns the ℓ∞ deviation between the empirical mean gradient and `∇f(x)`.
/// Test helper used across workload test suites.
pub fn unbiasedness_gap<O: GradientOracle + ?Sized>(
    oracle: &O,
    x: &[f64],
    rng: &mut dyn RngCore,
    samples: usize,
) -> f64 {
    let d = oracle.dimension();
    let mut mean = vec![0.0; d];
    let mut g = vec![0.0; d];
    for _ in 0..samples {
        oracle.sample_gradient(x, rng, &mut g);
        for (m, gi) in mean.iter_mut().zip(&g) {
            *m += gi;
        }
    }
    for m in &mut mean {
        *m /= samples as f64;
    }
    let mut exact = vec![0.0; d];
    oracle.full_gradient(x, &mut exact);
    mean.iter()
        .zip(&exact)
        .fold(0.0_f64, |acc, (m, e)| acc.max((m - e).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::NoisyQuadratic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn reference_and_arc_delegate() {
        let o = NoisyQuadratic::new(3, 0.5).unwrap();
        let r = &o;
        assert_eq!(GradientOracle::dimension(&r), 3);
        assert_eq!(r.minimizer(), &[0.0, 0.0, 0.0]);
        assert_eq!(r.name(), "noisy-quadratic");
        let a: Arc<dyn GradientOracle> = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        assert_eq!(a.dimension(), 2);
        assert!(a.objective(&[1.0, 1.0]) > 0.0);
        let k = a.constants(1.0);
        assert!(k.c > 0.0);
    }

    #[test]
    fn dist_sq_to_opt_default_impl() {
        let o = NoisyQuadratic::new(2, 0.0).unwrap();
        assert_eq!(o.dist_sq_to_opt(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn default_sparse_sampler_matches_dense_with_same_seed() {
        // The dense-fallback default must consume exactly the dense RNG
        // stream and produce the same (compressed) gradient.
        let o = NoisyQuadratic::new(3, 0.7).unwrap();
        let x = [1.0, -0.5, 2.0];
        let mut dense = vec![0.0; 3];
        o.sample_gradient(&x, &mut StdRng::seed_from_u64(9), &mut dense);
        let mut sparse = crate::sparse_grad::SparseGrad::new();
        o.sample_gradient_sparse(&&x[..], &mut StdRng::seed_from_u64(9), &mut sparse);
        let mut densified = vec![0.0; 3];
        sparse.densify_into(&mut densified);
        for (a, b) in dense.iter().zip(&densified) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(o.max_support().is_none(), "dense oracle stays dense");
        assert!(!o.sample_support(&mut StdRng::seed_from_u64(0), &mut Vec::new()));
    }

    #[test]
    fn unbiasedness_gap_small_for_quadratic() {
        let o = NoisyQuadratic::new(4, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let gap = unbiasedness_gap(&o, &[1.0, -2.0, 0.5, 3.0], &mut rng, 40_000);
        assert!(gap < 0.05, "gap {gap}");
    }
}
