//! Serve live training runs over TCP — tenancy, priorities, and shedding.
//!
//! ```text
//! cargo run --release --example serve_net
//! ```
//!
//! Hosts two named hogwild training runs in a [`ModelRegistry`], puts the
//! `asgd-net` wire protocol in front of them on an ephemeral loopback
//! port, and walks the whole surface: per-model scoring and stats from a
//! plain blocking client, then a deliberate overload — open-loop predict
//! traffic far past capacity with a low/normal/high priority mix and a
//! 1 ms SLO on executed requests — showing the server shed low-priority
//! traffic with explicit frames while the admitted classes keep serving.
//! Finally one model is dropped mid-flight: its queries turn into typed
//! `NoSuchModel` errors while the surviving model answers on.

use asyncsgd::net::ErrorCode;
use asyncsgd::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 8_192;

fn train_spec(seed: u64) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", DIM).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(1)
    .iterations(u64::MAX / 2)
    .learning_rate(0.5 / DIM as f64)
    .x0(vec![1.0; DIM])
    .seed(seed)
}

fn main() {
    // --- tenancy: two named runs behind one front-end -----------------
    let registry = Arc::new(ModelRegistry::new());
    let ranker = registry
        .create("ranker", &train_spec(7), ReadMode::Snapshot, 2_048)
        .expect("ranker starts")
        .0;
    let scorer = registry
        .create("scorer", &train_spec(8), ReadMode::Live, 2_048)
        .expect("scorer starts")
        .0;
    let config = NetConfig::default().slo(SloPolicy::with_slo(Duration::from_millis(1)));
    let server = NetServer::serve(Arc::clone(&registry), config).expect("server binds loopback");
    println!(
        "serving {} models on {}",
        registry.len(),
        server.local_addr()
    );

    let mut client = NetClient::connect(server.local_addr()).expect("client connects");
    for &(name, id) in &[("ranker", ranker), ("scorer", scorer)] {
        let stats = client.stats_by_name(name).expect("stats answer");
        assert_eq!(stats.id, id);
        let (score, staleness) = client
            .dot_score(id, &[(0, 1.0), (17, -2.0), (4_000, 0.5)], Priority::Normal)
            .expect("scores");
        println!(
            "  {name} (id {id}, {mode}): dot-score {score:+.4}, staleness {stale}, {iters} iters trained",
            mode = stats.mode.label(),
            stale = staleness.map_or_else(|| "-".to_string(), |s| s.to_string()),
            iters = stats.iterations,
        );
    }

    // --- overload: open-loop predict traffic far past one core --------
    println!("\noverloading: 9 open-loop clients at 1500 req/s each, priorities low/normal/high, SLO 1 ms");
    let spec = NetWorkloadSpec::new(vec![ranker, scorer])
        .clients(9)
        .duration_secs(1.2)
        .arrival(Arrival::FixedRate { qps: 1_500.0 })
        .op(asyncsgd::net::NetOp::Predict)
        .priorities(vec![Priority::Low, Priority::Normal, Priority::High])
        .seed(0xFEED);
    let report = run_net_workload(server.local_addr(), &spec).expect("workload runs");
    for class in &report.classes {
        println!(
            "  class {:>6}: sent {:>5}, answered {:>5}, shed {:>5}, p99 {:>8.1} µs",
            class.priority,
            class.sent,
            class.answered,
            class.shed,
            class.latency.p99_ns as f64 / 1e3,
        );
    }
    let stats = server.stats();
    println!(
        "  server: executed {}, shed {}, rolling p99 {}",
        stats.executed,
        stats.shed,
        stats.rolling_p99_ns.map_or_else(
            || "-".to_string(),
            |ns| format!("{:.1} µs", ns as f64 / 1e3)
        ),
    );

    // --- drop one tenant mid-flight -----------------------------------
    let dropped = registry.drop_model("scorer").expect("drops");
    println!(
        "\ndropped `scorer` after {} iterations (stop={})",
        dropped.iterations,
        dropped.stop.as_deref().unwrap_or("-"),
    );
    // High priority: the rolling p99 is still catching its breath after
    // the overload, so lower classes may still be shed for a moment.
    match client.predict(scorer, Priority::High) {
        Err(asyncsgd::net::ClientError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::NoSuchModel);
            println!("  querying it now answers a typed NoSuchModel error");
        }
        other => panic!("expected a typed miss, got {other:?}"),
    }
    let (score, _) = client
        .dot_score(ranker, &[(0, 1.0)], Priority::High)
        .expect("survivor serves on");
    println!("  `ranker` serves on: dot-score {score:+.4}");

    server.stop();
    registry.shutdown();
    println!("\nfront-end stopped, registry drained — clean exit");
}
