//! The [`SnapshotCell`](asgd_hogwild::SnapshotCell) publish/read protocol
//! as an explorable step function.
//!
//! The model mirrors `asgd_hogwild::snapshot` one atomic operation per
//! step, at sequential consistency:
//!
//! * publisher: CAS the writer latch → read `seq` (version = seq + 1) →
//!   **announce** `wseq = version` → fill buffer `version % 2`, one word
//!   per step → publish `seq = version` → release the latch;
//! * reader: read `seq` (the version to copy; blocked until the first
//!   publication) → copy each word of buffer `version % 2` → validate:
//!   retry iff `wseq ≥ version + 2` (a writer announced the publication
//!   that reuses this buffer), else accept.
//!
//! Every word of publication `version` holds the value `version`, so a
//! correct accepted snapshot is all-words-equal-to-version; anything else
//! is a torn or overwritten read. The invariants checked after every step:
//! no torn snapshots, versions accepted by a reader are nondecreasing, and
//! total retries stay bounded by total publications (a retry is only
//! triggered by new publications, never spontaneously).
//!
//! [`FenceMode::WeakPublish`] is the deliberately seeded ordering bug: the
//! `wseq` announcement is reordered *after* the buffer fill — exactly the
//! reordering the release fence in `SnapshotCell::try_publish` exists to
//! prevent. Under that weakening a reader can copy half of version `k`,
//! lose the CPU to a publisher filling version `k + 2` into the same
//! buffer, finish its copy, and pass validation because `wseq` still reads
//! `k + 1` — an accepted torn snapshot, found by the explorer within two
//! preemptions and minimized to a replayable trace.

use crate::explore::{Schedulable, StepStatus};

/// Ordering discipline of the modeled publisher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceMode {
    /// The shipped protocol: announce `wseq` before filling the buffer.
    Correct,
    /// Seeded bug: announce `wseq` only after the buffer is filled, as if
    /// the release fence between announcement and fill were dropped.
    WeakPublish,
}

/// Model parameters: `publishers × publications` writers against `readers`
/// snapshot readers over `words`-word buffers.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotModel {
    /// Concurrent publisher threads.
    pub publishers: usize,
    /// Publications each publisher performs.
    pub publications_each: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Snapshot reads each reader performs.
    pub reads_each: usize,
    /// Words per buffer (the snapshot payload length).
    pub words: usize,
    /// Publisher ordering discipline.
    pub fence: FenceMode,
}

impl SnapshotModel {
    /// The headline configuration: 2 publishers × 1 reader, 2-word
    /// payloads, one publication and one read each.
    #[must_use]
    pub fn two_publishers_one_reader(fence: FenceMode) -> Self {
        Self {
            publishers: 2,
            publications_each: 1,
            readers: 1,
            reads_each: 1,
            words: 2,
            fence,
        }
    }

    /// A configuration deep enough to tear: version `k + 2` must exist for
    /// a reader of version `k` to race a buffer reuse, so each publisher
    /// publishes twice.
    #[must_use]
    pub fn buffer_reuse(fence: FenceMode) -> Self {
        Self {
            publishers: 2,
            publications_each: 2,
            readers: 1,
            reads_each: 1,
            words: 2,
            fence,
        }
    }

    fn total_publications(&self) -> usize {
        self.publishers * self.publications_each
    }
}

/// Where a modeled publisher is within one publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PubPc {
    Latch,
    ReadSeq,
    Announce,
    Fill { word: usize },
    Publish,
    Release,
}

/// Where a modeled reader is within one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadPc {
    ReadSeq,
    Copy { word: usize },
    Validate,
}

#[derive(Debug, Clone)]
struct Publisher {
    pc: PubPc,
    version: u64,
    remaining: usize,
}

#[derive(Debug, Clone)]
struct Reader {
    pc: ReadPc,
    version: u64,
    copy: Vec<u64>,
    last_accepted: u64,
    retries: usize,
    remaining: usize,
}

/// The modeled cell plus every thread's control state.
#[derive(Debug, Clone)]
pub struct SnapshotState {
    seq: u64,
    wseq: u64,
    writer: bool,
    bufs: [Vec<u64>; 2],
    publishers: Vec<Publisher>,
    readers: Vec<Reader>,
    violation: Option<String>,
}

impl Schedulable for SnapshotModel {
    type State = SnapshotState;

    fn init(&self) -> SnapshotState {
        SnapshotState {
            seq: 0,
            wseq: 0,
            writer: false,
            bufs: [vec![0; self.words], vec![0; self.words]],
            publishers: (0..self.publishers)
                .map(|_| Publisher {
                    pc: PubPc::Latch,
                    version: 0,
                    remaining: self.publications_each,
                })
                .collect(),
            readers: (0..self.readers)
                .map(|_| Reader {
                    pc: ReadPc::ReadSeq,
                    version: 0,
                    copy: vec![0; self.words],
                    last_accepted: 0,
                    retries: 0,
                    remaining: self.reads_each,
                })
                .collect(),
            violation: None,
        }
    }

    fn thread_count(&self) -> usize {
        self.publishers + self.readers
    }

    fn enabled(&self, state: &SnapshotState, tid: usize) -> bool {
        if tid < self.publishers {
            // A publisher spinning on a held latch makes no progress.
            state.publishers[tid].pc != PubPc::Latch || !state.writer
        } else {
            // A reader before the first publication spins on `seq == 0`.
            state.readers[tid - self.publishers].pc != ReadPc::ReadSeq || state.seq > 0
        }
    }

    fn step(&self, state: &mut SnapshotState, tid: usize) -> StepStatus {
        if tid < self.publishers {
            self.publisher_step(state, tid)
        } else {
            self.reader_step(state, tid - self.publishers)
        }
    }

    fn check(&self, state: &SnapshotState, _done: bool) -> Result<(), String> {
        match &state.violation {
            Some(message) => Err(message.clone()),
            None => Ok(()),
        }
    }
}

impl SnapshotModel {
    fn publisher_step(&self, state: &mut SnapshotState, tid: usize) -> StepStatus {
        let pc = state.publishers[tid].pc;
        match pc {
            PubPc::Latch => {
                debug_assert!(
                    !state.writer,
                    "latch step while held is filtered by enabled"
                );
                state.writer = true;
                state.publishers[tid].pc = PubPc::ReadSeq;
            }
            PubPc::ReadSeq => {
                state.publishers[tid].version = state.seq + 1;
                state.publishers[tid].pc = match self.fence {
                    FenceMode::Correct => PubPc::Announce,
                    FenceMode::WeakPublish => PubPc::Fill { word: 0 },
                };
            }
            PubPc::Announce => {
                state.wseq = state.publishers[tid].version;
                state.publishers[tid].pc = match self.fence {
                    FenceMode::Correct => PubPc::Fill { word: 0 },
                    FenceMode::WeakPublish => PubPc::Publish,
                };
            }
            PubPc::Fill { word } => {
                let version = state.publishers[tid].version;
                state.bufs[(version % 2) as usize][word] = version;
                state.publishers[tid].pc = if word + 1 < self.words {
                    PubPc::Fill { word: word + 1 }
                } else {
                    match self.fence {
                        FenceMode::Correct => PubPc::Publish,
                        FenceMode::WeakPublish => PubPc::Announce,
                    }
                };
            }
            PubPc::Publish => {
                state.seq = state.publishers[tid].version;
                state.publishers[tid].pc = PubPc::Release;
            }
            PubPc::Release => {
                state.writer = false;
                state.publishers[tid].remaining -= 1;
                if state.publishers[tid].remaining == 0 {
                    return StepStatus::Done;
                }
                state.publishers[tid].pc = PubPc::Latch;
            }
        }
        StepStatus::Runnable
    }

    fn reader_step(&self, state: &mut SnapshotState, rid: usize) -> StepStatus {
        let pc = state.readers[rid].pc;
        match pc {
            ReadPc::ReadSeq => {
                debug_assert!(state.seq > 0, "pre-publication read is filtered by enabled");
                state.readers[rid].version = state.seq;
                state.readers[rid].pc = ReadPc::Copy { word: 0 };
            }
            ReadPc::Copy { word } => {
                let version = state.readers[rid].version;
                state.readers[rid].copy[word] = state.bufs[(version % 2) as usize][word];
                state.readers[rid].pc = if word + 1 < self.words {
                    ReadPc::Copy { word: word + 1 }
                } else {
                    ReadPc::Validate
                };
            }
            ReadPc::Validate => {
                let reader = &mut state.readers[rid];
                if state.wseq >= reader.version + 2 {
                    // Someone announced the publication that reuses this
                    // buffer: discard and retry.
                    reader.retries += 1;
                    reader.pc = ReadPc::ReadSeq;
                    if reader.retries > self.total_publications() {
                        state.violation = Some(format!(
                            "reader {rid} retried {} times with only {} publications",
                            reader.retries,
                            self.total_publications()
                        ));
                    }
                } else {
                    // Accepted: the snapshot must be exactly the claimed
                    // publication, and versions must be monotone.
                    let version = reader.version;
                    let last = reader.last_accepted;
                    reader.last_accepted = version;
                    reader.remaining -= 1;
                    let copy = reader.copy.clone();
                    if let Some(word) = copy.iter().position(|&w| w != version) {
                        state.violation = Some(format!(
                            "torn snapshot: reader {rid} accepted version {version} \
                             but word {word} holds {} (copy {copy:?})",
                            copy[word]
                        ));
                    } else if version < last {
                        state.violation = Some(format!(
                            "version regression: reader {rid} accepted {version} after {last}"
                        ));
                    }
                    if state.readers[rid].remaining == 0 {
                        return StepStatus::Done;
                    }
                    state.readers[rid].pc = ReadPc::ReadSeq;
                }
            }
        }
        StepStatus::Runnable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, ReplayOutcome};

    #[test]
    fn correct_protocol_verifies_under_buffer_reuse_pressure() {
        let model = SnapshotModel::buffer_reuse(FenceMode::Correct);
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
        assert!(report.schedules > 100, "exhaustiveness: {report:?}");
    }

    #[test]
    fn weak_publish_fence_is_caught_and_the_trace_replays_identically() {
        let model = SnapshotModel::buffer_reuse(FenceMode::WeakPublish);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report.counterexample.expect("weak fence must tear");
        assert!(
            cex.violation.message.contains("torn snapshot"),
            "{:?}",
            cex.violation
        );
        assert!(cex.preemptions <= 2);
        match replay(&model, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("minimized trace must reproduce the tear, got {other:?}"),
        }
        // And the artifact text round-trips to the same trace.
        let decoded = asgd_shmem::sched::decode_schedule(&cex.artifact()).expect("artifact parses");
        assert_eq!(decoded, cex.trace);
    }

    #[test]
    fn one_publication_per_buffer_cannot_tear_even_with_the_weak_fence() {
        // Torn reads need a version k + 2 reusing the reader's buffer; with
        // one publication per publisher the versions stop at 2, so even the
        // weakened protocol is (vacuously) safe — a useful sanity check
        // that the model only reports real protocol violations.
        let model = SnapshotModel::two_publishers_one_reader(FenceMode::WeakPublish);
        let report = Explorer::with_bound(3).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
    }
}
