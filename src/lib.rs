//! `asyncsgd` — lock-free stochastic gradient descent in asynchronous shared
//! memory.
//!
//! A full reproduction of *"The Convergence of Stochastic Gradient Descent
//! in Asynchronous Shared Memory"* (Dan Alistarh, Christopher De Sa, Nikola
//! Konstantinov; PODC 2018, arXiv:1803.08841): the asynchronous shared-
//! memory machine with a strong adaptive adversary, Algorithm 1
//! (`EpochSGD`) and Algorithm 2 (`FullSGD`) both simulated and on native
//! threads, every convergence bound as computable functions, and an
//! experiment harness regenerating each theorem's table.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`driver`] | `asgd-driver` | **the front door**: one `RunSpec`, every backend, one `RunReport`; observable/cancellable sessions (`Driver`, `RunHandle`, `RunObserver`) and pooled sweeps (`run_many`) |
//! | [`math`] | `asgd-math` | vector kernels, Gaussian sampling, statistics |
//! | [`shmem`] | `asgd-shmem` | the simulated machine: registers, engine, schedulers/adversaries, contention audits |
//! | [`oracle`] | `asgd-oracle` | workloads with known `(c, L, M²)` constants + by-name registry |
//! | [`core`] | `asgd-core` | the paper's algorithms on the simulator |
//! | [`theory`] | `asgd-theory` | Theorems 3.1/6.3/6.5, Corollaries 6.7/7.1, §5 lower bound |
//! | [`hogwild`] | `asgd-hogwild` | native lock-free runtime + locked baseline + epoch guard + snapshot publication |
//! | [`serve`] | `asgd-serve` | online model serving: live/snapshot reads racing a training run, multi-model `ModelRegistry`, closed-loop traffic harness, latency/staleness telemetry |
//! | [`net`] | `asgd-net` | the network tier: length-prefixed wire protocol over TCP (v2: submit-observe streaming opcode), thread-per-connection server with admission control and SLO load shedding, blocking + retrying clients, seeded fault injection, open-loop socket workloads |
//! | [`ingest`] | `asgd-ingest` | continual learning from the live stream: producer fleets pushing labeled observations through the wire into bounded ingress queues, scheduled ground-truth drift, and time-to-recover measurement |
//! | [`chaos`] | `asgd-chaos` | adversarial robustness: bounded-preemption model checking of the workspace's own concurrent protocols (snapshot seqlock, atomic CAS loop, registry lifecycle, ingress queue) with replayable counterexample traces, plus the zero-wrong-answers net fault campaign |
//! | [`metrics`] | `asgd-metrics` | trial harness, tables, histograms |
//!
//! # Quickstart: the unified driver
//!
//! One [`RunSpec`](driver::RunSpec) value runs unchanged on every execution
//! model and yields one JSON-serialisable [`RunReport`](driver::RunReport):
//!
//! ```
//! use asyncsgd::prelude::*;
//!
//! let spec = RunSpec::new(OracleSpec::new("noisy-quadratic", 2).sigma(0.1), BackendKind::Hogwild)
//!     .threads(2)
//!     .iterations(2_000)
//!     .learning_rate(0.05)
//!     .x0(vec![1.0, -1.0])
//!     .seed(7);
//! for backend in [
//!     BackendKind::Sequential,
//!     BackendKind::SimulatedLockFree,
//!     BackendKind::Hogwild,
//!     BackendKind::Locked,
//!     BackendKind::GuardedEpoch,
//! ] {
//!     let report = run_spec(&spec.clone().backend(backend)).expect("valid spec");
//!     assert!(report.final_dist_sq < 0.5, "{backend}: {}", report.final_dist_sq);
//!     let _json = report.to_json(); // machine-readable summary
//! }
//! ```
//!
//! # Quickstart: native lock-free SGD
//!
//! ```
//! use asyncsgd::prelude::*;
//! use std::sync::Arc;
//!
//! let oracle = Arc::new(NoisyQuadratic::new(4, 0.1).expect("valid"));
//! let report = Hogwild::new(oracle, HogwildConfig {
//!     threads: 2,
//!     iterations: 5_000,
//!     alpha: 0.05,
//!     seed: 42,
//!     success_radius_sq: Some(0.01),
//! })
//! .run(&[1.0, -1.0, 1.0, -1.0]);
//! assert!(report.final_dist_sq < 0.1);
//! ```
//!
//! # Quickstart: the paper's adversary in the simulator
//!
//! ```
//! use asyncsgd::prelude::*;
//! use std::sync::Arc;
//!
//! let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).expect("valid"));
//! let tau = 30;
//! let run = LockFreeSgd::builder(oracle)
//!     .threads(2)
//!     .iterations(tau + 1)
//!     .learning_rate(0.1)
//!     .initial_point(vec![1.0])
//!     .scheduler(StaleGradientAdversary::new(0, 1, tau))
//!     .seed(7)
//!     .run();
//! // The §5 closed form, reproduced by a real execution:
//! let predicted = asyncsgd::theory::lower_bound::adversarial_iterate(0.1, tau, 1.0);
//! assert!((run.final_model[0] - predicted).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asgd_chaos as chaos;
pub use asgd_core as core;
pub use asgd_driver as driver;
pub use asgd_hogwild as hogwild;
pub use asgd_ingest as ingest;
pub use asgd_math as math;
pub use asgd_metrics as metrics;
pub use asgd_net as net;
pub use asgd_oracle as oracle;
pub use asgd_serve as serve;
pub use asgd_shmem as shmem;
pub use asgd_telemetry as telemetry;
pub use asgd_theory as theory;

/// The most common imports in one place.
pub mod prelude {
    pub use asgd_chaos::{run_net_chaos, Explorer, NetChaosSpec, Schedulable};
    pub use asgd_core::full_sgd::{run_simulated as run_full_sgd_simulated, FullSgdConfig};
    pub use asgd_core::runner::{LockFreeRun, LockFreeSgd, RunnerError};
    pub use asgd_core::sequential::SequentialSgd;
    pub use asgd_driver::{
        run_spec, run_spec_session, validate, BackendKind, Driver, DriverError, ModelLayoutSpec,
        ModelReader, ModelSnapshot, PinSpec, Progress, RunEvent, RunHandle, RunObserver, RunReport,
        RunSpec, SchedulerSpec, ServeHook, SessionCtx, ShardsSpec, SnapshotCell, SparsePathSpec,
        StepSize, TrajectorySample, UpdateOrderSpec, ValidationCell, ValidationCriterion,
        ValidationPlan, ValidationReport,
    };
    pub use asgd_hogwild::full_sgd::{NativeFullSgd, NativeFullSgdConfig};
    pub use asgd_hogwild::guarded::{GuardedEpochSgd, GuardedEpochSgdConfig};
    pub use asgd_hogwild::hogwild::{Hogwild, HogwildConfig};
    pub use asgd_hogwild::locked::LockedSgd;
    pub use asgd_hogwild::{
        ExecTuning, ModelLayout, ParamStore, ShardPolicy, ShardRouter, ShardTopology, ShardedModel,
        ShardedVec, SharedModel, SparsePolicy, UpdateOrder,
    };
    pub use asgd_ingest::{
        heterogeneous_fleet, DriftKind, DriftSpec, GroundTruth, IngestReport, IngestSpec,
        ProducerSpec, RecoveryLog, RecoveryMonitor,
    };
    pub use asgd_net::{
        run_net_workload, FaultPlan, NetClient, NetConfig, NetOp, NetReport, NetServer,
        NetWorkloadSpec, Priority, RetryPolicy, RetryingClient, SloPolicy,
    };
    pub use asgd_oracle::{
        BackpressurePolicy, Constants, Flat, GradientOracle, IngressQueue, LinearRegression,
        Minibatch, ModelView, NoisyQuadratic, Observation, OracleSpec, RidgeLogistic, SparseGrad,
        SparseQuadratic, StreamingOracle,
    };
    pub use asgd_serve::{
        run_workload, Arrival, LatencySummary, ModelEntry, ModelId, ModelRegistry, ModelService,
        ModelStats, QueryClient, QueryKind, QueryOutcome, ReadMode, ServeError, ServeReport,
        ServeSpec, StalenessSummary,
    };
    pub use asgd_shmem::sched::{
        BoundedDelayAdversary, CrashAdversary, RandomScheduler, Scheduler, SerialScheduler,
        StaleGradientAdversary, StepRoundRobin,
    };
    pub use asgd_shmem::{Engine, Memory, TraceLevel};
    pub use asgd_telemetry::{MetricsRegistry, MetricsSnapshot, TraceSink};
    pub use asgd_theory::bounds;
}
