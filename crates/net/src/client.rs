//! [`NetClient`] — a blocking wire-protocol client — and
//! [`RetryingClient`], its fault-tolerant wrapper.
//!
//! One request in flight at a time: [`NetClient::call`] writes a frame,
//! then blocks for the answer. The convenience methods (`dot_score`,
//! `predict`, …) additionally turn `Error`/`Shed` frames into a typed
//! [`ClientError`], so a caller that only wants the value gets a `Result`
//! instead of a response enum to match. The open-loop bench harness in
//! [`workload`](crate::workload) bypasses this type and drives the raw
//! framing functions over a cloned stream instead.
//!
//! Every failure carries a [`RetryClass`]: transport faults and explicit
//! backpressure (`Busy`, `AdmissionDenied`, shed frames) are
//! [`RetryClass::Retryable`]; protocol violations and semantic errors
//! (`NoSuchModel`, `BadRequest`, undecodable frames) are
//! [`RetryClass::Terminal`] — retrying cannot change the answer.
//! [`RetryingClient`] acts on that split: capped exponential backoff with
//! seeded jitter, reconnect-on-broken-pipe, and request replay — but
//! replay is gated on [`Request::idempotent`]. The read ops (`dot-score`,
//! `predict`, `fetch-range`, `model-stats`) are replayed freely; a lost
//! response cannot have mutated state. `submit-observe` is a *write*: if
//! the transport dies after the request may have reached the server but
//! before the `Ingested` ack arrived, the outcome is indeterminate, and a
//! blind replay could enqueue the same observation twice. The retrying
//! client therefore never replays a submit-observe across a mid-call
//! transport failure (at-most-once); only failures where the server
//! provably did not enqueue — connect errors, `Busy`, `AdmissionDenied`,
//! `Overloaded`, shed frames — are retried.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use asgd_serve::ModelStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultPlan, FaultyStream};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Priority, Request, RequestFrame, Response,
    StatsSelector, MAX_FRAME_LEN,
};

/// What a convenience call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's bytes did not decode as a response frame.
    Frame(FrameError),
    /// The server answered with an error frame.
    Remote {
        /// The typed failure code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server shed the request (SLO pressure). Retrying later — or at
    /// a higher priority — may succeed.
    Shed {
        /// The priority that was refused.
        priority: Priority,
        /// The server's rolling p99 at refusal time, ns.
        p99_ns: u64,
        /// The server's objective, ns.
        slo_ns: u64,
    },
    /// The server answered with a frame of the wrong kind (e.g. stats to a
    /// score request) — a protocol bug, not a transient failure.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket: {e}"),
            Self::Frame(e) => write!(f, "bad response frame: {e}"),
            Self::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            Self::Shed {
                priority,
                p99_ns,
                slo_ns,
            } => write!(
                f,
                "request shed at priority {priority}: rolling p99 {p99_ns} ns over SLO {slo_ns} ns"
            ),
            Self::UnexpectedResponse(kind) => {
                write!(f, "unexpected response frame of kind `{kind}`")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// Whether retrying a failed call can possibly succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Transient: transport fault or explicit backpressure. Retry (after
    /// backoff, possibly on a fresh connection) may succeed.
    Retryable,
    /// Permanent: the request itself is wrong, the model is gone, or the
    /// protocol broke. Retrying returns the same failure.
    Terminal,
}

impl ClientError {
    /// Classifies this failure for retry loops.
    ///
    /// * [`ClientError::Io`] — retryable: timeouts, broken pipes, resets
    ///   and truncated frames all look like IO here, and a reconnect plus
    ///   replay can succeed. **Caveat:** for non-idempotent requests
    ///   (`submit-observe`) a mid-call IO failure is indeterminate — the
    ///   class says a retry *may* succeed, not that it is safe to replay;
    ///   [`RetryingClient`] refuses to (see [`Request::idempotent`]).
    /// * [`ClientError::Remote`] with `Busy`/`AdmissionDenied`/
    ///   `Overloaded` — retryable backpressure (an `Overloaded` refusal
    ///   guarantees the observation was *not* enqueued); every other code
    ///   (`NoSuchModel`, `BadRequest`, `VersionMismatch`, `Internal`) is
    ///   terminal.
    /// * [`ClientError::Shed`] — retryable: shedding is load-dependent.
    /// * [`ClientError::Frame`] / [`ClientError::UnexpectedResponse`] —
    ///   terminal protocol violations.
    #[must_use]
    pub fn retry_class(&self) -> RetryClass {
        match self {
            Self::Io(_) | Self::Shed { .. } => RetryClass::Retryable,
            Self::Remote { code, .. } => match code {
                ErrorCode::Busy | ErrorCode::AdmissionDenied | ErrorCode::Overloaded => {
                    RetryClass::Retryable
                }
                ErrorCode::NoSuchModel
                | ErrorCode::BadRequest
                | ErrorCode::VersionMismatch
                | ErrorCode::Internal => RetryClass::Terminal,
            },
            Self::Frame(_) | Self::UnexpectedResponse(_) => RetryClass::Terminal,
        }
    }
}

/// A blocking client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    stream: FaultyStream,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connects with 5-second read/write timeouts.
    ///
    /// # Errors
    ///
    /// Whatever connecting or configuring the socket returns.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with the given read/write timeout.
    ///
    /// # Errors
    ///
    /// Whatever connecting or configuring the socket returns.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        Self::connect_faulty(addr, timeout, FaultPlan::passthrough())
    }

    /// Connects with the given timeout and a [`FaultPlan`] injected under
    /// the framing layer — the client-side half of a chaos campaign. A
    /// passthrough plan makes this identical to
    /// [`NetClient::connect_with_timeout`].
    ///
    /// # Errors
    ///
    /// Whatever connecting or configuring the socket returns.
    pub fn connect_faulty(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        fault: FaultPlan,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: FaultyStream::new(stream, fault),
            buf: Vec::new(),
        })
    }

    /// Sends one request frame and blocks for the response.
    ///
    /// Shed and error frames are returned as `Ok(Response::Shed)` /
    /// `Ok(Response::Error)` — at this level they are valid answers.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Frame`] when
    /// the response bytes do not decode.
    pub fn call(&mut self, frame: &RequestFrame) -> Result<Response, ClientError> {
        let body = frame.encode()?;
        write_frame(&mut self.stream, &body)?;
        read_frame(&mut self.stream, &mut self.buf, MAX_FRAME_LEN)?;
        Ok(Response::decode(&self.buf)?)
    }

    /// Sends `request` at `priority` and unwraps error/shed frames into
    /// [`ClientError`]s.
    fn call_ok(&mut self, request: Request, priority: Priority) -> Result<Response, ClientError> {
        match self.call(&RequestFrame::new(request).priority(priority))? {
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            Response::Shed {
                priority,
                p99_ns,
                slo_ns,
            } => Err(ClientError::Shed {
                priority,
                p99_ns,
                slo_ns,
            }),
            ok => Ok(ok),
        }
    }

    /// Scores a sparse probe against a model: `Σ wᵢ · x[idxᵢ]`.
    ///
    /// # Errors
    ///
    /// Transport failures, server error frames, or shedding, as
    /// [`ClientError`].
    pub fn dot_score(
        &mut self,
        model: u32,
        probe: &[(u32, f64)],
        priority: Priority,
    ) -> Result<(f64, Option<u64>), ClientError> {
        match self.call_ok(
            Request::DotScore {
                model,
                probe: probe.to_vec(),
            },
            priority,
        )? {
            Response::Score { value, staleness } => Ok((value, staleness)),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Evaluates the held-out objective at the served point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn predict(
        &mut self,
        model: u32,
        priority: Priority,
    ) -> Result<(f64, Option<u64>), ClientError> {
        match self.call_ok(Request::Predict { model }, priority)? {
            Response::Score { value, staleness } => Ok((value, staleness)),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Fetches raw parameters `x[start .. start+len]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn fetch_range(
        &mut self,
        model: u32,
        start: u32,
        len: u32,
        priority: Priority,
    ) -> Result<(Vec<f64>, Option<u64>), ClientError> {
        match self.call_ok(Request::FetchRange { model, start, len }, priority)? {
            Response::Values {
                values, staleness, ..
            } => Ok((values, staleness)),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Statistics for the model addressed by registry id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn stats_by_id(&mut self, id: u32) -> Result<ModelStats, ClientError> {
        self.stats(StatsSelector::ById(id))
    }

    /// Statistics (and id discovery) for the model named `name`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn stats_by_name(&mut self, name: &str) -> Result<ModelStats, ClientError> {
        self.stats(StatsSelector::ByName(name.to_string()))
    }

    fn stats(&mut self, selector: StatsSelector) -> Result<ModelStats, ClientError> {
        match self.call_ok(Request::ModelStats { selector }, Priority::High)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Scrapes the server's live telemetry (opcode `stats-scrape`): the
    /// returned string is the Prometheus text exposition of the server
    /// process's metrics registry, freshly populated from every tier at
    /// scrape time. High priority — a scrape is exactly the request an
    /// operator needs answered *during* overload.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn stats_scrape(&mut self) -> Result<String, ClientError> {
        match self.call_ok(Request::StatsScrape, Priority::High)? {
            Response::ScrapeText { text } => Ok(text),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Pushes one labeled observation into a streaming model's ingress
    /// queue; returns the post-push queue depth from the `Ingested` ack.
    ///
    /// This is the protocol's only non-idempotent operation: an `Err` of
    /// kind [`ClientError::Io`] after the request was written means the
    /// observation *may or may not* be queued. Do not blindly re-send
    /// (use [`RetryingClient::submit_observe`], which honours this).
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`], plus
    /// [`ErrorCode::Overloaded`] when the queue refused the observation.
    pub fn submit_observe(
        &mut self,
        model: u32,
        features: &[(u32, f64)],
        label: f64,
        priority: Priority,
    ) -> Result<u64, ClientError> {
        match self.call_ok(
            Request::SubmitObserve {
                model,
                features: features.to_vec(),
                label,
            },
            priority,
        )? {
            Response::Ingested { depth } => Ok(depth),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }
}

fn kind_of(r: &Response) -> &'static str {
    match r {
        Response::Score { .. } => "score",
        Response::Values { .. } => "values",
        Response::Stats(_) => "stats",
        Response::Error { .. } => "error",
        Response::Shed { .. } => "shed",
        Response::Ingested { .. } => "ingested",
        Response::ScrapeText { .. } => "scrape-text",
    }
}

/// Backoff schedule for [`RetryingClient`]: capped exponential with
/// seeded multiplicative jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a uniform
    /// factor from `[1 - jitter, 1]`, so synchronized clients desynchronize.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based), without jitter:
    /// `min(max_backoff, base_backoff · 2^retry)`.
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 2_u32.saturating_pow(retry);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A [`NetClient`] wrapper that survives connection churn: it classifies
/// every failure via [`ClientError::retry_class`], replays retryable calls
/// with capped exponential backoff plus seeded jitter, and reconnects
/// transparently when the transport dies mid-call.
///
/// Replay is gated per operation on [`Request::idempotent`]. The read ops
/// are replayed freely — a request whose response was lost cannot have
/// mutated server state, so re-sending it returns the same answer the
/// lost response carried (bit-exact once the model is quiescent).
/// [`RetryingClient::submit_observe`] is different: once the request may
/// have reached the wire, a transport failure leaves the enqueue
/// indeterminate, and this client returns the error rather than risk a
/// duplicate observation (at-most-once delivery). Failures that provably
/// precede any server-side effect — connect errors, `Busy`,
/// `AdmissionDenied`, `Overloaded`, shed frames — still retry.
///
/// Connections are lazy: the first call connects, and a dead connection is
/// dropped and re-established on the next attempt. With a non-passthrough
/// [`FaultPlan`], each connection gets a distinct child seed, so a chaos
/// campaign's fault sequence is deterministic per (seed, connection index).
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    timeout: Duration,
    policy: RetryPolicy,
    fault: FaultPlan,
    jitter_rng: StdRng,
    conn: Option<NetClient>,
    conn_seq: u64,
    retries: u64,
    reconnects: u64,
}

impl RetryingClient {
    /// A lazy client for `addr` under `policy` (5-second IO timeouts).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when `addr` does not resolve. Connection
    /// failures surface from the first call, not from here.
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, ClientError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))
        })?;
        Ok(Self {
            addr,
            timeout: Duration::from_secs(5),
            policy,
            fault: FaultPlan::passthrough(),
            jitter_rng: StdRng::seed_from_u64(0x6a69_7474_6572),
            conn: None,
            conn_seq: 0,
            retries: 0,
            reconnects: 0,
        })
    }

    /// Sets the per-call IO timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Injects `fault` (re-seeded per connection) under this client's
    /// framing — the client-side half of a chaos campaign. The plan's seed
    /// also seeds the backoff jitter, keeping whole campaigns replayable.
    #[must_use]
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.jitter_rng = StdRng::seed_from_u64(fault.seed ^ 0x6a69_7474_6572);
        self.fault = fault;
        self
    }

    /// Retries performed across all calls so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed across all calls so far (excludes the
    /// initial lazy connect).
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn ensure_connected(&mut self) -> Result<&mut NetClient, ClientError> {
        if self.conn.is_none() {
            let client = NetClient::connect_faulty(
                self.addr,
                self.timeout,
                self.fault.child(self.conn_seq),
            )?;
            if self.conn_seq > 0 {
                self.reconnects += 1;
            }
            self.conn_seq += 1;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Runs `call` with retry, backoff, and reconnect-on-transport-failure.
    /// Idempotent calls replay freely; see [`Self::call_retry_gated`].
    fn call_retry<T>(
        &mut self,
        call: impl FnMut(&mut NetClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        self.call_retry_gated(true, call)
    }

    /// The retry loop, with the idempotency gate. For a non-idempotent
    /// call (`idempotent == false`), a transport failure *after* the
    /// request may have hit the wire is returned immediately — the server
    /// may have executed it without us seeing the ack, and a replay could
    /// execute it twice. Connect-phase failures (the request was never
    /// sent) and typed refusals (`Busy`, `Overloaded`, shed — the server
    /// answered, so it did *not* execute) retry for every call.
    fn call_retry_gated<T>(
        &mut self,
        idempotent: bool,
        mut call: impl FnMut(&mut NetClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            let (result, sent) = match self.ensure_connected() {
                Ok(client) => (call(client), true),
                Err(e) => (Err(e), false),
            };
            let error = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            if error.retry_class() == RetryClass::Terminal {
                return Err(error);
            }
            if matches!(error, ClientError::Io(_)) {
                // The transport is suspect: drop it and reconnect on the
                // next attempt (backpressure keeps its connection).
                self.conn = None;
                if sent && !idempotent {
                    // Indeterminate outcome on a state-mutating request:
                    // at-most-once wins over availability. The caller
                    // decides whether to re-submit.
                    return Err(error);
                }
            }
            attempt += 1;
            if attempt >= max_attempts {
                return Err(error);
            }
            self.retries += 1;
            asgd_telemetry::global()
                .counter("asgd_net_client_retries_total")
                .inc();
            let backoff = self.policy.backoff(attempt - 1);
            if !backoff.is_zero() {
                let jitter = self.policy.jitter.clamp(0.0, 1.0);
                let scale = 1.0 - jitter * self.jitter_rng.gen::<f64>();
                std::thread::sleep(backoff.mul_f64(scale));
            }
        }
    }

    /// [`NetClient::dot_score`], with retry.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] (terminal errors immediately).
    pub fn dot_score(
        &mut self,
        model: u32,
        probe: &[(u32, f64)],
        priority: Priority,
    ) -> Result<(f64, Option<u64>), ClientError> {
        self.call_retry(|c| c.dot_score(model, probe, priority))
    }

    /// [`NetClient::predict`], with retry.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] (terminal errors immediately).
    pub fn predict(
        &mut self,
        model: u32,
        priority: Priority,
    ) -> Result<(f64, Option<u64>), ClientError> {
        self.call_retry(|c| c.predict(model, priority))
    }

    /// [`NetClient::fetch_range`], with retry.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] (terminal errors immediately).
    pub fn fetch_range(
        &mut self,
        model: u32,
        start: u32,
        len: u32,
        priority: Priority,
    ) -> Result<(Vec<f64>, Option<u64>), ClientError> {
        self.call_retry(|c| c.fetch_range(model, start, len, priority))
    }

    /// [`NetClient::stats_by_id`], with retry.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] (terminal errors immediately).
    pub fn stats_by_id(&mut self, id: u32) -> Result<ModelStats, ClientError> {
        self.call_retry(|c| c.stats_by_id(id))
    }

    /// [`NetClient::stats_by_name`], with retry.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] (terminal errors immediately).
    pub fn stats_by_name(&mut self, name: &str) -> Result<ModelStats, ClientError> {
        self.call_retry(|c| c.stats_by_name(name))
    }

    /// [`NetClient::stats_scrape`], with retry.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] (terminal errors immediately).
    pub fn stats_scrape(&mut self) -> Result<String, ClientError> {
        self.call_retry(NetClient::stats_scrape)
    }

    /// [`NetClient::submit_observe`], with the idempotency-gated retry:
    /// typed refusals (`Busy`, `Overloaded`, shed) and connect failures
    /// are retried, but a transport failure after the request may have
    /// been sent returns immediately — the enqueue is indeterminate and
    /// this client never risks a duplicate (at-most-once).
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`]; [`ClientError::Io`] may mean
    /// the observation was enqueued without its ack being seen.
    pub fn submit_observe(
        &mut self,
        model: u32,
        features: &[(u32, f64)],
        label: f64,
        priority: Priority,
    ) -> Result<u64, ClientError> {
        self.call_retry_gated(false, |c| {
            c.submit_observe(model, features, label, priority)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = ClientError::Remote {
            code: ErrorCode::NoSuchModel,
            message: "no model with id 4".to_string(),
        };
        assert!(e.to_string().contains("no-such-model"));
        let e = ClientError::Shed {
            priority: Priority::Low,
            p99_ns: 2,
            slo_ns: 1,
        };
        assert!(e.to_string().contains("shed"));
        let e = ClientError::from(FrameError::BadTag(9));
        assert!(e.to_string().contains("tag"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ClientError::UnexpectedResponse("stats");
        assert!(e.to_string().contains("stats"));
        let e = ClientError::from(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"));
        assert!(e.to_string().contains("slow"));
    }

    #[test]
    fn retry_classification_separates_transient_from_permanent() {
        let retryable = [
            ClientError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow")),
            ClientError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone")),
            ClientError::Remote {
                code: ErrorCode::Busy,
                message: "window full".to_string(),
            },
            ClientError::Remote {
                code: ErrorCode::AdmissionDenied,
                message: "budget".to_string(),
            },
            ClientError::Remote {
                code: ErrorCode::Overloaded,
                message: "queue full".to_string(),
            },
            ClientError::Shed {
                priority: Priority::Low,
                p99_ns: 2,
                slo_ns: 1,
            },
        ];
        for e in retryable {
            assert_eq!(e.retry_class(), RetryClass::Retryable, "{e}");
        }
        let terminal = [
            ClientError::Remote {
                code: ErrorCode::NoSuchModel,
                message: "gone".to_string(),
            },
            ClientError::Remote {
                code: ErrorCode::BadRequest,
                message: "bad".to_string(),
            },
            ClientError::Remote {
                code: ErrorCode::VersionMismatch,
                message: "v9".to_string(),
            },
            ClientError::Remote {
                code: ErrorCode::Internal,
                message: "bug".to_string(),
            },
            ClientError::Frame(FrameError::BadTag(9)),
            ClientError::UnexpectedResponse("stats"),
        ];
        for e in terminal {
            assert_eq!(e.retry_class(), RetryClass::Terminal, "{e}");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(0), Duration::from_millis(5));
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(10), Duration::from_millis(200), "capped");
        assert_eq!(policy.backoff(u32::MAX), Duration::from_millis(200));
    }

    #[test]
    fn retrying_client_gives_up_with_the_last_io_error() {
        // A port with (very likely) nothing behind it: every attempt fails
        // at connect, the client retries its budget, then reports Io.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
            l.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: 0.5,
        };
        let mut client =
            RetryingClient::new(("127.0.0.1", port), policy).expect("resolves loopback");
        match client.stats_by_id(0) {
            Err(ClientError::Io(_)) => {
                assert_eq!(client.retries(), 2, "two retries after the first attempt");
            }
            Ok(_) => {} // something grabbed the port; nothing to assert
            Err(other) => panic!("expected Io, got {other}"),
        }
    }

    #[test]
    fn submit_observe_is_never_replayed_after_an_indeterminate_failure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // A hostile server: reads each request frame, then drops the
        // connection without answering — from the client's side the
        // request was sent and the ack was lost (indeterminate outcome).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().unwrap();
        let frames_seen = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&frames_seen);
        let server = std::thread::spawn(move || {
            // 1 connection for the submit, 3 for the replayed predict.
            for _ in 0..4 {
                let Ok((mut s, _)) = listener.accept() else {
                    return;
                };
                let mut buf = Vec::new();
                if read_frame(&mut s, &mut buf, MAX_FRAME_LEN).is_ok() {
                    seen.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: 0.0,
        };
        let mut client = RetryingClient::new(addr, policy).expect("resolves");
        // The write op: one attempt, zero replays, error surfaced.
        match client.submit_observe(0, &[(0, 1.0)], 0.5, Priority::Normal) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
        assert_eq!(
            client.retries(),
            0,
            "a submit whose outcome is indeterminate must not be replayed"
        );
        // The same failure on a read op IS replayed, up to the budget.
        match client.predict(0, Priority::Normal) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
        assert_eq!(client.retries(), 2, "reads replay to the attempt budget");
        server.join().expect("server thread");
        assert_eq!(
            frames_seen.load(Ordering::SeqCst),
            4,
            "server saw exactly one submit frame and three predict frames"
        );
    }

    #[test]
    fn connect_to_a_dead_port_is_an_io_error() {
        // Bind then immediately drop a listener to get a port that's
        // very likely closed.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
            l.local_addr().unwrap().port()
        };
        match NetClient::connect(("127.0.0.1", port)) {
            Err(ClientError::Io(_)) => {}
            Ok(_) => {} // something else grabbed the port; fine
            Err(other) => panic!("expected Io, got {other}"),
        }
    }
}
