//! [`ServeReport`] — the serving workload's outcome, with exact JSON.

use asgd_driver::json::{self, Value};
use asgd_driver::report::{field, field_f64, field_str, field_u64};
use asgd_driver::{DecodeError, RunReport};
use asgd_metrics::Histogram;

/// Latency telemetry of one serving run, in nanoseconds. Percentiles are
/// exact observed values extracted from the merged per-client histograms
/// (`0` everywhere when no query ran).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Queries measured.
    pub count: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Slowest query.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarises a merged latency histogram.
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Self {
        let p = h.percentiles();
        Self {
            count: h.total(),
            mean_ns: h.mean().unwrap_or(0.0),
            p50_ns: p.map_or(0, |p| p.p50),
            p90_ns: p.map_or(0, |p| p.p90),
            p99_ns: p.map_or(0, |p| p.p99),
            p999_ns: p.map_or(0, |p| p.p999),
            max_ns: p.map_or(0, |p| p.max),
        }
    }

    /// Converts into the JSON value tree (shared by every report type that
    /// embeds a latency block — `ServeReport` here, `NetReport` in
    /// `asgd-net`).
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("count", Value::U64(self.count)),
            ("mean_ns", Value::f64(self.mean_ns)),
            ("p50_ns", Value::U64(self.p50_ns)),
            ("p90_ns", Value::U64(self.p90_ns)),
            ("p99_ns", Value::U64(self.p99_ns)),
            ("p999_ns", Value::U64(self.p999_ns)),
            ("max_ns", Value::U64(self.max_ns)),
        ])
    }

    /// Decodes from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Field`] on missing/mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            count: field_u64(v, "count")?,
            mean_ns: field_f64(v, "mean_ns")?,
            p50_ns: field_u64(v, "p50_ns")?,
            p90_ns: field_u64(v, "p90_ns")?,
            p99_ns: field_u64(v, "p99_ns")?,
            p999_ns: field_u64(v, "p999_ns")?,
            max_ns: field_u64(v, "max_ns")?,
        })
    }
}

/// Staleness telemetry of snapshot-mode queries: training iterations
/// between each query's snapshot publication and the query itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessSummary {
    /// Queries that measured staleness (snapshot reads).
    pub samples: u64,
    /// Mean staleness in iterations.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst observed staleness.
    pub max: u64,
}

impl StalenessSummary {
    /// Summarises a merged staleness histogram (`None` when no
    /// snapshot-mode query ran — e.g. live-mode workloads).
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Option<Self> {
        let p = h.percentiles()?;
        Some(Self {
            samples: h.total(),
            mean: h.mean().unwrap_or(0.0),
            p50: p.p50,
            p99: p.p99,
            max: p.max,
        })
    }

    fn to_value(&self) -> Value {
        Value::obj([
            ("samples", Value::U64(self.samples)),
            ("mean", Value::f64(self.mean)),
            ("p50", Value::U64(self.p50)),
            ("p99", Value::U64(self.p99)),
            ("max", Value::U64(self.max)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            samples: field_u64(v, "samples")?,
            mean: field_f64(v, "mean")?,
            p50: field_u64(v, "p50")?,
            p99: field_u64(v, "p99")?,
            max: field_u64(v, "max")?,
        })
    }
}

/// The outcome of one serving workload: traffic shape, throughput, latency
/// percentiles, staleness, and the (final or cancelled) training report
/// underneath. Serialises to and from JSON exactly, in the
/// `asgd_driver::json` style.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Read mode label (`live` / `snapshot`).
    pub mode: String,
    /// Query kind label.
    pub query: String,
    /// Arrival label (`closed-loop` / `rate:QPS`).
    pub arrival: String,
    /// Client thread count.
    pub clients: usize,
    /// Snapshot publication stride the run actually used (`u64::MAX` for
    /// live-mode runs started via `ServeSpec::run`, which skip strided
    /// publication entirely).
    pub publish_stride: u64,
    /// Actual serving window in seconds.
    pub duration_secs: f64,
    /// Total queries answered.
    pub queries: u64,
    /// Aggregate throughput (queries / `duration_secs`).
    pub qps: f64,
    /// Latency telemetry.
    pub latency: LatencySummary,
    /// Staleness telemetry (`None` when no snapshot-mode query ran).
    pub staleness: Option<StalenessSummary>,
    /// Snapshot versions published over the run (including the final one).
    pub snapshots: u64,
    /// The training run's report (cancelled if it outlived the window).
    pub train: RunReport,
}

impl ServeReport {
    /// Converts into the JSON value tree.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("mode", Value::Str(self.mode.clone())),
            ("query", Value::Str(self.query.clone())),
            ("arrival", Value::Str(self.arrival.clone())),
            ("clients", Value::U64(self.clients as u64)),
            ("publish_stride", Value::U64(self.publish_stride)),
            ("duration_secs", Value::f64(self.duration_secs)),
            ("queries", Value::U64(self.queries)),
            ("qps", Value::f64(self.qps)),
            ("latency", self.latency.to_value()),
            (
                "staleness",
                Value::opt(self.staleness.as_ref().map(StalenessSummary::to_value)),
            ),
            ("snapshots", Value::U64(self.snapshots)),
            ("train", self.train.to_value()),
        ])
    }

    /// Serialises to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serialises to pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Decodes from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Field`] on missing/mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            mode: field_str(v, "mode")?,
            query: field_str(v, "query")?,
            arrival: field_str(v, "arrival")?,
            clients: field_u64(v, "clients")? as usize,
            publish_stride: field_u64(v, "publish_stride")?,
            duration_secs: field_f64(v, "duration_secs")?,
            queries: field_u64(v, "queries")?,
            qps: field_f64(v, "qps")?,
            latency: LatencySummary::from_value(field(v, "latency")?)?,
            staleness: match v.get("staleness") {
                None => None,
                Some(item) if item.is_null() => None,
                Some(item) => Some(StalenessSummary::from_value(item)?),
            },
            snapshots: field_u64(v, "snapshots")?,
            train: RunReport::from_value(field(v, "train")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_train() -> RunReport {
        RunReport {
            backend: "hogwild".to_string(),
            oracle: "sparse-quadratic".to_string(),
            threads: 4,
            iterations: 123_456,
            seed: 7,
            hit_iteration: Some(321),
            min_dist_sq: None,
            final_dist_sq: 0.125,
            final_model: vec![0.5, -0.25],
            wall_time_secs: 0.75,
            steps: None,
            fingerprint: None,
            stop: Some("cancelled".to_string()),
            contention: None,
            stale_rejected: None,
            sparse_path: Some(true),
            shards: None,
            trajectory: None,
        }
    }

    fn sample() -> ServeReport {
        ServeReport {
            mode: "snapshot".to_string(),
            query: "dot-score".to_string(),
            arrival: "closed-loop".to_string(),
            clients: 8,
            publish_stride: 256,
            duration_secs: 0.5 + f64::EPSILON,
            queries: 10_000,
            qps: 20_000.5,
            latency: LatencySummary {
                count: 10_000,
                mean_ns: 48_000.25,
                p50_ns: 41_000,
                p90_ns: 70_000,
                p99_ns: 140_000,
                p999_ns: 900_000,
                max_ns: u64::MAX - 3,
            },
            staleness: Some(StalenessSummary {
                samples: 9_990,
                mean: 130.5,
                p50: 120,
                p99: 255,
                max: 256,
            }),
            snapshots: 40,
            train: sample_train(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample();
        assert_eq!(ServeReport::from_json(&report.to_json()).unwrap(), report);
        assert_eq!(
            ServeReport::from_json(&report.to_json_pretty()).unwrap(),
            report
        );
    }

    #[test]
    fn live_mode_report_without_staleness_round_trips() {
        let report = ServeReport {
            mode: "live".to_string(),
            staleness: None,
            ..sample()
        };
        let back = ServeReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(back.staleness.is_none());
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = ServeReport::from_json("{}").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("mode"), "{err}");
        let mut text = sample().to_json();
        text = text.replace("\"p999_ns\":900000,", "");
        let err = ServeReport::from_json(&text).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("p999_ns"), "{err}");
    }

    #[test]
    fn empty_histograms_summarise_to_zeros() {
        let empty = Histogram::new();
        let lat = LatencySummary::from_histogram(&empty);
        assert_eq!(lat.count, 0);
        assert_eq!(lat.p999_ns, 0);
        assert_eq!(lat.mean_ns, 0.0);
        assert_eq!(StalenessSummary::from_histogram(&empty), None);
        let one = Histogram::from_values(&[42]);
        let s = StalenessSummary::from_histogram(&one).unwrap();
        assert_eq!((s.samples, s.p50, s.max), (1, 42, 42));
    }
}
