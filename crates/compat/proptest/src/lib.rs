//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API the workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`Just`], `prop_oneof!`, `any::<T>()`, `collection::{vec, hash_set}`,
//! the `prop_assert*` macros and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: generation is fully deterministic (seeded per
//! test case, so failures reproduce bit-identically), there is **no
//! shrinking** — a failing case reports the assertion panic directly — and
//! the default case count is 64 rather than 256.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub mod test_runner {
    //! Test-runner configuration.

    /// Subset of proptest's runner configuration: the number of cases.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic generator state handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for case number `case` (fixed stream per case).
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            Self {
                state: 0xA5A5_0000_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as usize
        }
    }
}

use test_runner::TestRng;

/// A value generator. Upstream proptest builds shrinkable value trees; this
/// stand-in generates plain values deterministically.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe strategy, for type-erased composition.
trait DynStrategy {
    type Value;
    fn new_value_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value_dyn(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                ((self.start as i128) + v) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection sizes: an exact `usize` or a half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Half-open `(lo, hi)` bounds.
    fn size_bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn size_bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn size_bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for i32 {
    fn size_bounds(self) -> (usize, usize) {
        let n = usize::try_from(self).expect("non-negative size");
        (n, n + 1)
    }
}

impl IntoSizeRange for Range<i32> {
    fn size_bounds(self) -> (usize, usize) {
        (
            usize::try_from(self.start).expect("non-negative size"),
            usize::try_from(self.end).expect("non-negative size"),
        )
    }
}

pub mod collection {
    //! Collection strategies.

    use super::test_runner::TestRng;
    use super::{IntoSizeRange, Strategy};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.lo, self.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.size_bounds();
        assert!(lo < hi, "empty collection size range");
        VecStrategy { element, lo, hi }
    }

    /// Strategy for `HashSet<T>`.
    pub struct HashSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.lo, self.hi);
            let mut set = HashSet::with_capacity(target);
            // Bounded retries in case the element space is small.
            let mut budget = 100 + 20 * target;
            while set.len() < target && budget > 0 {
                set.insert(self.element.new_value(rng));
                budget -= 1;
            }
            set
        }
    }

    /// `HashSet` strategy with the given element strategy and size.
    pub fn hash_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> HashSetStrategy<S> {
        let (lo, hi) = size.size_bounds();
        assert!(lo < hi, "empty collection size range");
        HashSetStrategy { element, lo, hi }
    }
}

// Re-exports so `proptest::collection::hash_set(any::<u64>(), 2..64)` style
// paths work identically to upstream.
pub use collection::{HashSetStrategy, VecStrategy};

/// The proptest entry-point macro: wraps property functions into `#[test]`s
/// that generate `cases` deterministic inputs each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()); $($rest)*);
    };
}

/// Asserts a property-test condition (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (String, u64)> {
        prop_oneof![
            Just(("fixed".to_string(), 0_u64)),
            (1_u64..100).prop_map(|v| ("mapped".to_string(), v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3_usize..9, y in -2.0_f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_and_set_sizes(
            v in crate::collection::vec(0_u64..10, 2..6),
            s in crate::collection::hash_set(any::<u64>(), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() >= 2 && s.len() < 6);
        }

        #[test]
        fn oneof_and_map((label, v) in composite()) {
            match label.as_str() {
                "fixed" => prop_assert_eq!(v, 0),
                "mapped" => prop_assert!((1..100).contains(&v)),
                other => panic!("unexpected label {other}"),
            }
            prop_assert_ne!(label.len(), 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let s = crate::collection::vec(0_u64..1000, 3..10);
        let a = s.new_value(&mut TestRng::for_case(5));
        let b = s.new_value(&mut TestRng::for_case(5));
        assert_eq!(a, b);
    }
}
