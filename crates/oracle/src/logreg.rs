//! Ridge-regularised logistic regression.
//!
//! `f(x) = (1/m)·Σ_i log(1 + exp(−y_i·a_iᵀx)) + (λ/2)‖x‖²` — convex losses
//! made `λ`-strongly convex by the ridge term, the standard trick to put
//! classification workloads inside the paper's assumption set.

use crate::constants::Constants;
use crate::oracle::GradientOracle;
use crate::synth::ClassificationData;
use rand::{Rng, RngCore};

/// Logistic-regression workload with ridge regularisation `λ > 0`.
///
/// * `c = λ` — exact (the logistic term is convex, the ridge term is
///   `λ`-strongly convex).
/// * `L = max_i ‖a_i‖²/4 + λ` — the logistic loss has `1/4`-Lipschitz
///   sigmoid derivative; under common random numbers the per-sample gradient
///   difference is bounded by `(‖a_i‖²/4 + λ)‖x−y‖`.
/// * `M²(R) = (max_i ‖a_i‖ + λ·(R + ‖x*‖))²` — the logistic part of the
///   gradient is bounded by `‖a_i‖` pointwise, the ridge part by
///   `λ‖x‖ ≤ λ(R + ‖x*‖)` inside the trust region.
///
/// The minimiser has no closed form; it is computed at construction by
/// full-batch gradient descent to tolerance `1e-10` (deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeLogistic {
    data: ClassificationData,
    lambda: f64,
    minimizer: Vec<f64>,
    max_feat_norm: f64,
    max_feat_norm_sq: f64,
}

/// Error from [`RidgeLogistic::new`] for invalid regularisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLambdaError;

impl std::fmt::Display for InvalidLambdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda must be finite and strictly positive")
    }
}

impl std::error::Error for InvalidLambdaError {}

/// Numerically stable `log(1 + e^z)`.
fn log1p_exp(z: f64) -> f64 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

/// Logistic sigmoid `1 / (1 + e^{−z})`, stable for large |z|.
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl RidgeLogistic {
    /// Builds the workload; fits the minimiser by deterministic full-batch
    /// gradient descent.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLambdaError`] if `lambda` is not finite and positive.
    pub fn new(data: ClassificationData, lambda: f64) -> Result<Self, InvalidLambdaError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(InvalidLambdaError);
        }
        let max_feat_norm_sq = data
            .features
            .iter()
            .map(|a| asgd_math::vec::l2_norm_sq(a))
            .fold(0.0_f64, f64::max);
        let mut w = Self {
            minimizer: vec![0.0; data.dimension()],
            max_feat_norm: max_feat_norm_sq.sqrt(),
            max_feat_norm_sq,
            data,
            lambda,
        };
        w.fit();
        Ok(w)
    }

    /// Generates a synthetic dataset and builds the workload.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLambdaError`] if `lambda` is not finite and positive.
    pub fn synthetic(
        m: usize,
        d: usize,
        noise: f64,
        lambda: f64,
        seed: u64,
    ) -> Result<Self, InvalidLambdaError> {
        Self::new(crate::synth::classification(m, d, noise, seed), lambda)
    }

    /// The ridge coefficient λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The underlying dataset.
    #[must_use]
    pub fn data(&self) -> &ClassificationData {
        &self.data
    }

    /// Full-batch gradient descent to high precision. The objective is
    /// `(L_f = max‖a‖²/4 + λ)`-smooth, so step `1/L_f` converges linearly.
    fn fit(&mut self) {
        let d = self.data.dimension();
        let smoothness = self.max_feat_norm_sq / 4.0 + self.lambda;
        let step = 1.0 / smoothness;
        let mut x = vec![0.0; d];
        let mut g = vec![0.0; d];
        for _ in 0..100_000 {
            self.full_gradient_into(&x, &mut g);
            if asgd_math::vec::l2_norm(&g) < 1e-10 {
                break;
            }
            asgd_math::vec::axpy(&mut x, -step, &g);
        }
        self.minimizer = x;
    }

    fn full_gradient_into(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (a, &y) in self.data.features.iter().zip(&self.data.labels) {
            let margin = y * asgd_math::vec::dot(a, x);
            let coeff = -y * sigmoid(-margin);
            for (o, &ai) in out.iter_mut().zip(a) {
                *o += coeff * ai;
            }
        }
        let inv_m = 1.0 / self.data.len() as f64;
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = *o * inv_m + self.lambda * xi;
        }
    }
}

impl GradientOracle for RidgeLogistic {
    fn dimension(&self) -> usize {
        self.data.dimension()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        assert_eq!(x.len(), self.dimension(), "x dimension mismatch");
        assert_eq!(out.len(), self.dimension(), "out dimension mismatch");
        let i = rng.gen_range(0..self.data.len());
        let a = &self.data.features[i];
        let y = self.data.labels[i];
        let margin = y * asgd_math::vec::dot(a, x);
        let coeff = -y * sigmoid(-margin);
        for ((o, &ai), &xi) in out.iter_mut().zip(a).zip(x) {
            *o = coeff * ai + self.lambda * xi;
        }
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dimension(), "x dimension mismatch");
        self.full_gradient_into(x, out);
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (a, &y) in self.data.features.iter().zip(&self.data.labels) {
            acc += log1p_exp(-y * asgd_math::vec::dot(a, x));
        }
        acc / self.data.len() as f64 + 0.5 * self.lambda * asgd_math::vec::l2_norm_sq(x)
    }

    fn minimizer(&self) -> &[f64] {
        &self.minimizer
    }

    fn constants(&self, radius: f64) -> Constants {
        assert!(radius > 0.0, "radius must be positive");
        let opt_norm = asgd_math::vec::l2_norm(&self.minimizer);
        let m = self.max_feat_norm + self.lambda * (radius + opt_norm);
        Constants::new(
            self.lambda,
            self.max_feat_norm_sq / 4.0 + self.lambda,
            (m * m).max(f64::MIN_POSITIVE),
            radius,
        )
    }

    fn name(&self) -> &str {
        "ridge-logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::unbiasedness_gap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> RidgeLogistic {
        RidgeLogistic::synthetic(150, 4, 0.1, 0.1, 17).expect("valid lambda")
    }

    #[test]
    fn rejects_bad_lambda() {
        let data = crate::synth::classification(10, 2, 0.0, 1);
        assert!(RidgeLogistic::new(data.clone(), 0.0).is_err());
        assert!(RidgeLogistic::new(data.clone(), -1.0).is_err());
        assert!(RidgeLogistic::new(data, f64::INFINITY).is_err());
    }

    #[test]
    fn stable_scalar_helpers() {
        assert!((log1p_exp(0.0) - 2.0_f64.ln()).abs() < 1e-12);
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-9, "no overflow");
        assert!(log1p_exp(-100.0) < 1e-40);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-40);
    }

    #[test]
    fn minimizer_is_stationary() {
        let w = workload();
        let mut g = vec![0.0; 4];
        w.full_gradient(w.minimizer(), &mut g);
        assert!(
            asgd_math::vec::l2_norm(&g) < 1e-8,
            "‖∇f(x*)‖ = {}",
            asgd_math::vec::l2_norm(&g)
        );
    }

    #[test]
    fn objective_minimised_at_minimizer() {
        let w = workload();
        let f_star = w.objective(w.minimizer());
        for dim in 0..4 {
            let mut p = w.minimizer().to_vec();
            p[dim] += 0.3;
            assert!(w.objective(&p) > f_star);
        }
    }

    #[test]
    fn stochastic_gradient_is_unbiased() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(2);
        let gap = unbiasedness_gap(&w, &[0.2, -0.4, 0.1, 0.5], &mut rng, 60_000);
        assert!(gap < 0.1, "gap {gap}");
    }

    #[test]
    fn gradient_norm_within_reported_bound() {
        let w = workload();
        let radius = 2.0;
        let k = w.constants(radius);
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = vec![0.0; 4];
        // Sample points inside the trust region.
        for _ in 0..500 {
            let mut x = w.minimizer().to_vec();
            for xi in &mut x {
                *xi += rng.gen_range(-0.7..0.7); // ‖Δ‖ ≤ √4·0.7 < 2
            }
            w.sample_gradient(&x, &mut rng, &mut g);
            let norm_sq = asgd_math::vec::l2_norm_sq(&g);
            assert!(
                norm_sq <= k.m_sq + 1e-9,
                "‖g̃‖² = {norm_sq} exceeds M² = {}",
                k.m_sq
            );
        }
    }

    #[test]
    fn constants_expose_lambda_as_c() {
        let w = workload();
        let k = w.constants(1.0);
        assert_eq!(k.c, 0.1);
        assert!(k.l >= k.c);
        assert_eq!(w.lambda(), 0.1);
        assert_eq!(w.name(), "ridge-logistic");
        assert_eq!(w.data().len(), 150);
    }

    #[test]
    fn classifier_fits_separable_data() {
        // Low noise, plenty of data: the fitted model should classify well.
        let w = RidgeLogistic::synthetic(500, 3, 0.0, 0.01, 5).unwrap();
        let correct = w
            .data()
            .features
            .iter()
            .zip(&w.data().labels)
            .filter(|(a, &y)| y * asgd_math::vec::dot(a, w.minimizer()) > 0.0)
            .count();
        let acc = correct as f64 / w.data().len() as f64;
        assert!(acc > 0.95, "training accuracy {acc}");
    }
}
