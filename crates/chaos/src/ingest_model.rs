//! The bounded ingress queue ([`IngressQueue`](asgd_oracle::IngressQueue))
//! as an explorable step function.
//!
//! The real queue guards a `VecDeque` with one mutex, so its
//! check-capacity-then-insert decision is a single critical section. This
//! model checks exactly that atomicity matters: [`LenMode::Atomic`]
//! mirrors the shipped queue (the whole push decision is one step), while
//! [`LenMode::SplitCheck`] is the deliberately seeded bug — the capacity
//! check and the insert are separate steps, as if the implementation
//! dropped the lock between reading `len` and pushing (the classic
//! check-then-act race). Under a full queue and one adversarial
//! preemption, two producers both observe a free slot and both insert:
//! the queue exceeds its declared capacity, which the explorer catches
//! and minimizes to a replayable trace.
//!
//! Invariants, checked after every atomic step:
//!
//! * **Bounded**: queue depth never exceeds capacity (the invariant the
//!   seeded bug breaks);
//! * **No loss, no duplication**: every produced observation is in
//!   exactly one of {queue, consumed, dropped}; a consumer never pops
//!   the same observation twice. Under [`BackpressurePolicy::Block`]
//!   nothing is ever dropped or rejected (lossless);
//! * **FIFO**: consumed observations arrive in push order (ids are
//!   assigned in insert order, so the consumed sequence must be strictly
//!   increasing) — eviction removes the *oldest*, never reorders;
//! * **Drop accounting**: the drop counter is exactly the evicted
//!   multiset's size, evictions happen only under
//!   [`BackpressurePolicy::DropOldest`], rejections only under
//!   [`BackpressurePolicy::Reject`] — the monotone-counter contract
//!   `asgd-metrics::QueueCounters` promises observers.

use crate::explore::{Schedulable, StepStatus};
use asgd_oracle::BackpressurePolicy;
use std::collections::VecDeque;

/// Atomicity of the modeled push decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LenMode {
    /// The shipped queue: capacity check and insert in one critical
    /// section (one model step).
    Atomic,
    /// Seeded bug: the capacity check and the insert are separate steps,
    /// as if the lock were released between them.
    SplitCheck,
}

/// What a producer decided during its (possibly stale) capacity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Push,
    EvictPush,
    Reject,
}

/// Model parameters: `producers × pushes_each` against `consumers`
/// non-blocking poppers over a capacity-bounded queue.
#[derive(Debug, Clone, Copy)]
pub struct IngestQueueModel {
    /// Concurrent producer threads.
    pub producers: usize,
    /// Observations each producer pushes.
    pub pushes_each: usize,
    /// Concurrent consumer threads (non-blocking, like
    /// `StreamingOracle`'s try-pop).
    pub consumers: usize,
    /// Pop *attempts* each consumer makes (an empty pop counts — it is
    /// the starved fallback).
    pub pops_each: usize,
    /// Queue capacity.
    pub capacity: usize,
    /// Backpressure policy under test.
    pub policy: BackpressurePolicy,
    /// Push-decision atomicity.
    pub len_mode: LenMode,
}

impl IngestQueueModel {
    /// The headline race: two producers contending for the last slot of a
    /// capacity-1 queue, one consumer draining. One adversarial preemption
    /// between check and insert overflows the [`LenMode::SplitCheck`]
    /// twin.
    #[must_use]
    pub fn contended(policy: BackpressurePolicy, len_mode: LenMode) -> Self {
        Self {
            producers: 2,
            pushes_each: 1,
            consumers: 1,
            pops_each: 2,
            capacity: 1,
            policy,
            len_mode,
        }
    }

    /// A deeper configuration: repeated pushes keep the queue at capacity
    /// so eviction/rejection paths are actually exercised.
    #[must_use]
    pub fn churning(policy: BackpressurePolicy, len_mode: LenMode) -> Self {
        Self {
            producers: 2,
            pushes_each: 2,
            consumers: 1,
            pops_each: 3,
            capacity: 1,
            policy,
            len_mode,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProdPc {
    Check,
    Insert(Action),
}

#[derive(Debug, Clone)]
struct Producer {
    pc: ProdPc,
    remaining: usize,
}

#[derive(Debug, Clone)]
struct Consumer {
    remaining: usize,
}

/// The modeled queue plus every thread's control state.
#[derive(Debug, Clone)]
pub struct IngestQueueState {
    queue: VecDeque<u64>,
    next_id: u64,
    consumed: Vec<u64>,
    dropped: Vec<u64>,
    drop_counter: u64,
    rejected: u64,
    starved: u64,
    producers: Vec<Producer>,
    consumers: Vec<Consumer>,
}

impl Schedulable for IngestQueueModel {
    type State = IngestQueueState;

    fn init(&self) -> IngestQueueState {
        IngestQueueState {
            queue: VecDeque::new(),
            next_id: 0,
            consumed: Vec::new(),
            dropped: Vec::new(),
            drop_counter: 0,
            rejected: 0,
            starved: 0,
            producers: (0..self.producers)
                .map(|_| Producer {
                    pc: ProdPc::Check,
                    remaining: self.pushes_each,
                })
                .collect(),
            consumers: (0..self.consumers)
                .map(|_| Consumer {
                    remaining: self.pops_each,
                })
                .collect(),
        }
    }

    fn thread_count(&self) -> usize {
        self.producers + self.consumers
    }

    fn enabled(&self, state: &IngestQueueState, tid: usize) -> bool {
        if tid < self.producers {
            // A Block-policy producer facing a full queue parks on the
            // condvar: no progress until a consumer makes room.
            !(state.producers[tid].pc == ProdPc::Check
                && self.policy == BackpressurePolicy::Block
                && state.queue.len() >= self.capacity)
        } else {
            true
        }
    }

    fn step(&self, state: &mut IngestQueueState, tid: usize) -> StepStatus {
        if tid < self.producers {
            self.producer_step(state, tid)
        } else {
            self.consumer_step(state, tid - self.producers)
        }
    }

    fn check(&self, state: &IngestQueueState, done: bool) -> Result<(), String> {
        if state.queue.len() > self.capacity {
            return Err(format!(
                "capacity overflow: depth {} > capacity {} (queue {:?})",
                state.queue.len(),
                self.capacity,
                state.queue
            ));
        }
        if state.drop_counter != state.dropped.len() as u64 {
            return Err(format!(
                "drop counter {} disagrees with {} evicted observations",
                state.drop_counter,
                state.dropped.len()
            ));
        }
        if self.policy != BackpressurePolicy::DropOldest && state.drop_counter > 0 {
            return Err(format!(
                "policy {} evicted {} observations",
                self.policy, state.drop_counter
            ));
        }
        if self.policy != BackpressurePolicy::Reject && state.rejected > 0 {
            return Err(format!(
                "policy {} rejected {} observations",
                self.policy, state.rejected
            ));
        }
        // FIFO: ids are assigned in insert order and eviction takes the
        // front, so the consumed sequence must be strictly increasing.
        if let Some(w) = state.consumed.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!(
                "consumption reordered or duplicated: {} then {}",
                w[0], w[1]
            ));
        }
        // Conservation: every produced id is in exactly one place. Ids are
        // unique by construction, so counting suffices alongside the
        // strict-increase check above.
        let accounted = state.queue.len() + state.consumed.len() + state.dropped.len();
        if accounted as u64 != state.next_id {
            return Err(format!(
                "lost or duplicated observations: {} produced, {} accounted",
                state.next_id, accounted
            ));
        }
        if done && self.policy == BackpressurePolicy::Block {
            // Lossless at quiescence: nothing dropped, nothing rejected
            // (already checked every step), so produced = consumed + left.
            let left = state.queue.len() + state.consumed.len();
            if left as u64 != state.next_id {
                return Err(format!(
                    "Block lost observations: {} produced, {} remain",
                    state.next_id, left
                ));
            }
        }
        Ok(())
    }
}

impl IngestQueueModel {
    fn decide(&self, len: usize) -> Action {
        if len < self.capacity {
            Action::Push
        } else {
            match self.policy {
                // A full-queue Block producer is gated by `enabled`; by
                // the time it runs, the check sees room (Atomic) or
                // *believes* it does (SplitCheck — the bug).
                BackpressurePolicy::Block => Action::Push,
                BackpressurePolicy::DropOldest => Action::EvictPush,
                BackpressurePolicy::Reject => Action::Reject,
            }
        }
    }

    fn perform(&self, state: &mut IngestQueueState, action: Action) {
        match action {
            Action::Push => {
                let id = state.next_id;
                state.next_id += 1;
                state.queue.push_back(id);
            }
            Action::EvictPush => {
                if let Some(oldest) = state.queue.pop_front() {
                    state.dropped.push(oldest);
                    state.drop_counter += 1;
                }
                let id = state.next_id;
                state.next_id += 1;
                state.queue.push_back(id);
            }
            Action::Reject => {
                state.rejected += 1;
            }
        }
    }

    fn producer_step(&self, state: &mut IngestQueueState, tid: usize) -> StepStatus {
        match state.producers[tid].pc {
            ProdPc::Check => {
                let action = self.decide(state.queue.len());
                match self.len_mode {
                    LenMode::Atomic => {
                        // One critical section: decision and effect together.
                        self.perform(state, action);
                        self.finish_push(state, tid)
                    }
                    LenMode::SplitCheck => {
                        state.producers[tid].pc = ProdPc::Insert(action);
                        StepStatus::Runnable
                    }
                }
            }
            ProdPc::Insert(action) => {
                // The seeded bug: act on a decision whose premise (the
                // observed length) may be stale.
                self.perform(state, action);
                state.producers[tid].pc = ProdPc::Check;
                self.finish_push(state, tid)
            }
        }
    }

    fn finish_push(&self, state: &mut IngestQueueState, tid: usize) -> StepStatus {
        state.producers[tid].remaining -= 1;
        if state.producers[tid].remaining == 0 {
            StepStatus::Done
        } else {
            StepStatus::Runnable
        }
    }

    fn consumer_step(&self, state: &mut IngestQueueState, cid: usize) -> StepStatus {
        match state.queue.pop_front() {
            Some(id) => state.consumed.push(id),
            None => state.starved += 1,
        }
        state.consumers[cid].remaining -= 1;
        if state.consumers[cid].remaining == 0 {
            StepStatus::Done
        } else {
            StepStatus::Runnable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, ReplayOutcome};

    #[test]
    fn the_shipped_queue_verifies_under_every_policy() {
        for policy in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::Reject,
        ] {
            let model = IngestQueueModel::churning(policy, LenMode::Atomic);
            let report = Explorer::with_bound(2).explore(&model);
            assert!(report.verified(), "{policy}: {:?}", report.counterexample);
            assert!(
                report.schedules > 50,
                "exhaustiveness ({policy}): {report:?}"
            );
        }
    }

    #[test]
    fn split_check_overflows_and_the_trace_replays_identically() {
        let model = IngestQueueModel::contended(BackpressurePolicy::Block, LenMode::SplitCheck);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report.counterexample.expect("check-then-act must overflow");
        assert!(
            cex.violation.message.contains("capacity overflow"),
            "{:?}",
            cex.violation
        );
        // The classic race needs exactly one adversarial preemption:
        // between one producer's check and its insert.
        assert_eq!(cex.preemptions, 1, "{cex:?}");
        match replay(&model, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("minimized trace must reproduce the overflow, got {other:?}"),
        }
        // And the artifact text round-trips to the same trace.
        let decoded = asgd_shmem::sched::decode_schedule(&cex.artifact()).expect("artifact parses");
        assert_eq!(decoded, cex.trace);
    }

    #[test]
    fn split_check_is_safe_without_contention() {
        // One producer cannot race its own check: the bug needs a second
        // producer to fill the observed slot — sanity that the model only
        // reports real interleaving bugs.
        let model = IngestQueueModel {
            producers: 1,
            pushes_each: 2,
            consumers: 1,
            pops_each: 2,
            capacity: 1,
            policy: BackpressurePolicy::DropOldest,
            len_mode: LenMode::SplitCheck,
        };
        let report = Explorer::with_bound(3).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
    }

    #[test]
    fn dropped_observations_are_the_oldest_and_counted() {
        // Deterministic serial schedule through the DropOldest path:
        // two pushes into capacity 1 evict id 0, then the consumer pops
        // id 1 — FIFO, accounting, and the monotone counter all hold.
        let model = IngestQueueModel {
            producers: 1,
            pushes_each: 2,
            consumers: 1,
            pops_each: 1,
            capacity: 1,
            policy: BackpressurePolicy::DropOldest,
            len_mode: LenMode::Atomic,
        };
        let mut state = model.init();
        assert_eq!(model.step(&mut state, 0), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, 0), StepStatus::Done);
        assert_eq!(state.dropped, vec![0]);
        assert_eq!(state.drop_counter, 1);
        assert_eq!(model.step(&mut state, 1), StepStatus::Done);
        assert_eq!(state.consumed, vec![1]);
        assert!(model.check(&state, true).is_ok());
    }
}
