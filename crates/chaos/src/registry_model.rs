//! The [`ModelRegistry`](asgd_serve::ModelRegistry) create/query/drop
//! lifecycle as an explorable step function.
//!
//! The registry's concurrency contract (see `asgd_serve::registry`): the
//! name and id maps mutate together under one lock, ids increase
//! monotonically and are never reused, and the create path is
//! *fast-path check → start service → lock, recheck, insert-or-lose* —
//! the loser of a duplicate-name race must stop the service it already
//! started. The model replays that structure with creators, droppers and
//! queriers over a miniature two-map registry, checking after every step:
//!
//! * **coherence** — every name maps to a live entry carrying that name,
//!   and every live entry's name maps back to its id;
//! * **monotone ids** — issued ids strictly increase, never reused;
//! * **no leaked services** — at quiescence, exactly one running service
//!   per registered model (losers and droppers stopped theirs).
//!
//! [`RegistryMode::SplitCheck`] is the seeded bug: the locked
//! recheck-and-insert is split into two steps, modeling an insert that
//! acts on a stale duplicate check. Two creators racing the same name then
//! both insert; the second overwrites the name slot and the first entry is
//! orphaned — a coherence violation the explorer finds with one
//! preemption.

use crate::explore::{Schedulable, StepStatus};

/// Locking discipline of the modeled create path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryMode {
    /// The shipped protocol: recheck and insert are one atomic (locked)
    /// step.
    Locked,
    /// Seeded bug: recheck and insert are separate steps (stale check).
    SplitCheck,
}

/// One creator/dropper/querier population over a shared name space.
#[derive(Debug, Clone)]
pub struct RegistryModel {
    /// Distinct model names; threads address names by index.
    pub names: usize,
    /// One creator per element, creating the given name index.
    pub creators: Vec<usize>,
    /// One dropper per element, dropping the given name index.
    pub droppers: Vec<usize>,
    /// One querier per element: `(name index, lookups to perform)`.
    pub queriers: Vec<(usize, usize)>,
    /// Create-path locking discipline.
    pub mode: RegistryMode,
}

impl RegistryModel {
    /// The headline configuration: two creators racing one name, a querier
    /// and a dropper on the same name.
    #[must_use]
    pub fn name_race(mode: RegistryMode) -> Self {
        Self {
            names: 1,
            creators: vec![0, 0],
            droppers: vec![0],
            queriers: vec![(0, 1)],
            mode,
        }
    }

    fn creator_count(&self) -> usize {
        self.creators.len()
    }

    fn dropper_count(&self) -> usize {
        self.droppers.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CreatorPc {
    FastCheck,
    Start,
    /// `SplitCheck` only: read the duplicate check into a local.
    Recheck,
    /// Locked mode: recheck + insert in one step. Split mode: insert using
    /// the stale `Recheck` result.
    Insert,
    StopLoser,
}

#[derive(Debug, Clone)]
struct Creator {
    pc: CreatorPc,
    /// `SplitCheck` only: what the recheck observed.
    saw_absent: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropperPc {
    Remove,
    Stop,
}

#[derive(Debug, Clone)]
struct LiveEntry {
    id: u32,
    name: usize,
}

/// The miniature registry plus every thread's control state.
#[derive(Debug, Clone)]
pub struct RegistryState {
    by_name: Vec<Option<u32>>,
    entries: Vec<LiveEntry>,
    next_id: u32,
    last_issued: Option<u32>,
    running_services: usize,
    creators: Vec<Creator>,
    droppers: Vec<DropperPc>,
    querier_remaining: Vec<usize>,
    violation: Option<String>,
}

impl RegistryState {
    fn coherent(&self) -> Result<(), String> {
        for (name, slot) in self.by_name.iter().enumerate() {
            if let Some(id) = slot {
                match self.entries.iter().find(|e| e.id == *id) {
                    Some(entry) if entry.name == name => {}
                    Some(entry) => {
                        return Err(format!(
                            "maps disagree: name {name} maps to id {id} which carries name {}",
                            entry.name
                        ));
                    }
                    None => {
                        return Err(format!(
                            "maps disagree: name {name} maps to id {id} with no live entry"
                        ));
                    }
                }
            }
        }
        for entry in &self.entries {
            if self.by_name[entry.name] != Some(entry.id) {
                return Err(format!(
                    "orphaned entry: id {} carries name {} but the name maps to {:?}",
                    entry.id, entry.name, self.by_name[entry.name]
                ));
            }
        }
        Ok(())
    }
}

impl Schedulable for RegistryModel {
    type State = RegistryState;

    fn init(&self) -> RegistryState {
        RegistryState {
            by_name: vec![None; self.names],
            entries: Vec::new(),
            next_id: 0,
            last_issued: None,
            running_services: 0,
            creators: self
                .creators
                .iter()
                .map(|_| Creator {
                    pc: CreatorPc::FastCheck,
                    saw_absent: false,
                })
                .collect(),
            droppers: self.droppers.iter().map(|_| DropperPc::Remove).collect(),
            querier_remaining: self.queriers.iter().map(|&(_, n)| n).collect(),
            violation: None,
        }
    }

    fn thread_count(&self) -> usize {
        self.creators.len() + self.droppers.len() + self.queriers.len()
    }

    fn step(&self, state: &mut RegistryState, tid: usize) -> StepStatus {
        if tid < self.creator_count() {
            self.creator_step(state, tid)
        } else if tid < self.creator_count() + self.dropper_count() {
            self.dropper_step(state, tid - self.creator_count())
        } else {
            self.querier_step(state, tid - self.creator_count() - self.dropper_count())
        }
    }

    fn check(&self, state: &RegistryState, done: bool) -> Result<(), String> {
        if let Some(message) = &state.violation {
            return Err(message.clone());
        }
        state.coherent()?;
        if done && state.running_services != state.entries.len() {
            return Err(format!(
                "leaked services: {} running for {} registered models at quiescence",
                state.running_services,
                state.entries.len()
            ));
        }
        Ok(())
    }
}

impl RegistryModel {
    fn creator_step(&self, state: &mut RegistryState, cid: usize) -> StepStatus {
        let name = self.creators[cid];
        match state.creators[cid].pc {
            CreatorPc::FastCheck => {
                if state.by_name[name].is_some() {
                    // Straight duplicate: error out without starting a run.
                    return StepStatus::Done;
                }
                state.creators[cid].pc = CreatorPc::Start;
            }
            CreatorPc::Start => {
                state.running_services += 1;
                state.creators[cid].pc = match self.mode {
                    RegistryMode::Locked => CreatorPc::Insert,
                    RegistryMode::SplitCheck => CreatorPc::Recheck,
                };
            }
            CreatorPc::Recheck => {
                state.creators[cid].saw_absent = state.by_name[name].is_none();
                state.creators[cid].pc = CreatorPc::Insert;
            }
            CreatorPc::Insert => {
                let absent = match self.mode {
                    RegistryMode::Locked => state.by_name[name].is_none(),
                    RegistryMode::SplitCheck => state.creators[cid].saw_absent,
                };
                if !absent {
                    // Lost the race: tear the fresh run down.
                    state.creators[cid].pc = CreatorPc::StopLoser;
                    return StepStatus::Runnable;
                }
                let id = state.next_id;
                state.next_id += 1;
                if state.last_issued.is_some_and(|last| id <= last) {
                    state.violation = Some(format!(
                        "id reuse: issued {id} after {:?}",
                        state.last_issued
                    ));
                }
                state.last_issued = Some(id);
                state.by_name[name] = Some(id);
                state.entries.push(LiveEntry { id, name });
                return StepStatus::Done;
            }
            CreatorPc::StopLoser => {
                state.running_services -= 1;
                return StepStatus::Done;
            }
        }
        StepStatus::Runnable
    }

    fn dropper_step(&self, state: &mut RegistryState, did: usize) -> StepStatus {
        let name = self.droppers[did];
        match state.droppers[did] {
            DropperPc::Remove => {
                let Some(id) = state.by_name[name].take() else {
                    // NoSuchModel: a typed error, not a protocol violation.
                    return StepStatus::Done;
                };
                state.entries.retain(|e| e.id != id);
                state.droppers[did] = DropperPc::Stop;
                StepStatus::Runnable
            }
            DropperPc::Stop => {
                state.running_services -= 1;
                StepStatus::Done
            }
        }
    }

    fn querier_step(&self, state: &mut RegistryState, qid: usize) -> StepStatus {
        let (name, _) = self.queriers[qid];
        if let Some(id) = state.by_name[name] {
            match state.entries.iter().find(|e| e.id == id) {
                Some(entry) if entry.name == name => {}
                Some(entry) => {
                    state.violation = Some(format!(
                        "query for name {name} returned entry named {}",
                        entry.name
                    ));
                }
                None => {
                    state.violation = Some(format!("query for name {name} hit dangling id {id}"));
                }
            }
        }
        state.querier_remaining[qid] -= 1;
        if state.querier_remaining[qid] == 0 {
            StepStatus::Done
        } else {
            StepStatus::Runnable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, ReplayOutcome};

    #[test]
    fn locked_lifecycle_verifies_under_a_name_race() {
        let model = RegistryModel::name_race(RegistryMode::Locked);
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
        assert!(report.schedules > 100, "exhaustiveness: {report:?}");
    }

    #[test]
    fn split_check_insert_is_caught_with_one_preemption() {
        let model = RegistryModel::name_race(RegistryMode::SplitCheck);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report.counterexample.expect("stale recheck must corrupt");
        assert_eq!(cex.preemptions, 1, "{cex:?}");
        assert!(
            cex.violation.message.contains("orphaned entry")
                || cex.violation.message.contains("maps disagree"),
            "{:?}",
            cex.violation
        );
        match replay(&model, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("minimized trace must reproduce, got {other:?}"),
        }
    }

    #[test]
    fn dropping_a_missing_name_is_an_error_not_a_violation() {
        let model = RegistryModel {
            names: 1,
            creators: vec![],
            droppers: vec![0, 0],
            queriers: vec![(0, 2)],
            mode: RegistryMode::Locked,
        };
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
    }
}
