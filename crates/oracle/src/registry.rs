//! By-name oracle construction for spec-driven experiment harnesses.
//!
//! Every workload in this crate can be built from an [`OracleSpec`] — a
//! plain-data description (kind, dimension, noise, dataset parameters) that
//! can live in a config file or CLI arguments. The unified execution driver
//! (`asgd-driver`) embeds an `OracleSpec` in its `RunSpec` so one value
//! describes a run end to end.
//!
//! # Example
//!
//! ```
//! use asgd_oracle::registry::OracleSpec;
//! use asgd_oracle::GradientOracle;
//!
//! let oracle = OracleSpec::new("noisy-quadratic", 4).sigma(0.5).build().unwrap();
//! assert_eq!(oracle.dimension(), 4);
//! assert_eq!(oracle.name(), "noisy-quadratic");
//! ```

use crate::{
    Flat, GradientOracle, LinearRegression, Minibatch, MinibatchRegression, NoisyQuadratic,
    RidgeLogistic, SparseQuadratic,
};
use std::sync::Arc;

/// The oracle kinds the registry can build, by canonical name.
#[must_use]
pub fn known_kinds() -> &'static [&'static str] {
    &[
        "noisy-quadratic",
        "sparse-quadratic",
        "linear-regression",
        "ridge-logistic",
        "minibatch-regression",
        "minibatch-sparse",
        "streaming",
        "flat",
    ]
}

/// Error building an oracle from a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleSpecError {
    /// The `kind` string names no registered oracle.
    UnknownKind(String),
    /// The parameters were rejected by the workload constructor.
    Invalid(String),
}

impl std::fmt::Display for OracleSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownKind(kind) => write!(
                f,
                "unknown oracle kind `{kind}` (known: {})",
                known_kinds().join(", ")
            ),
            Self::Invalid(msg) => write!(f, "invalid oracle parameters: {msg}"),
        }
    }
}

impl std::error::Error for OracleSpecError {}

/// Plain-data description of a workload, buildable by name.
///
/// Fields not relevant to a kind are ignored (e.g. `batch` for
/// `noisy-quadratic`), so one spec type covers every oracle.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OracleSpec {
    /// Canonical kind name (see [`known_kinds`]).
    pub kind: String,
    /// Model dimension `d`.
    pub dim: usize,
    /// Gradient noise σ (quadratics) or label noise (dataset oracles).
    pub sigma: f64,
    /// Dataset size `m` for dataset-backed oracles.
    pub dataset: usize,
    /// Minibatch size `b` for `minibatch-regression`.
    pub batch: usize,
    /// Ridge coefficient λ for `ridge-logistic`.
    pub lambda: f64,
    /// Seed used to generate synthetic datasets (not the run seed).
    pub data_seed: u64,
}

impl OracleSpec {
    /// A spec with sensible defaults: σ = 0.1, m = 500, b = 32, λ = 0.1,
    /// dataset seed `0x5EED`.
    #[must_use]
    pub fn new(kind: impl Into<String>, dim: usize) -> Self {
        Self {
            kind: kind.into(),
            dim,
            sigma: 0.1,
            dataset: 500,
            batch: 32,
            lambda: 0.1,
            data_seed: 0x5EED,
        }
    }

    /// Sets the noise level σ.
    #[must_use]
    pub fn sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma;
        self
    }

    /// Sets the dataset size `m`.
    #[must_use]
    pub fn dataset(mut self, m: usize) -> Self {
        self.dataset = m;
        self
    }

    /// Sets the minibatch size `b`.
    #[must_use]
    pub fn batch(mut self, b: usize) -> Self {
        self.batch = b;
        self
    }

    /// Sets the ridge coefficient λ.
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the synthetic-dataset seed.
    #[must_use]
    pub fn data_seed(mut self, seed: u64) -> Self {
        self.data_seed = seed;
        self
    }

    /// Builds the oracle.
    ///
    /// # Errors
    ///
    /// Returns [`OracleSpecError::UnknownKind`] for unregistered names and
    /// [`OracleSpecError::Invalid`] when the constructor rejects the
    /// parameters.
    pub fn build(&self) -> Result<Arc<dyn GradientOracle>, OracleSpecError> {
        let invalid = |e: &dyn std::fmt::Display| OracleSpecError::Invalid(e.to_string());
        match self.kind.as_str() {
            "noisy-quadratic" => NoisyQuadratic::new(self.dim, self.sigma)
                .map(|o| Arc::new(o) as Arc<dyn GradientOracle>)
                .map_err(|e| invalid(&e)),
            "sparse-quadratic" => SparseQuadratic::uniform(self.dim, 1.0, self.sigma)
                .map(|o| Arc::new(o) as Arc<dyn GradientOracle>)
                .map_err(|e| invalid(&e)),
            "linear-regression" => {
                LinearRegression::synthetic(self.dataset, self.dim, self.sigma, self.data_seed)
                    .map(|o| Arc::new(o) as Arc<dyn GradientOracle>)
                    .map_err(|e| invalid(&e))
            }
            "ridge-logistic" => RidgeLogistic::synthetic(
                self.dataset,
                self.dim,
                self.sigma,
                self.lambda,
                self.data_seed,
            )
            .map(|o| Arc::new(o) as Arc<dyn GradientOracle>)
            .map_err(|e| invalid(&e)),
            "minibatch-regression" => MinibatchRegression::synthetic(
                self.dataset,
                self.dim,
                self.sigma,
                self.batch,
                self.data_seed,
            )
            .map(|o| Arc::new(o) as Arc<dyn GradientOracle>)
            .map_err(|e| invalid(&e)),
            // Δ-sparse gradients averaged in minibatches: the batch keeps
            // the O(b·Δ) update footprint (`batch == 0` is rejected here so
            // the constructor's panic never fires on spec input).
            "minibatch-sparse" => {
                if self.batch == 0 {
                    return Err(OracleSpecError::Invalid(
                        "batch size must be at least 1".to_string(),
                    ));
                }
                SparseQuadratic::uniform(self.dim, 1.0, self.sigma)
                    .map(|o| Arc::new(Minibatch::new(o, self.batch)) as Arc<dyn GradientOracle>)
                    .map_err(|e| invalid(&e))
            }
            // Continual learning: a noisy-quadratic prior behind a bounded
            // drop-oldest ingress queue (`dataset` is reused as the queue
            // capacity). Until observations are pushed through
            // `StreamingOracle::queue`, it behaves exactly like its prior;
            // serving-path callers construct their queue explicitly and
            // wire producers to it (see `asgd-ingest`).
            "streaming" => NoisyQuadratic::new(self.dim, self.sigma)
                .map(|prior| {
                    let queue = crate::streaming::IngressQueue::new(
                        self.dataset,
                        crate::streaming::BackpressurePolicy::DropOldest,
                    );
                    Arc::new(crate::streaming::StreamingOracle::new(
                        Arc::new(prior),
                        queue,
                    )) as Arc<dyn GradientOracle>
                })
                .map_err(|e| invalid(&e)),
            // The inert oracle (`f ≡ 0`): the hold-position prior for
            // streaming models — starved fallback steps become no-ops so
            // live observations alone shape the model (see `crate::Flat`).
            "flat" => Flat::new(self.dim)
                .map(|o| Arc::new(o) as Arc<dyn GradientOracle>)
                .map_err(|e| invalid(&e)),
            other => Err(OracleSpecError::UnknownKind(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_kind_builds() {
        // Drift guard: `known_kinds()` is the list CLIs and docs advertise,
        // so every entry must actually construct through `build` at a small
        // dimension — adding an oracle to the match without the list (or
        // vice versa) fails here, not in a user's hands. Default spec
        // parameters must also work: that is what spec-driven callers start
        // from.
        for kind in known_kinds() {
            for spec in [
                OracleSpec::new(*kind, 4),
                OracleSpec::new(*kind, 4).dataset(64).batch(8),
            ] {
                let oracle = spec.build().unwrap_or_else(|e| panic!("{kind}: {e}"));
                assert_eq!(oracle.dimension(), 4, "{kind}");
                let k = oracle.constants(1.0);
                assert!(k.c > 0.0, "{kind}: constants must be positive");
            }
        }
    }

    #[test]
    fn unknown_kind_is_reported_by_name() {
        let err = OracleSpec::new("nope", 2).build().map(|_| ()).unwrap_err();
        assert!(matches!(err, OracleSpecError::UnknownKind(_)));
        let message = err.to_string();
        // The message must name the offending kind (so a typo in a config
        // is findable) and list every known kind (so the fix is, too).
        assert!(message.contains("`nope`"), "{message}");
        for kind in known_kinds() {
            assert!(message.contains(kind), "{message} missing {kind}");
        }
    }

    #[test]
    fn invalid_parameters_are_reported() {
        let err = OracleSpec::new("noisy-quadratic", 2)
            .sigma(-1.0)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, OracleSpecError::Invalid(_)));
    }

    #[test]
    fn builder_setters_apply() {
        let s = OracleSpec::new("ridge-logistic", 3)
            .sigma(0.2)
            .dataset(99)
            .batch(7)
            .lambda(0.5)
            .data_seed(42);
        assert_eq!(
            (s.sigma, s.dataset, s.batch, s.lambda, s.data_seed),
            (0.2, 99, 7, 0.5, 42)
        );
        assert!(s.build().is_ok());
    }
}
