//! **Continual learning from the live stream** — the closed loop:
//! producer fleets push labeled observations through the wire protocol's
//! submit-observe opcode into a bounded ingress queue, a hogwild trainer
//! consumes them through its streaming oracle, the ground truth drifts
//! mid-run, and the measured quantity is the **time to recover** — the
//! stream-side analogue of the paper's success-region hitting time after
//! an adversarial perturbation.
//!
//! The sweep crosses fleet size × backpressure policy, every cell with a
//! scheduled negate drift (θ* flips sign halfway through). Each cell runs
//! the full loop over a real TCP socket: the contrast the table carries is
//! how the policies degrade — `block` applies backpressure to the fleet,
//! `drop-oldest` sheds stale observations (bounding the queue-lag τ),
//! `reject` refuses at the wire with explicit `Overloaded` frames — while
//! every cell still recovers in finite time.
//!
//! Full (non-quick) runs write `BENCH_ingest.json` into the current
//! directory — the committed continual-learning artifact.

use crate::ExperimentOutput;
use asgd_driver::json::Value;
use asgd_driver::{BackendKind, RunSpec};
use asgd_ingest::{heterogeneous_fleet, DriftSpec, IngestReport, IngestSpec};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::{BackpressurePolicy, OracleSpec};
use std::time::Duration;

/// Model dimension of every cell. Small on purpose: the interesting
/// dynamics are queueing and recovery, not gradient arithmetic, and a
/// small model keeps per-observation work far below the socket cost so
/// the trainer is never the bottleneck.
pub const DIM: usize = 8;

/// Ingress queue capacity of every cell.
pub const CAPACITY: usize = 64;

/// Per-observation learning rate. With unit-magnitude sparse features at
/// sparsity 4 this closes the drift gap in tens of milliseconds of
/// stream traffic — well inside every cell's window.
pub const ALPHA: f64 = 0.05;

/// Builds one cell's spec: a flat-prior streaming trainer (starved steps
/// hold position, so the live stream alone shapes the model), a
/// heterogeneous fleet alternating fast and slow producers, and a negate
/// drift scheduled at `drift_at` seconds.
#[must_use]
pub fn cell_spec(
    producers: usize,
    policy: BackpressurePolicy,
    duration_secs: f64,
    drift_at: f64,
) -> IngestSpec {
    IngestSpec {
        train: RunSpec::new(OracleSpec::new("flat", DIM), BackendKind::Hogwild)
            .threads(2)
            .iterations(u64::MAX / 4)
            .learning_rate(ALPHA)
            .x0(vec![0.0; DIM])
            .seed(11),
        capacity: CAPACITY,
        policy,
        producers: heterogeneous_fleet(producers, Duration::from_micros(200), 4),
        label_noise: 0.0,
        theta0: vec![0.8; DIM],
        drift: Some(DriftSpec::negate_after(drift_at)),
        duration_secs,
        recover_frac: 0.5,
        sample_interval: Duration::from_millis(2),
        seed: 0x106E57,
    }
}

/// Runs the sweep serially (each cell owns the machine): fleet size ×
/// backpressure policy, every cell drifted.
#[must_use]
pub fn sweep(quick: bool) -> Vec<IngestReport> {
    let (fleets, duration, drift_at) = if quick {
        (vec![2], 0.8, 0.3)
    } else {
        (vec![1, 4], 1.6, 0.6)
    };
    let mut rows = Vec::new();
    for &producers in &fleets {
        for policy in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::Reject,
        ] {
            let report = cell_spec(producers, policy, duration, drift_at)
                .run(None)
                .expect("ingest cell runs");
            rows.push(report);
        }
    }
    rows
}

/// Serialises the sweep to the `BENCH_ingest.json` value tree.
#[must_use]
pub fn to_json(rows: &[IngestReport]) -> Value {
    Value::obj([
        ("experiment", Value::Str("ingest".to_string())),
        ("prior", Value::Str("flat".to_string())),
        ("dim", Value::U64(DIM as u64)),
        ("transport", Value::Str("tcp-loopback".to_string())),
        (
            "rows",
            Value::Arr(rows.iter().map(IngestReport::to_value).collect()),
        ),
    ])
}

/// Runs the experiment. Non-quick runs also write `BENCH_ingest.json`
/// into the current directory.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ingest");
    let rows = sweep(quick);
    let mut table = Table::new(
        "Continual learning over TCP loopback: producer fleet -> bounded ingress queue -> streaming hogwild, negate drift mid-run (flat prior)",
        &[
            "producers", "policy", "sent", "consumed", "dropped", "rejected", "lag mean",
            "drift @s", "jump dist2", "recover ms", "final dist2", "iters",
        ],
    );
    for r in &rows {
        table.row(&[
            r.producers.to_string(),
            r.policy.clone(),
            r.observations_sent.to_string(),
            r.consumed.to_string(),
            r.dropped.to_string(),
            r.rejected.to_string(),
            fmt_f(r.lag_mean),
            r.drift
                .as_ref()
                .map_or_else(|| "-".to_string(), |d| format!("{:.2}", d.at_secs)),
            fmt_f(r.drift_dist_sq),
            r.time_to_recover_secs
                .map_or_else(|| "never".to_string(), |t| format!("{:.1}", t * 1e3)),
            fmt_f(r.final_dist_sq),
            r.train_iterations.to_string(),
        ]);
    }
    out.tables.push(table);
    let recovered = rows
        .iter()
        .filter(|r| r.time_to_recover_secs.is_some())
        .count();
    out.notes.push(format!(
        "[ingest] {recovered}/{} drifted cells recovered (closed >= 50% of the drift gap)",
        rows.len()
    ));
    if !quick {
        let path = std::path::Path::new("BENCH_ingest.json");
        match std::fs::write(path, to_json(&rows).to_json_pretty() + "\n") {
            Ok(()) => out.notes.push(format!("[json] {}", path.display())),
            Err(e) => out
                .notes
                .push(format!("[json] failed to write {}: {e}", path.display())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_recovers_under_every_policy_and_round_trips_json() {
        let rows = sweep(true);
        assert_eq!(rows.len(), 3, "one quick cell per backpressure policy");
        for r in &rows {
            assert!(r.observations_sent > 0, "{r:?}: fleet delivered nothing");
            assert!(r.consumed > 0, "{r:?}: trainer never consumed the stream");
            let drift = r.drift.as_ref().expect("drift fired");
            assert_eq!(drift.kind, "negate");
            let ttr = r.time_to_recover_secs.expect("cell recovered");
            assert!(ttr >= 0.0 && ttr < r.wall_time_secs, "{r:?}");
        }
        // The policies must be distinguishable in the artifact.
        let policies: Vec<&str> = rows.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(policies, ["block", "drop-oldest", "reject"]);
        let json = to_json(&rows).to_json();
        let back = asgd_driver::json::parse(&json).expect("valid JSON");
        let parsed = back.get("rows").and_then(Value::as_arr).expect("rows");
        assert_eq!(parsed.len(), rows.len());
        for (v, r) in parsed.iter().zip(&rows) {
            assert_eq!(&IngestReport::from_value(v).expect("row parses"), r);
        }
    }
}
