//! Fixed-width tables with CSV export.
//!
//! Every experiment prints one of these to stdout and (optionally) writes
//! the same rows as CSV under a chosen directory, so EXPERIMENTS.md can
//! reference regenerable artifacts.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(ToString::to_string).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let mut line = String::new();
        for (i, (h, w)) in self.headers.iter().zip(&widths).enumerate() {
            let _ = write!(line, "{h:>w$}");
            if i + 1 < ncols {
                line.push_str("  ");
            }
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                let _ = write!(line, "{cell:>w$}");
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Serialises the rows as CSV (headers first, RFC-4180 quoting for cells
    /// containing commas, quotes or newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendition to `dir/name.csv`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header", "x"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["100".into(), "20000".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        // Data rows share the same width.
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("asgd-metrics-test");
        let mut t = Table::new("t", &["k", "v"]);
        t.row_display(&[&1, &2.5]);
        let path = t.write_csv(&dir, "demo").expect("write");
        let content = std::fs::read_to_string(&path).expect("read back");
        assert!(content.starts_with("k,v"));
        assert!(content.contains("1,2.5"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
        assert_eq!(fmt_f(f64::NEG_INFINITY), "-inf");
        assert!(fmt_f(123456.0).contains('e'));
        assert!(fmt_f(0.0001).contains('e'));
        assert_eq!(fmt_f(1.5), "1.5000");
    }
}
