//! Algorithm 1 — lock-free `EpochSGD` as a simulated process.
//!
//! One thread's program (paper, Algorithm 1):
//!
//! ```text
//! procedure EpochSGD(T, α)
//!   for each iteration θ:
//!     if C.fetch&add(1) ≥ T then return          // claim a slot
//!     for j in 1..d: v_θ[j] ← X[j].read()        // inconsistent view scan
//!     g̃_θ ← stochastic gradient at v_θ           // local coin
//!     for j in 1..d:
//!       if g̃_θ[j] ≠ 0: X[j].fetch&add(−α·g̃_θ[j]) // per-entry update
//! ```
//!
//! The process declares exactly one shared-memory op per scheduler step, so
//! the adversary can interleave (and stall) it anywhere — between two view
//! reads, between gradient computation and the first write, between any two
//! writes. Every op carries the [`OpTag`] the contention tracker and the
//! adaptive adversaries key on.
//!
//! **Sparse mode** ([`EpochSgdConfig::sparse`]): for oracles with a
//! two-phase sparse decomposition (`sample_support` /
//! `gradient_on_support`), the process draws the gradient's support first
//! and then declares *only* the support's read ops instead of scanning all d
//! registers — the simulated rendition of the O(Δ) fast path (host
//! wall-clock drops by the same d/Δ factor as the native executors). The
//! support coin is necessarily drawn before the reads rather than after the
//! full scan, so sparse executions interleave differently from dense ones
//! under adversarial schedulers (serial schedules still reproduce the
//! sequential trajectory bit for bit); it is therefore an explicit opt-in,
//! with the dense scan remaining the paper-faithful default.

use asgd_oracle::{GradientOracle, SparseGrad};
use asgd_shmem::op::{Action, MemOp, OpTag};
use asgd_shmem::process::{Process, ProcessCtx};

/// Memory-layout and hyper-parameter configuration for one
/// [`EpochSgdProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSgdConfig {
    /// Learning rate `α > 0`.
    pub alpha: f64,
    /// Iteration budget `T` shared by all threads via the claim counter.
    pub iterations: u64,
    /// Index of the claim counter register `C`.
    pub counter_idx: usize,
    /// First float register of the model `X[d]`.
    pub model_base: usize,
    /// First float register of the shared `Acc` region (length `d`), into
    /// which the thread publishes its locally accumulated updates after its
    /// last iteration — used by Algorithm 2's final epoch. `None` disables
    /// accumulation.
    pub acc_base: Option<usize>,
    /// Declare O(Δ) sparse ops for two-phase sparse oracles (oracles without
    /// the decomposition silently stay on the dense scan).
    pub sparse: bool,
}

impl EpochSgdConfig {
    /// Canonical single-epoch layout: counter 0, model at float register 0,
    /// no accumulator, dense op pattern.
    #[must_use]
    pub fn simple(alpha: f64, iterations: u64) -> Self {
        Self {
            alpha,
            iterations,
            counter_idx: 0,
            model_base: 0,
            acc_base: None,
            sparse: false,
        }
    }

    /// Enables or disables the sparse op pattern.
    #[must_use]
    pub fn sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Claim,
    AwaitClaim,
    Read { j: usize },
    AwaitRead { j: usize },
    ReadSupport { k: usize },
    AwaitReadSupport { k: usize },
    Compute,
    Write { k: usize },
    AwaitWrite { k: usize },
    PublishAcc { j: usize },
    AwaitPublish { j: usize },
}

/// The Algorithm-1 state machine for one simulated thread.
pub struct EpochSgdProcess<O> {
    oracle: O,
    cfg: EpochSgdConfig,
    d: usize,
    phase: Phase,
    view: Vec<f64>,
    grad: Vec<f64>,
    /// Support drawn for the current sparse iteration, and the model values
    /// read at exactly those coordinates.
    support: Vec<usize>,
    support_values: Vec<f64>,
    sgrad: SparseGrad,
    /// `(entry, gradient value)` of the nonzero entries to apply this
    /// iteration.
    writes: Vec<(usize, f64)>,
    /// Locally accumulated applied updates (Algorithm 2, line 8).
    acc: Vec<f64>,
    /// Completed iterations by this thread.
    completed: u64,
}

impl<O: GradientOracle> EpochSgdProcess<O> {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.alpha` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, cfg: EpochSgdConfig) -> Self {
        assert!(
            cfg.alpha.is_finite() && cfg.alpha > 0.0,
            "alpha must be positive"
        );
        let d = oracle.dimension();
        Self {
            oracle,
            cfg,
            d,
            phase: Phase::Claim,
            view: vec![0.0; d],
            grad: vec![0.0; d],
            support: Vec::new(),
            support_values: Vec::new(),
            sgrad: SparseGrad::new(),
            writes: Vec::with_capacity(d),
            acc: vec![0.0; d],
            completed: 0,
        }
    }

    /// Iterations this thread completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Compresses the sparse gradient into the write list (zero entries are
    /// dropped, matching the dense path's `g̃[j] ≠ 0` filter).
    fn stage_sparse_writes(&mut self) {
        self.writes.clear();
        self.writes
            .extend(self.sgrad.entries().iter().filter(|(_, g)| *g != 0.0));
    }
}

impl<O: GradientOracle> Process for EpochSgdProcess<O> {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_>) -> Action {
        loop {
            match self.phase {
                Phase::Claim => {
                    self.phase = Phase::AwaitClaim;
                    return Action::Op {
                        op: MemOp::FaaU64 {
                            idx: self.cfg.counter_idx,
                            delta: 1,
                        },
                        tag: OpTag::ClaimIteration,
                    };
                }
                Phase::AwaitClaim => {
                    let prior = ctx
                        .last
                        .expect("claim result must be delivered")
                        .unwrap_u64();
                    if prior >= self.cfg.iterations {
                        // Budget exhausted: optionally publish Acc, then halt.
                        if self.cfg.acc_base.is_some() {
                            self.phase = Phase::PublishAcc { j: 0 };
                            continue;
                        }
                        return Action::Halt;
                    }
                    if self.cfg.sparse && self.oracle.sample_support(ctx.rng, &mut self.support) {
                        // Sparse iteration: the support coin is drawn here,
                        // then only the support's registers are read.
                        self.support_values.clear();
                        if self.support.is_empty() {
                            // Degenerate empty support: finish the sample
                            // (keeping the RNG schedule) and move on.
                            self.oracle.gradient_on_support(
                                &self.support,
                                &self.support_values,
                                ctx.rng,
                                &mut self.sgrad,
                            );
                            self.stage_sparse_writes();
                            self.phase = Phase::Compute;
                            return Action::Local {
                                tag: OpTag::SampleCoin,
                            };
                        }
                        self.phase = Phase::ReadSupport { k: 0 };
                    } else {
                        self.phase = Phase::Read { j: 0 };
                    }
                }
                Phase::Read { j } => {
                    self.phase = Phase::AwaitRead { j };
                    return Action::Op {
                        op: MemOp::ReadF64 {
                            idx: self.cfg.model_base + j,
                        },
                        tag: OpTag::ViewRead {
                            entry: j,
                            first: j == 0,
                            last: j == self.d - 1,
                        },
                    };
                }
                Phase::AwaitRead { j } => {
                    self.view[j] = ctx
                        .last
                        .expect("read result must be delivered")
                        .unwrap_f64();
                    if j + 1 < self.d {
                        self.phase = Phase::Read { j: j + 1 };
                    } else {
                        self.phase = Phase::Compute;
                        // The gradient coin is drawn *now*, at declaration
                        // time of the Local step, so the adversary observes
                        // it before scheduling anything else.
                        self.oracle
                            .sample_gradient(&self.view, ctx.rng, &mut self.grad);
                        self.writes.clear();
                        self.writes.extend(
                            (0..self.d)
                                .filter(|&j| self.grad[j] != 0.0)
                                .map(|j| (j, self.grad[j])),
                        );
                        return Action::Local {
                            tag: OpTag::SampleCoin,
                        };
                    }
                }
                Phase::ReadSupport { k } => {
                    self.phase = Phase::AwaitReadSupport { k };
                    let entry = self.support[k];
                    return Action::Op {
                        op: MemOp::ReadF64 {
                            idx: self.cfg.model_base + entry,
                        },
                        tag: OpTag::ViewRead {
                            entry,
                            first: k == 0,
                            last: k == self.support.len() - 1,
                        },
                    };
                }
                Phase::AwaitReadSupport { k } => {
                    let value = ctx
                        .last
                        .expect("read result must be delivered")
                        .unwrap_f64();
                    self.support_values.push(value);
                    if k + 1 < self.support.len() {
                        self.phase = Phase::ReadSupport { k: k + 1 };
                    } else {
                        self.phase = Phase::Compute;
                        // Remaining gradient coins (noise) are drawn at the
                        // Local step, as on the dense path.
                        self.oracle.gradient_on_support(
                            &self.support,
                            &self.support_values,
                            ctx.rng,
                            &mut self.sgrad,
                        );
                        self.stage_sparse_writes();
                        return Action::Local {
                            tag: OpTag::SampleCoin,
                        };
                    }
                }
                Phase::Compute => {
                    if self.writes.is_empty() {
                        // Zero gradient: the iteration applies nothing
                        // (invisible to the Lemma-6.1 order) — claim again.
                        self.completed += 1;
                        self.phase = Phase::Claim;
                        continue;
                    }
                    self.phase = Phase::Write { k: 0 };
                }
                Phase::Write { k } => {
                    let (entry, g) = self.writes[k];
                    let delta = -self.cfg.alpha * g;
                    self.acc[entry] += delta;
                    self.phase = Phase::AwaitWrite { k };
                    return Action::Op {
                        op: MemOp::FaaF64 {
                            idx: self.cfg.model_base + entry,
                            delta,
                        },
                        tag: OpTag::ModelWrite {
                            entry,
                            first: k == 0,
                            last: k == self.writes.len() - 1,
                        },
                    };
                }
                Phase::AwaitWrite { k } => {
                    if k + 1 < self.writes.len() {
                        self.phase = Phase::Write { k: k + 1 };
                    } else {
                        self.completed += 1;
                        self.phase = Phase::Claim;
                    }
                }
                Phase::PublishAcc { j } => {
                    let base = self
                        .cfg
                        .acc_base
                        .expect("publish phase only entered with acc enabled");
                    self.phase = Phase::AwaitPublish { j };
                    return Action::Op {
                        op: MemOp::FaaF64 {
                            idx: base + j,
                            delta: self.acc[j],
                        },
                        tag: OpTag::Untagged,
                    };
                }
                Phase::AwaitPublish { j } => {
                    if j + 1 < self.d {
                        self.phase = Phase::PublishAcc { j: j + 1 };
                    } else {
                        return Action::Halt;
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "epoch-sgd(alpha={}, T={}, oracle={}{})",
            self.cfg.alpha,
            self.cfg.iterations,
            self.oracle.name(),
            if self.cfg.sparse { ", sparse" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::NoisyQuadratic;
    use asgd_shmem::engine::Engine;
    use asgd_shmem::memory::Memory;
    use asgd_shmem::sched::{RandomScheduler, SerialScheduler, StepRoundRobin};
    use asgd_shmem::StopReason;
    use std::sync::Arc;

    fn quad(d: usize, sigma: f64) -> Arc<NoisyQuadratic> {
        Arc::new(NoisyQuadratic::new(d, sigma).unwrap())
    }

    #[test]
    fn serial_execution_matches_sequential_sgd() {
        // Under the serial scheduler, thread 0 runs all iterations alone with
        // its own coin stream ⇒ identical trajectory to SequentialSgd with
        // the same per-thread seed (child 0 of the engine master seed).
        let d = 3;
        let oracle = quad(d, 0.5);
        let x0 = vec![1.0, -2.0, 0.5];
        let t = 100;
        let alpha = 0.05;

        let report = Engine::builder()
            .memory(Memory::with_model(&x0, 1))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(alpha, t),
            ))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(alpha, t),
            ))
            .scheduler(SerialScheduler::new())
            .seed(77)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::AllDone);

        // Replicate thread 0's coin stream.
        let seq = asgd_math::rng::SeedSequence::new(77);
        let mut rng = seq.child_rng(0);
        let mut x = x0.clone();
        let mut g = vec![0.0; d];
        for _ in 0..t {
            oracle.sample_gradient(&x, &mut rng, &mut g);
            asgd_math::vec::axpy(&mut x, -alpha, &g);
        }
        for (j, &xj) in x.iter().enumerate() {
            assert!(
                (report.memory.float(j) - xj).abs() < 1e-12,
                "entry {j}: simulated {} vs sequential {}",
                report.memory.float(j),
                xj
            );
        }
        assert_eq!(report.contention.iterations(), t);
        assert_eq!(report.contention.tau_max(), 0, "serial ⇒ no contention");
    }

    #[test]
    fn total_iterations_bounded_by_t_under_any_schedule() {
        let oracle = quad(2, 1.0);
        for seed in 0..5 {
            let report = Engine::builder()
                .memory(Memory::new(2, 1))
                .process(EpochSgdProcess::new(
                    Arc::clone(&oracle),
                    EpochSgdConfig::simple(0.1, 50),
                ))
                .process(EpochSgdProcess::new(
                    Arc::clone(&oracle),
                    EpochSgdConfig::simple(0.1, 50),
                ))
                .process(EpochSgdProcess::new(
                    Arc::clone(&oracle),
                    EpochSgdConfig::simple(0.1, 50),
                ))
                .scheduler(RandomScheduler::new(seed))
                .seed(seed)
                .build()
                .run();
            assert_eq!(report.stop, StopReason::AllDone);
            assert_eq!(
                report.contention.iterations(),
                50,
                "claim counter partitions exactly T iterations"
            );
            // Counter = T + n (each thread's failing claim).
            assert_eq!(report.memory.counter(0), 53);
        }
    }

    #[test]
    fn concurrent_execution_still_converges_noiseless() {
        // Noiseless quadratic: even with interleaving, faa updates are exact
        // scaled copies of read views; the model must shrink towards 0.
        let oracle = quad(2, 0.0);
        let x0 = vec![4.0, -4.0];
        let report = Engine::builder()
            .memory(Memory::with_model(&x0, 1))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(0.1, 300),
            ))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(0.1, 300),
            ))
            .scheduler(StepRoundRobin::new())
            .seed(5)
            .build()
            .run();
        let final_norm = asgd_math::vec::l2_norm(&[report.memory.float(0), report.memory.float(1)]);
        assert!(final_norm < 0.05, "‖x_T‖ = {final_norm}");
    }

    #[test]
    fn acc_region_collects_all_applied_updates() {
        // With accumulation on, Acc sums every thread's applied deltas, so
        // x0 + Acc == final model exactly (same faa arithmetic).
        let oracle = quad(2, 1.0);
        let x0 = [1.0, 1.0];
        let mk = |o: &Arc<NoisyQuadratic>| {
            EpochSgdProcess::new(
                Arc::clone(o),
                EpochSgdConfig {
                    alpha: 0.1,
                    iterations: 40,
                    counter_idx: 0,
                    model_base: 0,
                    acc_base: Some(2),
                    sparse: false,
                },
            )
        };
        let report = Engine::builder()
            .memory(Memory::with_model(&[1.0, 1.0, 0.0, 0.0], 1))
            .process(mk(&oracle))
            .process(mk(&oracle))
            .scheduler(RandomScheduler::new(2))
            .seed(3)
            .build()
            .run();
        for (j, &x0j) in x0.iter().enumerate() {
            let reconstructed = x0j + report.memory.float(2 + j);
            assert!(
                (reconstructed - report.memory.float(j)).abs() < 1e-9,
                "entry {j}: x0+Acc = {reconstructed} vs model {}",
                report.memory.float(j)
            );
        }
    }

    #[test]
    fn contention_appears_under_interleaving() {
        let oracle = quad(4, 1.0);
        let report = Engine::builder()
            .memory(Memory::new(4, 1))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(0.05, 100),
            ))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(0.05, 100),
            ))
            .scheduler(StepRoundRobin::new())
            .seed(11)
            .build()
            .run();
        assert!(
            report.contention.tau_max() >= 1,
            "round-robin interleaving must create overlapping iterations"
        );
        assert!(report.contention.gibson_gramoli_holds());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let oracle = quad(1, 0.0);
        let _ = EpochSgdProcess::new(oracle, EpochSgdConfig::simple(-0.1, 10));
    }

    #[test]
    fn sparse_mode_matches_sequential_on_serial_schedule() {
        // Sparse ops + serial scheduler: thread 0 runs alone, drawing the
        // coordinate coin, reading one register, drawing the noise — the
        // same RNG schedule and arithmetic as the dense sequential loop, so
        // the trajectory reproduces bit for bit.
        use asgd_oracle::SparseQuadratic;
        let d = 4;
        let oracle = Arc::new(SparseQuadratic::uniform(d, 1.0, 0.5).unwrap());
        let x0 = vec![1.0, -1.0, 0.5, 2.0];
        let t = 200;
        let alpha = 0.05;
        let report = Engine::builder()
            .memory(Memory::with_model(&x0, 1))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(alpha, t).sparse(true),
            ))
            .process(EpochSgdProcess::new(
                Arc::clone(&oracle),
                EpochSgdConfig::simple(alpha, t).sparse(true),
            ))
            .scheduler(SerialScheduler::new())
            .seed(31)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::AllDone);

        let seq = asgd_math::rng::SeedSequence::new(31);
        let mut rng = seq.child_rng(0);
        let mut x = x0.clone();
        let mut g = vec![0.0; d];
        for _ in 0..t {
            oracle.sample_gradient(&x, &mut rng, &mut g);
            asgd_math::vec::axpy(&mut x, -alpha, &g);
        }
        for (j, &xj) in x.iter().enumerate() {
            assert_eq!(
                report.memory.float(j).to_bits(),
                xj.to_bits(),
                "entry {j}: simulated sparse {} vs sequential {}",
                report.memory.float(j),
                xj
            );
        }
        assert_eq!(report.contention.iterations(), t);
    }

    #[test]
    fn sparse_mode_declares_o_delta_ops_per_iteration() {
        // Dense: d reads + 1 write per iteration; sparse: 1 read + 1 write.
        // The step counts must reflect the d/Δ gap.
        use asgd_oracle::SparseQuadratic;
        let d = 32;
        let oracle = Arc::new(SparseQuadratic::uniform(d, 1.0, 0.0).unwrap());
        let steps = |sparse: bool| {
            Engine::builder()
                .memory(Memory::with_model(&vec![1.0; d], 1))
                .process(EpochSgdProcess::new(
                    Arc::clone(&oracle),
                    EpochSgdConfig::simple(0.01, 50).sparse(sparse),
                ))
                .scheduler(SerialScheduler::new())
                .seed(5)
                .build()
                .run()
                .steps
        };
        let dense = steps(false);
        let sparse = steps(true);
        assert!(
            sparse * 4 < dense,
            "sparse ops must be far fewer: {sparse} vs dense {dense}"
        );
    }

    #[test]
    fn sparse_flag_is_inert_for_dense_oracles() {
        // NoisyQuadratic has no two-phase decomposition: sparse(true) must
        // leave the execution identical to the dense run, fingerprint
        // included.
        let oracle = quad(2, 0.4);
        let fp = |sparse: bool| {
            Engine::builder()
                .memory(Memory::new(2, 1))
                .process(EpochSgdProcess::new(
                    Arc::clone(&oracle),
                    EpochSgdConfig::simple(0.05, 40).sparse(sparse),
                ))
                .process(EpochSgdProcess::new(
                    Arc::clone(&oracle),
                    EpochSgdConfig::simple(0.05, 40).sparse(sparse),
                ))
                .scheduler(RandomScheduler::new(3))
                .seed(7)
                .build()
                .run()
                .fingerprint
        };
        assert_eq!(fp(false), fp(true));
    }

    #[test]
    fn describe_mentions_parameters() {
        let oracle = quad(1, 0.0);
        let p = EpochSgdProcess::new(oracle, EpochSgdConfig::simple(0.25, 10));
        let s = p.describe();
        assert!(s.contains("0.25") && s.contains("noisy-quadratic"));
        assert_eq!(p.completed(), 0);
    }
}
