//! **§8(b)** — the lower- and upper-bound preconditions are complementary.
//!
//! Paper claim: the delay `τ ≥ log(α/2)/log(1−α)` the lower-bound adversary
//! needs is incompatible with the upper bound's requirement
//! `2α²HLM√d·√(τn) < 1` — there is no parameter point where SGD both
//! provably stalls and provably converges fast.

use crate::ExperimentOutput;
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::GradientOracle;
use asgd_theory::regimes::{classify, preconditions_incompatible, Regime};

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("regimes");
    let oracle = super::quad(4, 0.5);
    let consts = oracle.constants(2.0);
    let eps = 0.04;
    let (n, d) = (4, 4);
    let alphas: &[f64] = if quick {
        &[0.0005, 0.005, 0.05]
    } else {
        &[0.0001, 0.0005, 0.002, 0.005, 0.02, 0.05, 0.2]
    };
    let taus: &[u64] = if quick {
        &[4, 256, 65_536]
    } else {
        &[4, 64, 1024, 16_384, 262_144, 4_194_304]
    };

    let mut table = Table::new(
        "§8(b): regime map — Theorem 6.5 precondition α²HLMC√d vs Theorem 5.1 delay τ*(α)",
        &[
            "alpha",
            "tau",
            "upper precond (<1 ⇒ T6.5)",
            "τ*(α) (≤τ ⇒ T5.1)",
            "regime",
        ],
    );
    let mut overlap_free = true;
    for &alpha in alphas {
        for &tau in taus {
            let p = classify(alpha, &consts, eps, tau, n, d);
            overlap_free &= preconditions_incompatible(alpha, &consts, eps, tau, n, d);
            table.row(&[
                fmt_f(alpha),
                tau.to_string(),
                fmt_f(p.upper_precondition),
                p.required_delay.to_string(),
                match p.regime {
                    Regime::UpperBoundApplies => "upper (fast)".to_string(),
                    Regime::LowerBoundApplies => "lower (stall)".to_string(),
                    Regime::Neither => "neither".to_string(),
                },
            ]);
        }
    }
    out.tables.push(table);
    out.notes.push(format!(
        "no parameter point satisfies both preconditions (paper §8 complementarity): {overlap_free}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_overlap_anywhere() {
        let out = run(true);
        assert!(out.notes[0].ends_with("true"), "{}", out.notes[0]);
    }

    #[test]
    fn both_regimes_appear_in_the_map() {
        let out = run(true);
        let rendered = out.tables[0].render();
        assert!(rendered.contains("upper (fast)"), "map: {rendered}");
        assert!(rendered.contains("lower (stall)"), "map: {rendered}");
    }
}
