//! The validation subsystem's contract: theory-derived grids run end to
//! end, verdicts hold where the paper says they must, bad configurations
//! surface as errors (never panics), and `ValidationReport` JSON
//! round-trips exactly — including the committed `BENCH_validation.json`.

use asyncsgd::prelude::*;
use proptest::prelude::*;

fn quick_plan() -> ValidationPlan {
    ValidationPlan::new(OracleSpec::new("noisy-quadratic", 2).sigma(0.5))
        .backends(vec![BackendKind::Sequential, BackendKind::Hogwild])
        .thread_counts(vec![1, 2])
        .eps_grid(vec![0.04])
        .trials(6)
}

#[test]
fn sequential_and_hogwild_bounds_hold_on_a_quick_grid() {
    // The acceptance bar of the harness: the Eq. 13 bound must dominate the
    // measured hitting-failure probability on the paper's baseline and on
    // the native lock-free runtime.
    let report = validate(&quick_plan()).expect("valid plan");
    assert_eq!(report.cells.len(), 4);
    for cell in &report.cells {
        assert_eq!(cell.criterion, "hitting");
        assert!(
            cell.consistent_with_upper_bound,
            "{} n={}: measured {} (CI ≥ {}) vs bound {}",
            cell.backend, cell.threads, cell.measured, cell.ci_lower, cell.bound
        );
    }
    assert!(report.all_consistent());
}

#[test]
fn measured_reports_round_trip_json_exactly() {
    let report = validate(&quick_plan()).expect("valid plan");
    let back = ValidationReport::from_json(&report.to_json()).expect("decodes");
    assert_eq!(back, report);
    let back = ValidationReport::from_json(&report.to_json_pretty()).expect("decodes");
    assert_eq!(back, report);
}

#[test]
fn committed_bench_grid_parses_and_every_verdict_holds() {
    // BENCH_validation.json is a committed artifact: it must stay decodable
    // by the current codec and keep the headline property the README
    // advertises (sequential and hogwild rows included).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_validation.json");
    let text = std::fs::read_to_string(path).expect("BENCH_validation.json is committed");
    let report = ValidationReport::from_json(&text).expect("committed grid decodes");
    assert!(
        report.all_consistent(),
        "committed grid has a failed verdict"
    );
    for backend in ["sequential", "hogwild"] {
        let rows: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.backend == backend)
            .collect();
        assert!(
            !rows.is_empty(),
            "{backend} missing from the committed grid"
        );
        assert!(
            rows.iter().all(|c| c.consistent_with_upper_bound),
            "{backend} has an inconsistent committed cell"
        );
    }
    // The grid spans thread counts and ε values (backend × n × ε).
    let mut ns: Vec<usize> = report.cells.iter().map(|c| c.threads).collect();
    ns.sort_unstable();
    ns.dedup();
    assert!(ns.len() >= 2, "grid sweeps n");
    let mut epss: Vec<u64> = report.cells.iter().map(|c| c.eps.to_bits()).collect();
    epss.sort_unstable();
    epss.dedup();
    assert!(epss.len() >= 2, "grid sweeps eps");
    // Round-trip the committed bytes' decoded form exactly.
    assert_eq!(
        ValidationReport::from_json(&report.to_json()).unwrap(),
        report
    );
}

#[test]
fn unstable_override_is_an_error_not_a_worker_panic() {
    let plan = quick_plan().alpha(10.0);
    match validate(&plan) {
        Err(DriverError::InvalidSpec(msg)) => {
            assert!(msg.contains("stability limit"), "{msg}");
        }
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
}

#[test]
fn validation_runs_on_registry_oracles_beyond_the_quadratic() {
    // The derivation anchors x₀ to each oracle's own minimizer, so the
    // harness is not quadratic-specific.
    let plan = ValidationPlan::new(OracleSpec::new("sparse-quadratic", 4).sigma(0.2))
        .backends(vec![BackendKind::Sequential])
        .thread_counts(vec![2])
        .eps_grid(vec![0.04])
        .trials(4);
    let report = validate(&plan).expect("valid plan");
    assert_eq!(report.oracle, "sparse-quadratic");
    assert!((report.x0_dist_sq - 1.0).abs() < 1e-9);
    assert!(report.all_consistent());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Registry-wide codec property in the `RunReport` proptest style: a
    /// report carrying one cell per backend kind (both criteria, optional
    /// epoch fields, full-range integers, awkward floats) survives the JSON
    /// round trip bit for bit.
    #[test]
    fn validation_reports_round_trip_for_every_backend_kind(
        seed in 0_u64..u64::MAX,
        trials in 1_u64..10_000,
        eps in 1e-9_f64..10.0,
        alpha in 1e-12_f64..1.0,
        bound in 0.0_f64..1e6,
        measured in 0.0_f64..1.0,
        horizon in 1_u64..u64::MAX,
        halving in 0_u64..64,
    ) {
        let cells: Vec<ValidationCell> = BackendKind::all()
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let terminal = i % 2 == 0;
                ValidationCell {
                    backend: kind.name().to_string(),
                    criterion: if terminal { "terminal" } else { "hitting" }.to_string(),
                    threads: i + 1,
                    eps: eps / (i + 1) as f64,
                    tau_max: seed.rotate_left(i as u32),
                    alpha,
                    horizon,
                    halving_epochs: terminal.then_some(halving),
                    total_iterations: horizon.saturating_mul(halving + 1),
                    trials,
                    failures: trials.min(i as u64),
                    measured,
                    ci_lower: measured * 0.5,
                    ci_upper: (measured * 1.5).min(1.0),
                    bound,
                    consistent_with_upper_bound: bound >= measured * 0.5,
                }
            })
            .collect();
        let report = ValidationReport {
            oracle: "noisy-quadratic".to_string(),
            dim: 3,
            sigma: 0.1 + measured,
            theta: 1.0,
            target: 0.5,
            radius: 2.0,
            x0_dist_sq: eps + f64::EPSILON,
            trials,
            seed,
            cells,
        };
        let back = ValidationReport::from_json(&report.to_json()).expect("decodes");
        prop_assert_eq!(&back, &report, "compact round trip");
        let back = ValidationReport::from_json(&report.to_json_pretty()).expect("decodes");
        prop_assert_eq!(&back, &report, "pretty round trip");
    }
}
