//! Algorithm 2 — `FullSGD`: iterated epochs with halving learning rate and
//! epoch-guarded updates.
//!
//! The paper (§7): run a series of `EpochSGD` epochs, halving `α` between
//! them; require that "a gradient update can only be applied to X in the
//! same epoch when it was generated", enforced "either by … DCAS, or by
//! having a distinct model allocated for each epoch"; in the last epoch,
//! additionally accumulate each thread's applied updates locally and collect
//! the entrywise sum `r`.
//!
//! DCAS does not exist on commodity hardware, so this implementation uses
//! the paper's own second option — **a distinct model array per epoch**:
//!
//! * epoch `e`'s model lives in float registers `[e·d, (e+1)·d)`;
//! * the first thread to reach epoch `e ≥ 1` wins an init CAS on a guard
//!   counter and copies epoch `e−1`'s current value into epoch `e`'s region
//!   (late writes by epoch-`e−1` stragglers are *dropped* for the new epoch —
//!   exactly the property the DCAS guard enforces);
//! * other threads arriving early spin on the guard until it reads "ready"
//!   (lock-free: the initializer cannot be blocked by the spinners);
//! * on the **final** epoch, the initializer also snapshots the epoch-start
//!   model, and every thread publishes its locally accumulated updates into
//!   a shared `Acc` region after its last claim, so the harness can collect
//!   `r = x_epoch_start + Σᵢ Acc[i]` (Algorithm 2, lines 8–9).

use crate::lockfree::{EpochSgdConfig, EpochSgdProcess};
use crate::monitor::HittingMonitor;
use asgd_oracle::GradientOracle;
use asgd_shmem::engine::{Engine, ExecutionReport, StopReason};
use asgd_shmem::memory::Memory;
use asgd_shmem::op::{Action, MemOp, OpResult};
use asgd_shmem::process::{Process, ProcessCtx};
use asgd_shmem::sched::Scheduler;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Hyper-parameters of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullSgdConfig {
    /// Initial learning rate `α₀`.
    pub alpha0: f64,
    /// Iterations per epoch `T`.
    pub epoch_iterations: u64,
    /// Number of halving epochs before the final accumulating epoch
    /// (Algorithm 2's loop bound `log(α·2Mn/√ε)`; use
    /// `asgd_theory::corollary_7_1::epoch_count` to derive it).
    pub halving_epochs: usize,
}

impl FullSgdConfig {
    /// Total number of epochs including the final accumulating one.
    #[must_use]
    pub fn total_epochs(&self) -> usize {
        self.halving_epochs + 1
    }

    /// Learning rate of epoch `e` (0-based): `α₀ / 2^e`.
    #[must_use]
    pub fn alpha_at(&self, e: usize) -> f64 {
        self.alpha0 / (1u64 << e.min(63)) as f64
    }
}

/// Shared-memory layout used by the Algorithm-2 processes.
///
/// Float registers: `total_epochs` model regions of `d`, then a snapshot
/// region of `d` (epoch-start model of the final epoch), then the shared
/// `Acc` region of `d`. Counter registers: one claim counter per epoch, then
/// one init guard per epoch (guard values: 0 = uninitialised,
/// 1 = initialising, 2 = ready).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullSgdLayout {
    /// Model dimension.
    pub d: usize,
    /// Total epochs (halving + final).
    pub total_epochs: usize,
}

impl FullSgdLayout {
    /// First float register of epoch `e`'s model.
    #[must_use]
    pub fn model_region(&self, e: usize) -> usize {
        e * self.d
    }

    /// First float register of the final-epoch snapshot.
    #[must_use]
    pub fn snapshot_base(&self) -> usize {
        self.total_epochs * self.d
    }

    /// First float register of the shared `Acc` region.
    #[must_use]
    pub fn acc_base(&self) -> usize {
        (self.total_epochs + 1) * self.d
    }

    /// Number of float registers required.
    #[must_use]
    pub fn float_regs(&self) -> usize {
        (self.total_epochs + 2) * self.d
    }

    /// Claim counter register of epoch `e`.
    #[must_use]
    pub fn claim_counter(&self, e: usize) -> usize {
        e
    }

    /// Init-guard counter register of epoch `e`.
    #[must_use]
    pub fn guard_counter(&self, e: usize) -> usize {
        self.total_epochs + e
    }

    /// Number of counter registers required.
    #[must_use]
    pub fn counter_regs(&self) -> usize {
        2 * self.total_epochs
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FPhase {
    /// Begin epoch `self.epoch` (decide init path).
    Enter,
    CasGuard,
    AwaitCas,
    WaitGuard,
    AwaitWaitGuard,
    CopyRead {
        j: usize,
    },
    AwaitCopyRead {
        j: usize,
    },
    CopyWriteModel {
        j: usize,
    },
    AwaitCopyWriteModel {
        j: usize,
    },
    CopyWriteSnap {
        j: usize,
    },
    AwaitCopyWriteSnap {
        j: usize,
    },
    MarkReady,
    AwaitMarkReady,
    Running,
}

/// The Algorithm-2 state machine for one simulated thread.
pub struct FullSgdProcess<O: GradientOracle + Clone> {
    oracle: O,
    cfg: FullSgdConfig,
    layout: FullSgdLayout,
    epoch: usize,
    phase: FPhase,
    inner: Option<EpochSgdProcess<O>>,
    copy_value: f64,
}

impl<O: GradientOracle + Clone> FullSgdProcess<O> {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `α₀` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, cfg: FullSgdConfig) -> Self {
        assert!(
            cfg.alpha0.is_finite() && cfg.alpha0 > 0.0,
            "alpha0 must be positive"
        );
        let layout = FullSgdLayout {
            d: oracle.dimension(),
            total_epochs: cfg.total_epochs(),
        };
        Self {
            oracle,
            cfg,
            layout,
            epoch: 0,
            phase: FPhase::Enter,
            inner: None,
            copy_value: 0.0,
        }
    }

    /// The shared-memory layout this process assumes.
    #[must_use]
    pub fn layout(&self) -> FullSgdLayout {
        self.layout
    }

    fn make_inner(&self) -> EpochSgdProcess<O> {
        let last = self.epoch + 1 == self.layout.total_epochs;
        EpochSgdProcess::new(
            self.oracle.clone(),
            EpochSgdConfig {
                alpha: self.cfg.alpha_at(self.epoch),
                iterations: self.cfg.epoch_iterations,
                counter_idx: self.layout.claim_counter(self.epoch),
                model_base: self.layout.model_region(self.epoch),
                acc_base: last.then(|| self.layout.acc_base()),
                sparse: false,
            },
        )
    }

    fn is_final_epoch(&self) -> bool {
        self.epoch + 1 == self.layout.total_epochs
    }
}

impl<O: GradientOracle + Clone> Process for FullSgdProcess<O> {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_>) -> Action {
        let d = self.layout.d;
        loop {
            match self.phase {
                FPhase::Enter => {
                    if self.epoch == 0 {
                        // Epoch 0's model region is pre-seeded with x₀ by the
                        // harness; no init protocol needed.
                        self.inner = Some(self.make_inner());
                        self.phase = FPhase::Running;
                    } else {
                        self.phase = FPhase::CasGuard;
                    }
                }
                FPhase::CasGuard => {
                    self.phase = FPhase::AwaitCas;
                    return Action::op(MemOp::CasU64 {
                        idx: self.layout.guard_counter(self.epoch),
                        expected: 0,
                        new: 1,
                    });
                }
                FPhase::AwaitCas => match ctx.last.expect("CAS result must be delivered") {
                    OpResult::CasU64 { success: true, .. } => {
                        self.phase = FPhase::CopyRead { j: 0 };
                    }
                    OpResult::CasU64 {
                        success: false,
                        observed,
                    } => {
                        if observed >= 2 {
                            self.inner = Some(self.make_inner());
                            self.phase = FPhase::Running;
                        } else {
                            self.phase = FPhase::WaitGuard;
                        }
                    }
                    other => panic!("expected CasU64 result, got {other:?}"),
                },
                FPhase::WaitGuard => {
                    self.phase = FPhase::AwaitWaitGuard;
                    return Action::op(MemOp::ReadU64 {
                        idx: self.layout.guard_counter(self.epoch),
                    });
                }
                FPhase::AwaitWaitGuard => {
                    let v = ctx.last.expect("guard read must be delivered").unwrap_u64();
                    if v >= 2 {
                        self.inner = Some(self.make_inner());
                        self.phase = FPhase::Running;
                    } else {
                        // Spin: each probe costs a shared-memory step, so the
                        // adversary fully controls how long we wait.
                        self.phase = FPhase::WaitGuard;
                    }
                }
                FPhase::CopyRead { j } => {
                    self.phase = FPhase::AwaitCopyRead { j };
                    return Action::op(MemOp::ReadF64 {
                        idx: self.layout.model_region(self.epoch - 1) + j,
                    });
                }
                FPhase::AwaitCopyRead { j } => {
                    self.copy_value = ctx.last.expect("copy read must be delivered").unwrap_f64();
                    self.phase = FPhase::CopyWriteModel { j };
                }
                FPhase::CopyWriteModel { j } => {
                    self.phase = FPhase::AwaitCopyWriteModel { j };
                    return Action::op(MemOp::WriteF64 {
                        idx: self.layout.model_region(self.epoch) + j,
                        value: self.copy_value,
                    });
                }
                FPhase::AwaitCopyWriteModel { j } => {
                    if self.is_final_epoch() {
                        self.phase = FPhase::CopyWriteSnap { j };
                    } else if j + 1 < d {
                        self.phase = FPhase::CopyRead { j: j + 1 };
                    } else {
                        self.phase = FPhase::MarkReady;
                    }
                }
                FPhase::CopyWriteSnap { j } => {
                    self.phase = FPhase::AwaitCopyWriteSnap { j };
                    return Action::op(MemOp::WriteF64 {
                        idx: self.layout.snapshot_base() + j,
                        value: self.copy_value,
                    });
                }
                FPhase::AwaitCopyWriteSnap { j } => {
                    if j + 1 < d {
                        self.phase = FPhase::CopyRead { j: j + 1 };
                    } else {
                        self.phase = FPhase::MarkReady;
                    }
                }
                FPhase::MarkReady => {
                    self.phase = FPhase::AwaitMarkReady;
                    return Action::op(MemOp::WriteU64 {
                        idx: self.layout.guard_counter(self.epoch),
                        value: 2,
                    });
                }
                FPhase::AwaitMarkReady => {
                    self.inner = Some(self.make_inner());
                    self.phase = FPhase::Running;
                }
                FPhase::Running => {
                    let inner = self.inner.as_mut().expect("inner epoch process exists");
                    match inner.poll(ctx) {
                        Action::Halt => {
                            self.inner = None;
                            if self.is_final_epoch() {
                                return Action::Halt;
                            }
                            self.epoch += 1;
                            self.phase = FPhase::Enter;
                            // ctx.last was consumed by the inner machine; the
                            // next outer op starts fresh.
                            ctx.last = None;
                        }
                        action => return action,
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "full-sgd(alpha0={}, T={}, epochs={})",
            self.cfg.alpha0, self.cfg.epoch_iterations, self.layout.total_epochs
        )
    }
}

/// Outcome of a simulated Algorithm-2 run.
#[derive(Debug)]
pub struct FullSgdReport {
    /// The collected result `r = x_epoch_start + Σᵢ Acc[i]` (Alg. 2 line 9).
    pub r: Vec<f64>,
    /// Final contents of the last epoch's model region (should equal `r` up
    /// to floating-point summation order).
    pub final_model: Vec<f64>,
    /// `‖r − x*‖` (the quantity bounded by Corollary 7.1).
    pub dist_to_opt: f64,
    /// Underlying execution report.
    pub execution: ExecutionReport,
    /// Layout used (for inspecting epoch regions post-run).
    pub layout: FullSgdLayout,
}

/// Strided trajectory sampler: `f(t, ‖x_t − x*‖²)` over the §6.1 ordered
/// accumulator sequence.
pub type ProgressFn = Box<dyn FnMut(u64, f64)>;

/// Session options for [`run_simulated_session`]: a cooperative stop flag
/// and a strided trajectory sampler, both optional. [`run_simulated`] is the
/// equivalent with neither.
#[derive(Default)]
pub struct SimSession {
    /// Checked by the engine before every simulated step; once raised, the
    /// run ends with [`asgd_shmem::StopReason::Cancelled`].
    pub stop_flag: Option<Arc<AtomicBool>>,
    /// `(stride, f)`: `f(t, ‖x_t − x*‖²)` fires for `t = 0` (`x₀`) and every
    /// ordered iteration count `t` that is a multiple of `stride`, where
    /// `x_t` is the §6.1 accumulator folded over *all* epochs' model writes
    /// (epoch transitions drop late writes from the shared model, but the
    /// accumulator, like the paper's, keeps every ordered update).
    pub progress: Option<(u64, ProgressFn)>,
}

impl std::fmt::Debug for SimSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("stop_flag", &self.stop_flag.is_some())
            .field(
                "progress",
                &self.progress.as_ref().map(|(stride, _)| stride),
            )
            .finish()
    }
}

/// Runs Algorithm 2 in the simulator with `n` threads.
///
/// # Panics
///
/// Panics if `x0`'s dimension differs from the oracle's.
#[must_use]
pub fn run_simulated<O: GradientOracle + Clone + 'static>(
    oracle: O,
    cfg: FullSgdConfig,
    n: usize,
    x0: &[f64],
    scheduler: impl Scheduler + 'static,
    seed: u64,
    max_steps: Option<u64>,
) -> FullSgdReport {
    run_simulated_session(
        oracle,
        cfg,
        n,
        x0,
        scheduler,
        seed,
        max_steps,
        SimSession::default(),
    )
}

/// Like [`run_simulated`], with a [`SimSession`] for cancellation and
/// trajectory sampling.
///
/// # Panics
///
/// Panics if `x0`'s dimension differs from the oracle's.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors run_simulated + the session
pub fn run_simulated_session<O: GradientOracle + Clone + 'static>(
    oracle: O,
    cfg: FullSgdConfig,
    n: usize,
    x0: &[f64],
    scheduler: impl Scheduler + 'static,
    seed: u64,
    max_steps: Option<u64>,
    session: SimSession,
) -> FullSgdReport {
    let d = oracle.dimension();
    assert_eq!(x0.len(), d, "x0 dimension mismatch");
    let layout = FullSgdLayout {
        d,
        total_epochs: cfg.total_epochs(),
    };
    let mut floats = vec![0.0; layout.float_regs()];
    floats[..d].copy_from_slice(x0);
    let memory = Memory::with_model(&floats, layout.counter_regs());

    let mut builder = Engine::builder()
        .memory(memory)
        .scheduler(scheduler)
        .seed(seed);
    if let Some(steps) = max_steps {
        builder = builder.max_steps(steps);
    }
    if let Some(flag) = session.stop_flag {
        builder = builder.stop_flag(flag);
    }
    if let Some((stride, mut f)) = session.progress {
        // ModelWrite tags carry model-relative entries in every epoch
        // region, so one monitor folds the cross-epoch accumulator.
        f(0, asgd_math::vec::l2_dist_sq(x0, oracle.minimizer()));
        let monitor =
            HittingMonitor::new(n, x0.to_vec(), oracle.minimizer().to_vec(), f64::INFINITY)
                .on_sample(stride, f)
                .shared();
        builder = builder.observer(move |ev| monitor.borrow_mut().observe(ev));
    }
    for _ in 0..n {
        builder = builder.process(FullSgdProcess::new(oracle.clone(), cfg));
    }
    let execution = builder.build().run();

    // A cancelled run's processes never reach their Acc-publish phase (and
    // may not have initialised the final epoch at all), leaving the
    // snapshot/Acc regions stale or zero; report the deepest epoch whose
    // init guard reads "ready" instead, so cancelled reports describe real
    // partial progress (mirrors the native executor).
    let live_epoch = (0..layout.total_epochs)
        .rev()
        .find(|&e| e == 0 || execution.memory.counter(layout.guard_counter(e)) == 2)
        .unwrap_or(0);
    let (r, final_model) = if execution.stop == StopReason::Cancelled {
        let base = layout.model_region(live_epoch);
        let live = execution.memory.floats()[base..base + d].to_vec();
        (live.clone(), live)
    } else {
        let snapshot: Vec<f64> = if cfg.halving_epochs == 0 {
            // The final epoch is epoch 0: its start state is x₀ itself.
            x0.to_vec()
        } else {
            let base = layout.snapshot_base();
            execution.memory.floats()[base..base + d].to_vec()
        };
        let acc_base = layout.acc_base();
        let acc = &execution.memory.floats()[acc_base..acc_base + d];
        let r: Vec<f64> = snapshot.iter().zip(acc).map(|(s, a)| s + a).collect();
        let last_base = layout.model_region(layout.total_epochs - 1);
        (
            r,
            execution.memory.floats()[last_base..last_base + d].to_vec(),
        )
    };
    let dist_to_opt = asgd_math::vec::l2_dist(&r, oracle.minimizer());
    FullSgdReport {
        r,
        final_model,
        dist_to_opt,
        execution,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::NoisyQuadratic;
    use asgd_shmem::sched::{RandomScheduler, SerialScheduler, StepRoundRobin};
    use asgd_shmem::StopReason;
    use std::sync::Arc;

    fn quad(d: usize, sigma: f64) -> Arc<NoisyQuadratic> {
        Arc::new(NoisyQuadratic::new(d, sigma).unwrap())
    }

    #[test]
    fn layout_regions_are_disjoint_and_sized() {
        let l = FullSgdLayout {
            d: 3,
            total_epochs: 4,
        };
        assert_eq!(l.model_region(0), 0);
        assert_eq!(l.model_region(3), 9);
        assert_eq!(l.snapshot_base(), 12);
        assert_eq!(l.acc_base(), 15);
        assert_eq!(l.float_regs(), 18);
        assert_eq!(l.claim_counter(2), 2);
        assert_eq!(l.guard_counter(0), 4);
        assert_eq!(l.counter_regs(), 8);
    }

    #[test]
    fn config_alpha_halves_per_epoch() {
        let cfg = FullSgdConfig {
            alpha0: 0.8,
            epoch_iterations: 10,
            halving_epochs: 3,
        };
        assert_eq!(cfg.total_epochs(), 4);
        assert_eq!(cfg.alpha_at(0), 0.8);
        assert_eq!(cfg.alpha_at(1), 0.4);
        assert_eq!(cfg.alpha_at(3), 0.1);
    }

    #[test]
    fn r_equals_final_model() {
        // Snapshot + Acc must reconstruct the final epoch's model exactly
        // (same additions, different order ⇒ tiny fp tolerance).
        let oracle = quad(2, 0.5);
        let cfg = FullSgdConfig {
            alpha0: 0.2,
            epoch_iterations: 50,
            halving_epochs: 2,
        };
        let report = run_simulated(
            Arc::clone(&oracle),
            cfg,
            3,
            &[1.0, -1.0],
            RandomScheduler::new(8),
            42,
            None,
        );
        assert_eq!(report.execution.stop, StopReason::AllDone);
        for j in 0..2 {
            assert!(
                (report.r[j] - report.final_model[j]).abs() < 1e-9,
                "entry {j}: r={} model={}",
                report.r[j],
                report.final_model[j]
            );
        }
    }

    #[test]
    fn full_sgd_converges_below_single_epoch_floor() {
        // With noise, a fixed large α stalls at a noise floor ∝ α; halving
        // α across epochs must land closer than the first epoch alone.
        // Single-seed endpoints of the α = 0.5 run are noise-dominated, so
        // compare means over independent seeds.
        let oracle = quad(1, 1.0);
        let seeds = [3_u64, 7, 11, 19, 23];
        let mean_dist = |halving_epochs: usize| -> f64 {
            seeds
                .iter()
                .map(|&seed| {
                    run_simulated(
                        Arc::clone(&oracle),
                        FullSgdConfig {
                            alpha0: 0.5,
                            epoch_iterations: 400,
                            halving_epochs,
                        },
                        2,
                        &[4.0],
                        RandomScheduler::new(seed),
                        seed,
                        None,
                    )
                    .dist_to_opt
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let one_epoch = mean_dist(0);
        let many_epochs = mean_dist(5);
        assert!(
            many_epochs < one_epoch,
            "halving: {many_epochs} vs single epoch: {one_epoch}"
        );
        assert!(many_epochs < 0.2, "final mean dist {many_epochs}");
    }

    #[test]
    fn serial_scheduler_runs_epochs_back_to_back() {
        let oracle = quad(2, 0.0);
        let report = run_simulated(
            Arc::clone(&oracle),
            FullSgdConfig {
                alpha0: 0.4,
                epoch_iterations: 30,
                halving_epochs: 2,
            },
            2,
            &[1.0, 1.0],
            SerialScheduler::new(),
            1,
            None,
        );
        assert_eq!(report.execution.stop, StopReason::AllDone);
        // Noiseless: r must contract towards 0 substantially.
        assert!(report.dist_to_opt < 1e-3, "dist {}", report.dist_to_opt);
        // All three claim counters exhausted: T + n each.
        for e in 0..3 {
            assert_eq!(report.execution.memory.counter(e), 32);
        }
        // Guards of epochs 1, 2 marked ready.
        assert_eq!(
            report
                .execution
                .memory
                .counter(report.layout.guard_counter(1)),
            2
        );
        assert_eq!(
            report
                .execution
                .memory
                .counter(report.layout.guard_counter(2)),
            2
        );
    }

    #[test]
    fn interleaved_epoch_transitions_are_safe() {
        // Round-robin forces threads to hit the guard protocol concurrently.
        let oracle = quad(3, 0.2);
        let report = run_simulated(
            Arc::clone(&oracle),
            FullSgdConfig {
                alpha0: 0.3,
                epoch_iterations: 40,
                halving_epochs: 3,
            },
            4,
            &[1.0, -1.0, 0.5],
            StepRoundRobin::new(),
            11,
            None,
        );
        assert_eq!(report.execution.stop, StopReason::AllDone);
        for j in 0..3 {
            assert!(
                (report.r[j] - report.final_model[j]).abs() < 1e-9,
                "entry {j} mismatch under interleaving"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let oracle = quad(2, 0.7);
        let cfg = FullSgdConfig {
            alpha0: 0.25,
            epoch_iterations: 25,
            halving_epochs: 2,
        };
        let a = run_simulated(
            Arc::clone(&oracle),
            cfg,
            3,
            &[1.0, 2.0],
            RandomScheduler::new(9),
            5,
            None,
        );
        let b = run_simulated(
            Arc::clone(&oracle),
            cfg,
            3,
            &[1.0, 2.0],
            RandomScheduler::new(9),
            5,
            None,
        );
        assert_eq!(a.execution.fingerprint, b.execution.fingerprint);
        assert_eq!(a.r, b.r);
    }

    #[test]
    fn describe_reports_epochs() {
        let oracle = quad(1, 0.0);
        let p = FullSgdProcess::new(
            oracle,
            FullSgdConfig {
                alpha0: 0.5,
                epoch_iterations: 10,
                halving_epochs: 2,
            },
        );
        assert!(p.describe().contains("epochs=3"));
        assert_eq!(p.layout().total_epochs, 3);
    }
}
