//! The §5 lower-bound workload: `f(x) = ½‖x‖²` with Gaussian gradient noise.

use crate::constants::Constants;
use crate::oracle::GradientOracle;
use asgd_math::gaussian::standard_normal;
use rand::RngCore;

/// Strongly convex quadratic `f(x) = ½‖x‖²` with stochastic gradients
/// `g̃(x) = x − ũ`, `ũ ~ N(0, σ²·I)` — exactly the construction §5 of the
/// paper uses to prove the `Ω(τ)` slowdown lower bound.
///
/// Constants (§3): `c = 1` (exact), `L = 1` (exact, under common random
/// numbers `g̃(x) − g̃(y) = x − y`), and `E‖g̃(x)‖² = ‖x‖² + d·σ²`, so within
/// radius `R` of the optimum `M² = R² + d·σ²` (tight).
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyQuadratic {
    d: usize,
    sigma: f64,
    minimizer: Vec<f64>,
}

/// Error returned when constructing a workload with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWorkloadError(pub &'static str);

impl std::fmt::Display for InvalidWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid workload parameter: {}", self.0)
    }
}

impl std::error::Error for InvalidWorkloadError {}

impl NoisyQuadratic {
    /// Creates the workload in dimension `d` with noise level `sigma ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `d == 0` or `sigma` is negative/non-finite.
    pub fn new(d: usize, sigma: f64) -> Result<Self, InvalidWorkloadError> {
        if d == 0 {
            return Err(InvalidWorkloadError("dimension must be at least 1"));
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidWorkloadError("sigma must be finite and >= 0"));
        }
        Ok(Self {
            d,
            sigma,
            minimizer: vec![0.0; d],
        })
    }

    /// The noise level σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl GradientOracle for NoisyQuadratic {
    fn dimension(&self) -> usize {
        self.d
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        assert_eq!(x.len(), self.d, "x dimension mismatch");
        assert_eq!(out.len(), self.d, "out dimension mismatch");
        for (o, xi) in out.iter_mut().zip(x) {
            let noise = if self.sigma > 0.0 {
                self.sigma * standard_normal(rng)
            } else {
                0.0
            };
            *o = xi - noise;
        }
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.d, "x dimension mismatch");
        out.copy_from_slice(x);
    }

    fn objective(&self, x: &[f64]) -> f64 {
        0.5 * asgd_math::vec::l2_norm_sq(x)
    }

    fn minimizer(&self) -> &[f64] {
        &self.minimizer
    }

    fn constants(&self, radius: f64) -> Constants {
        assert!(radius > 0.0, "radius must be positive");
        Constants::new(
            1.0,
            1.0,
            radius * radius + self.d as f64 * self.sigma * self.sigma,
            radius,
        )
    }

    fn name(&self) -> &str {
        "noisy-quadratic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::unbiasedness_gap;
    use asgd_math::OnlineStats;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(NoisyQuadratic::new(0, 1.0).is_err());
        assert!(NoisyQuadratic::new(2, -1.0).is_err());
        assert!(NoisyQuadratic::new(2, f64::NAN).is_err());
        let e = NoisyQuadratic::new(0, 1.0).unwrap_err();
        assert!(e.to_string().contains("dimension"));
    }

    #[test]
    fn noiseless_gradient_is_exact() {
        let o = NoisyQuadratic::new(3, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = [1.0, -2.0, 3.0];
        let mut g = vec![0.0; 3];
        o.sample_gradient(&x, &mut rng, &mut g);
        assert_eq!(g, vec![1.0, -2.0, 3.0]);
        assert_eq!(o.sigma(), 0.0);
    }

    #[test]
    fn objective_and_minimizer() {
        let o = NoisyQuadratic::new(2, 0.5).unwrap();
        assert_eq!(o.objective(&[3.0, 4.0]), 12.5);
        assert_eq!(o.objective(o.minimizer()), 0.0);
        let mut g = vec![9.0; 2];
        o.full_gradient(o.minimizer(), &mut g);
        assert_eq!(g, vec![0.0, 0.0], "gradient vanishes at the minimiser");
    }

    #[test]
    fn gradient_is_unbiased() {
        let o = NoisyQuadratic::new(3, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let gap = unbiasedness_gap(&o, &[0.5, -1.0, 2.0], &mut rng, 60_000);
        assert!(gap < 0.05, "gap {gap}");
    }

    #[test]
    fn second_moment_matches_analytic_value() {
        // E‖g̃(x)‖² = ‖x‖² + d·σ².
        let o = NoisyQuadratic::new(2, 1.5).unwrap();
        let x = [1.0, 2.0];
        let analytic = 5.0 + 2.0 * 2.25;
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = OnlineStats::new();
        let mut g = vec![0.0; 2];
        for _ in 0..60_000 {
            o.sample_gradient(&x, &mut rng, &mut g);
            stats.push(asgd_math::vec::l2_norm_sq(&g));
        }
        assert!(
            (stats.mean() - analytic).abs() / analytic < 0.03,
            "measured {} vs analytic {}",
            stats.mean(),
            analytic
        );
        // And the reported M² at radius ‖x‖ dominates it.
        let k = o.constants(asgd_math::vec::l2_norm(&x));
        assert!(k.m_sq >= analytic * 0.999);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let o = NoisyQuadratic::new(3, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = vec![0.0; 3];
        o.sample_gradient(&[1.0], &mut rng, &mut g);
    }

    proptest! {
        /// Strong convexity holds with c = 1 exactly:
        /// (x−y)ᵀ(∇f(x)−∇f(y)) = ‖x−y‖².
        #[test]
        fn strong_convexity_exact(
            x in proptest::collection::vec(-1e2_f64..1e2, 4),
            y in proptest::collection::vec(-1e2_f64..1e2, 4),
        ) {
            let o = NoisyQuadratic::new(4, 0.0).unwrap();
            let mut gx = vec![0.0; 4];
            let mut gy = vec![0.0; 4];
            o.full_gradient(&x, &mut gx);
            o.full_gradient(&y, &mut gy);
            let diff = asgd_math::vec::sub(&x, &y);
            let gdiff = asgd_math::vec::sub(&gx, &gy);
            let lhs = asgd_math::vec::dot(&diff, &gdiff);
            let rhs = asgd_math::vec::l2_norm_sq(&diff);
            prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0));
        }

        /// M² is monotone in the radius and in σ.
        #[test]
        fn m_sq_monotone(r1 in 0.1_f64..10.0, r2 in 0.1_f64..10.0, s in 0.0_f64..3.0) {
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let o = NoisyQuadratic::new(3, s).unwrap();
            prop_assert!(o.constants(lo).m_sq <= o.constants(hi).m_sq + 1e-12);
        }
    }
}
