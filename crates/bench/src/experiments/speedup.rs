//! **§8(c)** — why asynchronous SGD is fast in practice.
//!
//! Paper claim: up to `n` iterations proceed in parallel, so wall-clock
//! convergence improves by up to `n×` versus serialised execution, and the
//! lock-free algorithm beats coarse-grained locking.
//!
//! Measured: native throughput (iterations/second) of the lock-free Hogwild
//! backend vs the mutex-serialised `locked` backend across thread counts, on
//! a minibatch least-squares workload (compute `O(b·d)` per iteration,
//! shared-memory update `O(d)` — the regime where parallel gradient
//! computation pays; with single-sample gradients the atomic update traffic
//! dominates and *neither* scheme scales, which the table also shows
//! honestly via the `b=1` rows).
//!
//! Spec-driven: one [`RunSpec`] per cell, with only the backend and thread
//! count varying — the head-to-head the unified driver exists for. The
//! sweep executes through [`Driver::run_many`] with a single-worker pool:
//! each spec carries its own seed, so pooled results equal serial
//! `run_spec` calls, and serialising the cells keeps the throughput
//! columns free of cross-cell core contention.

use crate::ExperimentOutput;
use asgd_driver::{BackendKind, Driver, RunSpec};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;

/// One thread-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Minibatch size.
    pub batch: usize,
    /// Thread count.
    pub threads: usize,
    /// Lock-free iterations/second.
    pub lockfree_ips: f64,
    /// Locked-baseline iterations/second.
    pub locked_ips: f64,
    /// Lock-free final `‖x − x*‖²`.
    pub lockfree_dist_sq: f64,
    /// Locked final `‖x − x*‖²`.
    pub locked_dist_sq: f64,
}

/// The sweep's spec list: for each `(batch, threads)` cell, the lock-free
/// spec immediately followed by its locked twin. Public so the acceptance
/// tests can replay exactly this sweep serially and through the pool.
#[must_use]
pub fn specs(quick: bool) -> Vec<RunSpec> {
    let d = 64;
    let threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let batches: &[usize] = if quick { &[64] } else { &[1, 64] };
    let mut specs = Vec::new();
    for &batch in batches {
        let iterations: u64 = if quick {
            10_000
        } else {
            100_000 / (batch as u64).max(1) + 20_000
        };
        let base = RunSpec::new(
            OracleSpec::new("minibatch-regression", d)
                .dataset(2_000)
                .sigma(0.05)
                .batch(batch),
            BackendKind::Hogwild,
        )
        .iterations(iterations)
        .learning_rate(0.002)
        .seed(42);
        for &n in threads {
            let spec = base.clone().threads(n);
            specs.push(spec.clone());
            specs.push(spec.backend(BackendKind::Locked));
        }
    }
    specs
}

/// Runs the sweep through the session driver. The pool is capped at **one**
/// worker: every cell's throughput is the experiment's actual output, and a
/// hogwild cell running concurrently with its locked comparison twin would
/// bias the very ratio the table reports. The sweep still exercises the
/// `run_many` machinery (ordering, per-spec errors), just without timing
/// interference.
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    let specs = specs(quick);
    let reports = Driver::new().workers(1).run_many(&specs);
    specs
        .chunks(2)
        .zip(reports.chunks(2))
        .map(|(pair, outcome)| {
            let lf = outcome[0].as_ref().expect("hogwild spec runs");
            let lk = outcome[1].as_ref().expect("locked spec runs");
            Row {
                batch: pair[0].oracle.batch,
                threads: pair[0].threads,
                lockfree_ips: lf.iterations_per_sec(),
                locked_ips: lk.iterations_per_sec(),
                lockfree_dist_sq: lf.final_dist_sq,
                locked_dist_sq: lk.final_dist_sq,
            }
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("speedup");
    let rows = sweep(quick);
    let mut table = Table::new(
        "§8(c): native throughput — lock-free vs coarse-grained locking (minibatch linreg d=64)",
        &[
            "batch",
            "threads",
            "lock-free it/s",
            "locked it/s",
            "lock-free vs locked",
            "lock-free dist²",
            "locked dist²",
        ],
    );
    for r in &rows {
        table.row(&[
            r.batch.to_string(),
            r.threads.to_string(),
            fmt_f(r.lockfree_ips),
            fmt_f(r.locked_ips),
            fmt_f(r.lockfree_ips / r.locked_ips),
            fmt_f(r.lockfree_dist_sq),
            fmt_f(r.locked_dist_sq),
        ]);
    }
    out.tables.push(table);

    // Per-batch scaling summary for the lock-free executor.
    for &batch in &rows
        .iter()
        .map(|r| r.batch)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let of_batch: Vec<&Row> = rows.iter().filter(|r| r.batch == batch).collect();
        let base = of_batch[0].lockfree_ips;
        let best = of_batch
            .iter()
            .map(|r| r.lockfree_ips)
            .fold(0.0_f64, f64::max);
        out.notes.push(format!(
            "b={batch}: lock-free self-speedup max/1-thread = {:.2}x (hardware parallelism caps this at the core count)",
            best / base
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_is_preserved_across_thread_counts() {
        // Throughput assertions are machine-dependent; what must always hold
        // is that lock-free convergence quality is not destroyed by races.
        for r in sweep(true) {
            assert!(
                r.lockfree_dist_sq < 0.5,
                "b={} n={}: lock-free dist² {}",
                r.batch,
                r.threads,
                r.lockfree_dist_sq
            );
            assert!(r.locked_dist_sq < 0.5);
            assert!(r.lockfree_ips > 0.0 && r.locked_ips > 0.0);
        }
    }
}
