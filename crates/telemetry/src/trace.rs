//! [`TraceSink`] — a structured JSONL span writer for run lifecycle events.
//!
//! Every span is one JSON object per line:
//!
//! ```json
//! {"ts_ns":12345,"run":"model-a","event":"snapshot","version":3,"iteration":4096}
//! ```
//!
//! `ts_ns` is nanoseconds since the sink was created (one monotonic
//! `Instant` origin per sink, so a sink's lines always replay into a
//! monotone timeline); `run` keys spans by run/model id; `event` names the
//! lifecycle event; remaining fields are event-specific. [`replay`] parses
//! the lines back into [`Span`]s for post-hoc timeline reconstruction.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A JSON field value a span can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered via Rust's shortest-exact `Display`).
    F64(f64),
    /// A string (JSON-escaped on write).
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    fn render(&self, out: &mut String) {
        match self {
            Self::U64(v) => out.push_str(&v.to_string()),
            Self::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            // JSON has no inf/NaN literals; encode them as strings.
            Self::F64(v) => out.push_str(&format!("\"{v}\"")),
            Self::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// One parsed trace span (the subset of fields every span carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Nanoseconds since the sink's origin.
    pub ts_ns: u64,
    /// The run/model id the span belongs to.
    pub run: String,
    /// The event name.
    pub event: String,
}

/// A thread-safe JSONL span writer with a single monotonic time origin.
pub struct TraceSink {
    origin: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A sink writing to `out`.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self {
            origin: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// A sink writing (buffered) to the file at `path`, truncating it.
    ///
    /// # Errors
    ///
    /// Whatever `File::create` returns.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// A sink writing to a shared in-memory buffer (tests, smoke modes).
    #[must_use]
    pub fn in_memory() -> (Self, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        (Self::new(Box::new(Shared(Arc::clone(&buf)))), buf)
    }

    /// Writes one span. IO failures are swallowed — tracing must never take
    /// a training run or a serving thread down.
    pub fn emit(&self, run: &str, event: &str, fields: &[(&str, FieldValue)]) {
        let ts_ns = self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut line = String::with_capacity(64);
        line.push_str("{\"ts_ns\":");
        line.push_str(&ts_ns.to_string());
        line.push_str(",\"run\":\"");
        escape_into(run, &mut line);
        line.push_str("\",\"event\":\"");
        escape_into(event, &mut line);
        line.push('"');
        for (k, v) in fields {
            line.push_str(",\"");
            escape_into(k, &mut line);
            line.push_str("\":");
            v.render(&mut line);
        }
        line.push_str("}\n");
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = out.write_all(line.as_bytes());
    }

    /// Flushes the underlying writer (best-effort).
    pub fn flush(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

/// Parses JSONL trace output back into [`Span`]s, in file order. Lines that
/// are not spans (blank, torn tails) are skipped; a span missing any of the
/// three core fields is an error.
///
/// # Errors
///
/// Returns the 1-based line number of the first malformed span line.
pub fn replay(text: &str) -> Result<Vec<Span>, usize> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ts_ns = field_u64(line, "ts_ns").ok_or(i + 1)?;
        let run = field_str(line, "run").ok_or(i + 1)?;
        let event = field_str(line, "event").ok_or(i + 1)?;
        spans.push(Span { ts_ns, run, event });
    }
    Ok(spans)
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(&format!("\"{key}\":\""))? + key.len() + 4;
    let rest = &line[at..];
    // Names we emit never contain escaped quotes, but be robust to them.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_jsonl_and_replayable() {
        let (sink, buf) = TraceSink::in_memory();
        sink.emit("m1", "started", &[("threads", FieldValue::U64(4))]);
        sink.emit(
            "m1",
            "progress",
            &[
                ("dist_sq", FieldValue::F64(0.25)),
                ("note", FieldValue::Str("with \"quotes\"".to_string())),
                ("coherent", FieldValue::Bool(true)),
            ],
        );
        sink.emit("m2", "finished", &[]);
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("\"threads\":4"));
        assert!(text.contains("\"dist_sq\":0.25"));
        assert!(text.contains("\\\"quotes\\\""));
        assert!(text.contains("\"coherent\":true"));
        let spans = replay(&text).expect("replays");
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].event, "started");
        assert_eq!(spans[1].run, "m1");
        assert_eq!(spans[2].run, "m2");
        // One sink origin: the file order is a monotone timeline.
        assert!(spans.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn non_finite_floats_are_stringified() {
        let (sink, buf) = TraceSink::in_memory();
        sink.emit("m", "e", &[("v", FieldValue::F64(f64::INFINITY))]);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"v\":\"inf\""));
    }

    #[test]
    fn replay_reports_malformed_lines() {
        assert_eq!(replay("{\"ts_ns\":1,\"run\":\"a\"}\n"), Err(1));
        assert_eq!(replay(""), Ok(vec![]));
    }
}
