//! Socket-level traffic harness: a fleet of real TCP clients driving a
//! [`NetServer`](crate::NetServer) over loopback, closed-loop or
//! **open-loop**.
//!
//! Open-loop is the shape that makes overload visible: each client sends
//! on a fixed tick schedule *without waiting for responses* (a sender
//! thread and a reader thread share the connection via `try_clone`), and
//! latency is measured from the **scheduled** send instant — so queueing
//! delay under saturation is charged to the measurement instead of
//! silently slowing the offered load (the coordinated-omission trap a
//! closed-loop harness falls into). Responses arrive in request order
//! (the server is serial per connection), which is what lets the reader
//! match latencies without sequence numbers.
//!
//! The report splits outcomes per priority class: under SLO pressure the
//! server sheds low-priority traffic first, and the per-class latency
//! summaries are what show admitted traffic holding its p99 while shed
//! traffic is refused explicitly.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use asgd_driver::json::{self, Value};
use asgd_driver::report::{field, field_f64, field_str, field_u64};
use asgd_driver::DecodeError;
use asgd_math::rng::SeedSequence;
use asgd_metrics::Histogram;
use asgd_serve::{Arrival, LatencySummary};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::client::{ClientError, NetClient};
use crate::protocol::{
    read_frame, write_frame, Priority, Request, RequestFrame, Response, MAX_FRAME_LEN,
};

/// What each request computes (the wire ops, minus stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetOp {
    /// Sparse dot-product scoring (O(probe) per request). The default.
    #[default]
    DotScore,
    /// Held-out objective evaluation (O(d) per request) — the expensive
    /// op, used to saturate the server.
    Predict,
    /// Raw parameter range fetch.
    FetchRange,
}

impl NetOp {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::DotScore => "dot-score",
            Self::Predict => "predict",
            Self::FetchRange => "fetch-range",
        }
    }

    /// Every op, in documentation order.
    #[must_use]
    pub fn all() -> &'static [NetOp] {
        &[Self::DotScore, Self::Predict, Self::FetchRange]
    }
}

impl std::str::FromStr for NetOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dot-score" => Ok(Self::DotScore),
            "predict" => Ok(Self::Predict),
            "fetch-range" => Ok(Self::FetchRange),
            other => Err(format!(
                "unknown net op `{other}` (known: dot-score, predict, fetch-range)"
            )),
        }
    }
}

impl std::fmt::Display for NetOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One value describing a socket workload against a running server.
#[derive(Debug, Clone, PartialEq)]
pub struct NetWorkloadSpec {
    /// Concurrent client connections (`≥ 1`).
    pub clients: usize,
    /// Traffic window in seconds.
    pub duration_secs: f64,
    /// Arrival pattern per client: closed loop, or an open-loop fixed
    /// rate (per-client qps).
    pub arrival: Arrival,
    /// The op every request performs.
    pub op: NetOp,
    /// Probe support size for [`NetOp::DotScore`].
    pub probe_len: usize,
    /// Range length for [`NetOp::FetchRange`] (clamped to the dimension).
    pub fetch_len: u32,
    /// Model ids to target; client `i` drives `models[i % len]`.
    pub models: Vec<u32>,
    /// Priority classes; client `i` sends at `priorities[i % len]`.
    pub priorities: Vec<Priority>,
    /// Master seed for the per-client RNG streams.
    pub seed: u64,
}

impl NetWorkloadSpec {
    /// A closed-loop dot-score workload against `models`.
    #[must_use]
    pub fn new(models: Vec<u32>) -> Self {
        Self {
            clients: 4,
            duration_secs: 1.0,
            arrival: Arrival::ClosedLoop,
            op: NetOp::DotScore,
            probe_len: 8,
            fetch_len: 16,
            models,
            priorities: vec![Priority::Normal],
            seed: 0x00E7_5EED,
        }
    }

    /// Sets the client count.
    #[must_use]
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Sets the traffic window.
    #[must_use]
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Sets the arrival pattern.
    #[must_use]
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the op.
    #[must_use]
    pub fn op(mut self, op: NetOp) -> Self {
        self.op = op;
        self
    }

    /// Sets the dot-score probe size.
    #[must_use]
    pub fn probe_len(mut self, len: usize) -> Self {
        self.probe_len = len;
        self
    }

    /// Sets the fetch-range length.
    #[must_use]
    pub fn fetch_len(mut self, len: u32) -> Self {
        self.fetch_len = len;
        self
    }

    /// Sets the priority mix (client `i` → `priorities[i % len]`).
    #[must_use]
    pub fn priorities(mut self, priorities: Vec<Priority>) -> Self {
        self.priorities = priorities;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.clients == 0 {
            return Err(WorkloadError::Invalid(
                "at least one client required".to_string(),
            ));
        }
        if !(self.duration_secs.is_finite() && self.duration_secs > 0.0) {
            return Err(WorkloadError::Invalid(format!(
                "duration must be positive and finite, got {}",
                self.duration_secs
            )));
        }
        if let Arrival::FixedRate { qps } = self.arrival {
            if !(qps.is_finite() && qps > 0.0) {
                return Err(WorkloadError::Invalid(format!(
                    "fixed-rate qps must be positive and finite, got {qps}"
                )));
            }
        }
        if self.models.is_empty() {
            return Err(WorkloadError::Invalid(
                "at least one target model required".to_string(),
            ));
        }
        if self.priorities.is_empty() {
            return Err(WorkloadError::Invalid(
                "at least one priority class required".to_string(),
            ));
        }
        if self.probe_len == 0 {
            return Err(WorkloadError::Invalid(
                "probe length must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// What a workload run can fail with. Per-request failures during the
/// window are *counted* (`errors`/`lost` in the report), not returned —
/// only an unexecutable spec or a dead server fails the run itself.
#[derive(Debug)]
pub enum WorkloadError {
    /// The spec is not executable.
    Invalid(String),
    /// A client could not connect or discover its target model.
    Setup(ClientError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid(msg) => write!(f, "invalid net workload: {msg}"),
            Self::Setup(e) => write!(f, "client setup: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<ClientError> for WorkloadError {
    fn from(e: ClientError) -> Self {
        Self::Setup(e)
    }
}

/// Per-priority-class outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class label (`low` / `normal` / `high`).
    pub priority: String,
    /// Requests put on the wire.
    pub sent: u64,
    /// Requests answered with a value.
    pub answered: u64,
    /// Requests refused with a `Shed` frame.
    pub shed: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Requests with no response (connection died mid-window).
    pub lost: u64,
    /// Latency of *answered* requests, measured from the scheduled send
    /// instant (open loop) or the actual send instant (closed loop).
    pub latency: LatencySummary,
}

impl ClassReport {
    fn to_value(&self) -> Value {
        Value::obj([
            ("priority", Value::Str(self.priority.clone())),
            ("sent", Value::U64(self.sent)),
            ("answered", Value::U64(self.answered)),
            ("shed", Value::U64(self.shed)),
            ("errors", Value::U64(self.errors)),
            ("lost", Value::U64(self.lost)),
            ("latency", self.latency.to_value()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            priority: field_str(v, "priority")?,
            sent: field_u64(v, "sent")?,
            answered: field_u64(v, "answered")?,
            shed: field_u64(v, "shed")?,
            errors: field_u64(v, "errors")?,
            lost: field_u64(v, "lost")?,
            latency: LatencySummary::from_value(field(v, "latency")?)?,
        })
    }
}

/// The outcome of one socket workload, with exact JSON round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// Client connection count.
    pub clients: usize,
    /// Arrival label (`closed-loop` / `rate:QPS`).
    pub arrival: String,
    /// Op label.
    pub op: String,
    /// Distinct target models.
    pub models: usize,
    /// Actual traffic window in seconds.
    pub duration_secs: f64,
    /// Requests put on the wire, all classes.
    pub sent: u64,
    /// Requests answered with a value.
    pub answered: u64,
    /// Requests refused with a `Shed` frame.
    pub shed: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Requests with no response.
    pub lost: u64,
    /// Answered throughput (`answered / duration_secs`).
    pub qps: f64,
    /// Latency over all answered requests.
    pub latency: LatencySummary,
    /// Per-priority breakdown (classes that sent traffic, lowest first).
    pub classes: Vec<ClassReport>,
}

impl NetReport {
    /// Converts into the JSON value tree.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("clients", Value::U64(self.clients as u64)),
            ("arrival", Value::Str(self.arrival.clone())),
            ("op", Value::Str(self.op.clone())),
            ("models", Value::U64(self.models as u64)),
            ("duration_secs", Value::f64(self.duration_secs)),
            ("sent", Value::U64(self.sent)),
            ("answered", Value::U64(self.answered)),
            ("shed", Value::U64(self.shed)),
            ("errors", Value::U64(self.errors)),
            ("lost", Value::U64(self.lost)),
            ("qps", Value::f64(self.qps)),
            ("latency", self.latency.to_value()),
            (
                "classes",
                Value::Arr(self.classes.iter().map(ClassReport::to_value).collect()),
            ),
        ])
    }

    /// Serialises to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serialises to pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Decodes from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Field`] on missing/mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, DecodeError> {
        let classes = field(v, "classes")?
            .as_arr()
            .ok_or(DecodeError::Field {
                field: "classes",
                expected: "expected array",
            })?
            .iter()
            .map(ClassReport::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            clients: field_u64(v, "clients")? as usize,
            arrival: field_str(v, "arrival")?,
            op: field_str(v, "op")?,
            models: field_u64(v, "models")? as usize,
            duration_secs: field_f64(v, "duration_secs")?,
            sent: field_u64(v, "sent")?,
            answered: field_u64(v, "answered")?,
            shed: field_u64(v, "shed")?,
            errors: field_u64(v, "errors")?,
            lost: field_u64(v, "lost")?,
            qps: field_f64(v, "qps")?,
            latency: LatencySummary::from_value(field(v, "latency")?)?,
            classes,
        })
    }
}

/// Per-client tallies folded into the final report.
struct ClientTally {
    priority: Priority,
    sent: u64,
    answered: u64,
    shed: u64,
    errors: u64,
    lost: u64,
    latency_ns: Histogram,
}

impl ClientTally {
    fn new(priority: Priority) -> Self {
        Self {
            priority,
            sent: 0,
            answered: 0,
            shed: 0,
            errors: 0,
            lost: 0,
            latency_ns: Histogram::new(),
        }
    }

    fn classify(&mut self, response: &Response, latency: Duration) {
        match response {
            Response::Shed { .. } => self.shed += 1,
            Response::Error { .. } => self.errors += 1,
            _ => {
                self.answered += 1;
                self.latency_ns
                    .push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
            }
        }
    }
}

/// One client's pre-generated request template.
fn build_request(spec: &NetWorkloadSpec, model: u32, dim: u64, rng: &mut StdRng) -> Request {
    match spec.op {
        NetOp::DotScore => {
            let k = spec.probe_len.min(dim.max(1) as usize);
            let probe = (0..k)
                .map(|_| {
                    (
                        (rng.next_u64() % dim.max(1)) as u32,
                        rng.gen_range(-1.0..1.0),
                    )
                })
                .collect();
            Request::DotScore { model, probe }
        }
        NetOp::Predict => Request::Predict { model },
        NetOp::FetchRange => {
            let len = u64::from(spec.fetch_len).clamp(1, dim.max(1)) as u32;
            let span = dim.max(1) - u64::from(len) + 1;
            Request::FetchRange {
                model,
                start: (rng.next_u64() % span) as u32,
                len,
            }
        }
    }
}

/// Drives `spec.clients` real TCP connections against the server at
/// `addr` for the traffic window and folds the outcomes into a
/// [`NetReport`].
///
/// # Errors
///
/// [`WorkloadError::Invalid`] for unexecutable specs;
/// [`WorkloadError::Setup`] when a client cannot connect or discover its
/// target model. Failures *during* the window are counted in the report
/// (`errors`, `lost`), not returned.
pub fn run_net_workload(
    addr: SocketAddr,
    spec: &NetWorkloadSpec,
) -> Result<NetReport, WorkloadError> {
    spec.validate()?;
    let seeds = SeedSequence::new(spec.seed);
    // Discover every target model's dimension once, up front (High
    // priority: discovery must survive an already-overloaded server).
    let mut dims = Vec::with_capacity(spec.models.len());
    {
        let mut probe_client = NetClient::connect(addr)?;
        for &model in &spec.models {
            dims.push(probe_client.stats_by_id(model)?.dim);
        }
    }
    let window = Duration::from_secs_f64(spec.duration_secs);
    let started = Instant::now();
    let deadline = started + window;
    let tallies: Vec<Result<ClientTally, WorkloadError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|i| {
                let model = spec.models[i % spec.models.len()];
                let dim = dims[i % spec.models.len()];
                let priority = spec.priorities[i % spec.priorities.len()];
                let mut rng: StdRng = seeds.child_rng(i as u64);
                scope.spawn(move || match spec.arrival {
                    Arrival::ClosedLoop => {
                        closed_loop_client(addr, spec, model, dim, priority, &mut rng, deadline)
                    }
                    Arrival::FixedRate { qps } => {
                        open_loop_client(addr, spec, model, dim, priority, &mut rng, deadline, qps)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let duration_secs = started.elapsed().as_secs_f64();

    let mut per_class: Vec<(Priority, ClientTally)> = Priority::all()
        .iter()
        .map(|&p| (p, ClientTally::new(p)))
        .collect();
    let mut all_latency = Histogram::new();
    for tally in tallies {
        let tally = tally?;
        let slot = &mut per_class
            .iter_mut()
            .find(|(p, _)| *p == tally.priority)
            .expect("every priority has a slot")
            .1;
        slot.sent += tally.sent;
        slot.answered += tally.answered;
        slot.shed += tally.shed;
        slot.errors += tally.errors;
        slot.lost += tally.lost;
        slot.latency_ns.merge(&tally.latency_ns);
        all_latency.merge(&tally.latency_ns);
    }
    let (mut sent, mut answered, mut shed, mut errors, mut lost) = (0, 0, 0, 0, 0);
    let classes: Vec<ClassReport> = per_class
        .iter()
        .filter(|(_, t)| t.sent > 0)
        .map(|(p, t)| {
            sent += t.sent;
            answered += t.answered;
            shed += t.shed;
            errors += t.errors;
            lost += t.lost;
            ClassReport {
                priority: p.label().to_string(),
                sent: t.sent,
                answered: t.answered,
                shed: t.shed,
                errors: t.errors,
                lost: t.lost,
                latency: LatencySummary::from_histogram(&t.latency_ns),
            }
        })
        .collect();
    Ok(NetReport {
        clients: spec.clients,
        arrival: spec.arrival.label(),
        op: spec.op.label().to_string(),
        models: spec.models.len(),
        duration_secs,
        sent,
        answered,
        shed,
        errors,
        lost,
        qps: if duration_secs > 0.0 {
            answered as f64 / duration_secs
        } else {
            0.0
        },
        latency: LatencySummary::from_histogram(&all_latency),
        classes,
    })
}

/// Closed loop: send, block for the answer, repeat.
fn closed_loop_client(
    addr: SocketAddr,
    spec: &NetWorkloadSpec,
    model: u32,
    dim: u64,
    priority: Priority,
    rng: &mut StdRng,
    deadline: Instant,
) -> Result<ClientTally, WorkloadError> {
    let mut client = NetClient::connect(addr)?;
    let mut tally = ClientTally::new(priority);
    while Instant::now() < deadline {
        let request = build_request(spec, model, dim, rng);
        let frame = RequestFrame::new(request).priority(priority);
        let issued = Instant::now();
        tally.sent += 1;
        match client.call(&frame) {
            Ok(response) => tally.classify(&response, issued.elapsed()),
            Err(_) => {
                tally.lost += 1;
                return Ok(tally); // connection is dead; stop this client
            }
        }
    }
    Ok(tally)
}

/// Open loop: a sender thread on a fixed tick schedule and a reader
/// thread draining responses off a cloned stream handle. Latency runs
/// from the *scheduled* tick, so server-side queueing is measured, not
/// hidden.
#[allow(clippy::too_many_arguments)]
fn open_loop_client(
    addr: SocketAddr,
    spec: &NetWorkloadSpec,
    model: u32,
    dim: u64,
    priority: Priority,
    rng: &mut StdRng,
    deadline: Instant,
    qps: f64,
) -> Result<ClientTally, WorkloadError> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(ClientError::from)?;
    stream
        .set_nodelay(true)
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .map_err(ClientError::from)?;
    let mut read_half = stream.try_clone().map_err(ClientError::from)?;
    read_half
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(ClientError::from)?;
    let interval = Duration::from_secs_f64(1.0 / qps);
    let (tx, rx) = mpsc::channel::<Instant>();

    let mut tally = ClientTally::new(priority);
    let (sent, reader_tally) = std::thread::scope(|scope| {
        let reader = scope.spawn(move || {
            let mut tally = ClientTally::new(priority);
            let mut buf = Vec::new();
            let mut dead = false;
            while let Ok(scheduled) = rx.recv() {
                if dead {
                    tally.lost += 1;
                    continue;
                }
                let outcome = read_frame(&mut read_half, &mut buf, MAX_FRAME_LEN)
                    .map_err(|_| ())
                    .and_then(|()| Response::decode(&buf).map_err(|_| ()));
                match outcome {
                    Ok(response) => tally.classify(&response, scheduled.elapsed()),
                    Err(()) => {
                        // Connection died (or the server sent garbage):
                        // this and every still-queued request is lost.
                        tally.lost += 1;
                        dead = true;
                    }
                }
            }
            tally
        });

        let mut sent = 0_u64;
        let mut next_tick = Instant::now();
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if now < next_tick {
                std::thread::sleep((next_tick - now).min(deadline - now));
                continue;
            }
            // Fixed schedule; when behind, fire immediately without
            // accumulating a backlog.
            let scheduled = next_tick;
            next_tick = next_tick.max(now) + interval;
            let request = build_request(spec, model, dim, rng);
            let frame = RequestFrame::new(request).priority(priority);
            let Ok(body) = frame.encode() else { break };
            if write_frame(&mut stream, &body).is_err() {
                break;
            }
            sent += 1;
            if tx.send(scheduled).is_err() {
                break;
            }
        }
        drop(tx); // reader drains the queue, then returns
        (sent, reader.join().expect("reader thread panicked"))
    });
    tally.sent = sent;
    tally.answered = reader_tally.answered;
    tally.shed = reader_tally.shed;
    tally.errors = reader_tally.errors;
    tally.lost = reader_tally.lost;
    tally.latency_ns = reader_tally.latency_ns;
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> NetReport {
        let latency = LatencySummary {
            count: 90,
            mean_ns: 1_000.5,
            p50_ns: 900,
            p90_ns: 1_500,
            p99_ns: 3_000,
            p999_ns: 4_000,
            max_ns: 5_000,
        };
        NetReport {
            clients: 3,
            arrival: "rate:200".to_string(),
            op: "dot-score".to_string(),
            models: 2,
            duration_secs: 0.5,
            sent: 100,
            answered: 90,
            shed: 8,
            errors: 1,
            lost: 1,
            qps: 180.0,
            latency: latency.clone(),
            classes: vec![
                ClassReport {
                    priority: "low".to_string(),
                    sent: 50,
                    answered: 42,
                    shed: 8,
                    errors: 0,
                    lost: 0,
                    latency: latency.clone(),
                },
                ClassReport {
                    priority: "high".to_string(),
                    sent: 50,
                    answered: 48,
                    shed: 0,
                    errors: 1,
                    lost: 1,
                    latency,
                },
            ],
        }
    }

    #[test]
    fn report_json_round_trip_is_exact() {
        let report = sample_report();
        assert_eq!(NetReport::from_json(&report.to_json()).unwrap(), report);
        assert_eq!(
            NetReport::from_json(&report.to_json_pretty()).unwrap(),
            report
        );
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = NetReport::from_json("{}").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("classes"), "{err}");
        let text = sample_report()
            .to_json()
            .replace("\"classes\":", "\"classez\":");
        assert!(NetReport::from_json(&text).is_err());
    }

    #[test]
    fn op_labels_parse_back() {
        for op in NetOp::all() {
            assert_eq!(op.label().parse::<NetOp>().unwrap(), *op);
            assert_eq!(op.to_string(), op.label());
        }
        assert!("bogus".parse::<NetOp>().is_err());
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let ok = NetWorkloadSpec::new(vec![0]);
        assert!(ok.validate().is_ok());
        assert!(NetWorkloadSpec::new(vec![]).validate().is_err());
        assert!(NetWorkloadSpec::new(vec![0]).clients(0).validate().is_err());
        assert!(NetWorkloadSpec::new(vec![0])
            .duration_secs(0.0)
            .validate()
            .is_err());
        assert!(NetWorkloadSpec::new(vec![0])
            .arrival(Arrival::FixedRate { qps: f64::NAN })
            .validate()
            .is_err());
        assert!(NetWorkloadSpec::new(vec![0])
            .probe_len(0)
            .validate()
            .is_err());
        assert!(NetWorkloadSpec::new(vec![0])
            .priorities(vec![])
            .validate()
            .is_err());
        let e = WorkloadError::Invalid("nope".to_string());
        assert!(e.to_string().contains("nope"));
    }
}
