//! **Theorem 6.5 / Corollary 6.7** — the `√(τ_max·n)` convergence law.
//!
//! Paper claim: with the Eq. 12 learning rate, lock-free SGD's
//! iterations-to-success grow like `√(τ_max·n)` — not linearly in `τ_max`
//! as prior analyses (Theorem 6.3) prescribe.
//!
//! Measured: for a sweep of adversarial contention budgets `τ`, we run the
//! bounded-delay adversary twice per point — once with the paper's Eq. 12
//! rate, once with the prior linear-in-`τ` rate of \[10\] — and record the
//! median ordered-iteration index at which the accumulator `x_t` first
//! enters `S`. The log–log slope of hitting time vs `τ` should be ≈ ½ for
//! the Eq. 12 rate and ≈ 1 for the prior rate (who wins and by what shape).

use crate::ExperimentOutput;
use asgd_core::runner::LockFreeSgd;
use asgd_math::rng::SeedSequence;
use asgd_math::LogLogFit;
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::{GradientOracle, NoisyQuadratic};
use asgd_shmem::sched::BoundedDelayAdversary;
use asgd_theory::bounds;
use std::sync::Arc;

/// Hitting-time statistics for one (τ, learning-rate) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Contention budget handed to the adversary.
    pub tau_budget: u64,
    /// Median measured `τ_max` across trials.
    pub tau_max_measured: f64,
    /// Learning rate used.
    pub alpha: f64,
    /// Median hitting iteration (capped at the step budget on failure).
    pub median_hit: f64,
    /// Fraction of trials that failed to hit within the budget.
    pub failures: f64,
}

#[allow(clippy::too_many_arguments)] // experiment cell: all knobs explicit
fn measure(
    oracle: &Arc<NoisyQuadratic>,
    n: usize,
    eps: f64,
    alpha: f64,
    tau_budget: u64,
    iteration_cap: u64,
    trials: u64,
    master_seed: u64,
) -> Cell {
    let seq = SeedSequence::new(master_seed);
    let mut hits = Vec::new();
    let mut taus = Vec::new();
    let mut failures = 0u64;
    let d = oracle.dimension();
    for i in 0..trials {
        let run = LockFreeSgd::builder(Arc::clone(oracle))
            .threads(n)
            .iterations(iteration_cap)
            .learning_rate(alpha)
            .initial_point(vec![1.0 / (d as f64).sqrt(); d]) // ‖x₀‖ = 1
            .success_radius_sq(eps)
            .scheduler(BoundedDelayAdversary::new(tau_budget))
            .seed(seq.child_seed(i))
            .run();
        match run.hit_iteration {
            Some(t) => hits.push(t as f64),
            None => {
                failures += 1;
                hits.push(iteration_cap as f64);
            }
        }
        taus.push(run.execution.contention.tau_max() as f64);
    }
    Cell {
        tau_budget,
        tau_max_measured: super::median(&taus),
        alpha,
        median_hit: super::median(&hits),
        failures: failures as f64 / trials as f64,
    }
}

/// Runs the sweep for both learning-rate prescriptions; returns
/// `(eq12_cells, prior_cells)`.
#[must_use]
pub fn sweep(quick: bool) -> (Vec<Cell>, Vec<Cell>) {
    let d = 4;
    let sigma = 0.5;
    let n = 4;
    let eps = 0.04;
    let theta = 1.0;
    let oracle = super::quad(d, sigma);
    let consts = oracle.constants(2.0);
    let (tau_budgets, trials): (Vec<u64>, u64) = if quick {
        (vec![4, 16, 64], 3)
    } else {
        (vec![4, 16, 64, 256, 1024], 15)
    };
    let mut ours = Vec::new();
    let mut prior = Vec::new();
    for &tau in &tau_budgets {
        let alpha_ours = bounds::corollary_6_7_learning_rate(&consts, eps, tau, n, d, theta);
        let alpha_prior = bounds::theorem_6_3_learning_rate(&consts, eps, theta, tau);
        // Generous iteration cap: 40× the noiseless time constant 1/(αc)
        // suffices for ln(‖x₀‖²/ε) ≈ 3.2 decades plus adversarial slack.
        let cap_ours = (40.0 / alpha_ours).ceil() as u64;
        let cap_prior = (40.0 / alpha_prior).ceil() as u64;
        ours.push(measure(
            &oracle,
            n,
            eps,
            alpha_ours,
            tau,
            cap_ours,
            trials,
            0x65 + tau,
        ));
        prior.push(measure(
            &oracle,
            n,
            eps,
            alpha_prior,
            tau,
            cap_prior,
            trials,
            0x63 + tau,
        ));
    }
    (ours, prior)
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("t65");
    let (ours, prior) = sweep(quick);

    let mut table = Table::new(
        "Theorem 6.5 / Corollary 6.7: hitting time under a bounded-delay adversary",
        &[
            "tau budget",
            "tau_max measured",
            "alpha (Eq.12)",
            "median hit (Eq.12)",
            "alpha (prior [10])",
            "median hit (prior)",
            "hit ratio prior/ours",
        ],
    );
    for (a, b) in ours.iter().zip(&prior) {
        table.row(&[
            a.tau_budget.to_string(),
            fmt_f(a.tau_max_measured),
            fmt_f(a.alpha),
            fmt_f(a.median_hit),
            fmt_f(b.alpha),
            fmt_f(b.median_hit),
            fmt_f(b.median_hit / a.median_hit),
        ]);
    }
    out.tables.push(table);

    let fit_ours = LogLogFit::fit(
        &ours
            .iter()
            .map(|c| (c.tau_budget as f64, c.median_hit))
            .collect::<Vec<_>>(),
    );
    let fit_prior = LogLogFit::fit(
        &prior
            .iter()
            .map(|c| (c.tau_budget as f64, c.median_hit))
            .collect::<Vec<_>>(),
    );
    if let (Some(fo), Some(fp)) = (fit_ours, fit_prior) {
        out.notes.push(format!(
            "log-log slope of hitting time vs τ: Eq.12 rate = {:.3} (theory: 1/2), prior rate = {:.3} (theory: 1); slope gap = {:.3}",
            fo.slope,
            fp.slope,
            fp.slope - fo.slope
        ));
    }
    let any_failures = ours.iter().chain(&prior).any(|c| c.failures > 0.0);
    out.notes.push(format!(
        "trials failing to reach S within the iteration cap: {}",
        if any_failures {
            "some (capped values used)"
        } else {
            "none"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitting_time_grows_sublinearly_with_eq12_rate() {
        let (ours, prior) = sweep(true);
        // τ grows 16× across the quick sweep (4 → 64). Under the prior
        // (linear-in-τ) rate the hitting time must blow up far more than
        // under the Eq. 12 (√τ) rate.
        let growth_ours = ours.last().unwrap().median_hit / ours[0].median_hit;
        let growth_prior = prior.last().unwrap().median_hit / prior[0].median_hit;
        assert!(
            growth_prior > growth_ours * 1.5,
            "prior growth {growth_prior:.1} should clearly exceed ours {growth_ours:.1}"
        );
    }

    #[test]
    fn adversary_respects_its_budget_roughly() {
        let (ours, _) = sweep(true);
        for c in &ours {
            // Measured τ_max should be in the ballpark of the budget (the
            // adversary manufactures ≈ budget contention; release slack and
            // thread effects allow a small constant factor).
            assert!(
                c.tau_max_measured + 1.0 >= c.tau_budget as f64 * 0.5,
                "budget {} but measured τ_max {}",
                c.tau_budget,
                c.tau_max_measured
            );
        }
    }

    #[test]
    fn all_quick_trials_converge() {
        let (ours, prior) = sweep(true);
        for c in ours.iter().chain(&prior) {
            assert_eq!(
                c.failures, 0.0,
                "τ={} α={} failed trials",
                c.tau_budget, c.alpha
            );
        }
    }
}
