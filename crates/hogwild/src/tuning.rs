//! Execution tuning knobs shared by all native executors.

use crate::model::{ModelLayout, UpdateOrder};

/// When to take the O(Δ) sparse gradient path instead of the O(d) dense one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparsePolicy {
    /// Sparse iff the oracle declares a support bound Δ with `4·Δ ≤ d` — the
    /// regime where skipping the dense view scan clearly pays. The default.
    #[default]
    Auto,
    /// Always run the dense path (the paper-faithful full view scan).
    ForceDense,
    /// Run the sparse path whenever the oracle declares *any* support bound
    /// (oracles without one fall back to dense — the sparse machinery needs
    /// a bound to be meaningful).
    ForceSparse,
}

impl SparsePolicy {
    /// Decides the path for a model of dimension `d` and an oracle reporting
    /// `max_support`.
    #[must_use]
    pub fn use_sparse(self, d: usize, max_support: Option<usize>) -> bool {
        match self {
            Self::ForceDense => false,
            Self::ForceSparse => max_support.is_some(),
            Self::Auto => max_support.is_some_and(|s| s.saturating_mul(4) <= d),
        }
    }
}

/// Tuning of a native executor's hot loop, orthogonal to the algorithmic
/// configuration (`threads`, `iterations`, `alpha`, …).
///
/// The defaults reproduce the paper-faithful execution on dense oracles and
/// switch Δ-sparse oracles onto the O(Δ) path automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecTuning {
    /// Shared-model memory layout (false-sharing avoidance at small d).
    pub layout: ModelLayout,
    /// Memory ordering of model reads and `fetch&add`s.
    pub order: UpdateOrder,
    /// Dense-vs-sparse path selection.
    pub sparse: SparsePolicy,
    /// On the sparse path, the success-region check needs a full O(d) view
    /// read; it is sampled every this many claims instead of every claim
    /// (the dense path, which has the view anyway, keeps checking every
    /// claim). Clamped to ≥ 1.
    pub success_check_stride: u64,
}

impl Default for ExecTuning {
    fn default() -> Self {
        Self {
            layout: ModelLayout::Compact,
            order: UpdateOrder::SeqCst,
            sparse: SparsePolicy::Auto,
            success_check_stride: 16,
        }
    }
}

impl ExecTuning {
    /// The stride, clamped to ≥ 1.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.success_check_stride.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_requires_headroom() {
        let p = SparsePolicy::Auto;
        assert!(p.use_sparse(16, Some(1)), "Δ=1, d=16");
        assert!(p.use_sparse(4, Some(1)), "Δ=1, d=4 is the boundary");
        assert!(!p.use_sparse(3, Some(1)), "Δ=1, d=3: too dense to pay off");
        assert!(!p.use_sparse(1 << 20, None), "dense oracle stays dense");
    }

    #[test]
    fn force_policies() {
        assert!(!SparsePolicy::ForceDense.use_sparse(1 << 20, Some(1)));
        assert!(SparsePolicy::ForceSparse.use_sparse(2, Some(1)));
        assert!(
            !SparsePolicy::ForceSparse.use_sparse(2, None),
            "no support bound ⇒ no sparse path even when forced"
        );
    }

    #[test]
    fn default_tuning_is_paper_faithful_with_auto_sparse() {
        let t = ExecTuning::default();
        assert_eq!(t.layout, ModelLayout::Compact);
        assert_eq!(t.order, UpdateOrder::SeqCst);
        assert_eq!(t.sparse, SparsePolicy::Auto);
        assert!(t.stride() >= 1);
        let zero = ExecTuning {
            success_check_stride: 0,
            ..ExecTuning::default()
        };
        assert_eq!(zero.stride(), 1, "stride clamps to 1");
    }
}
