//! Schedulers: the adversarial entity of §2.
//!
//! The order of process steps is controlled by a [`Scheduler`]. On every
//! global step the engine presents a [`SchedView`] — the full machine state:
//! every thread's *declared* next action (including any local coins already
//! drawn to produce it), the entire shared memory, and the live
//! [`ContentionTracker`]. The scheduler
//! returns a [`Decision`]: fire one thread's pending action, or crash a
//! thread (at most `n − 1` crashes, enforced by the engine).
//!
//! This is the *strong adaptive adversary* of the paper: it sees coin flips
//! before scheduling. Benign schedulers ([`SerialScheduler`],
//! [`StepRoundRobin`], [`RandomScheduler`], [`IterationSerial`]) simply
//! ignore most of that power; the adversaries use all of it.

mod adversary;
mod basic;
mod recorded;

pub use adversary::{BoundedDelayAdversary, CrashAdversary, StaleGradientAdversary};
pub use basic::{IterationSerial, RandomScheduler, SerialScheduler, StepRoundRobin};
pub use recorded::{
    decode_schedule, encode_schedule, RecordingScheduler, ReplayScheduler, ScheduleLog,
    ScheduleParseError,
};

use crate::contention::ContentionTracker;
use crate::memory::Memory;
use crate::op::{Action, OpTag, Step, ThreadId};

/// Lifecycle state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Has a declared pending action and can be scheduled.
    Runnable,
    /// Finished its program.
    Halted,
    /// Crashed by the adversary; never scheduled again.
    Crashed,
}

/// A scheduler's per-step view of one thread.
#[derive(Debug, Clone)]
pub struct ThreadView {
    /// Thread id.
    pub id: ThreadId,
    /// Lifecycle state.
    pub status: ThreadStatus,
    /// The declared next action (`Some` iff `status == Runnable`).
    pub pending: Option<Action>,
}

impl ThreadView {
    /// Tag of the pending action, if runnable.
    #[must_use]
    pub fn pending_tag(&self) -> Option<OpTag> {
        self.pending.as_ref().map(Action::tag)
    }

    /// True if the thread is mid-iteration (its pending action is view
    /// reading, gradient computation or gradient writing — anything but
    /// claiming the next iteration).
    #[must_use]
    pub fn mid_iteration(&self) -> bool {
        matches!(
            self.pending_tag(),
            Some(OpTag::ViewRead { .. }) | Some(OpTag::SampleCoin) | Some(OpTag::ModelWrite { .. })
        )
    }
}

/// Everything the strong adversary is allowed to see when deciding.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Global step about to be assigned.
    pub step: Step,
    /// The full shared memory.
    pub memory: &'a Memory,
    /// Per-thread state including declared actions.
    pub threads: &'a [ThreadView],
    /// Live iteration/contention accounting.
    pub tracker: &'a ContentionTracker,
    /// How many more crashes the adversary may still issue.
    pub crashes_remaining: usize,
}

impl<'a> SchedView<'a> {
    /// Iterates over runnable threads.
    pub fn runnable(&self) -> impl Iterator<Item = &ThreadView> + '_ {
        self.threads
            .iter()
            .filter(|t| t.status == ThreadStatus::Runnable)
    }

    /// True if thread `tid` is runnable.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn is_runnable(&self, tid: ThreadId) -> bool {
        self.threads[tid].status == ThreadStatus::Runnable
    }

    /// The lowest-id runnable thread, if any.
    #[must_use]
    pub fn first_runnable(&self) -> Option<ThreadId> {
        self.runnable().map(|t| t.id).next()
    }

    /// The first runnable thread at or after `from`, wrapping around.
    #[must_use]
    pub fn next_runnable_from(&self, from: ThreadId) -> Option<ThreadId> {
        let n = self.threads.len();
        (0..n)
            .map(|k| (from + k) % n)
            .find(|&tid| self.is_runnable(tid))
    }

    /// The first runnable thread at or after `from` excluding `skip`,
    /// wrapping around.
    #[must_use]
    pub fn next_runnable_excluding(&self, from: ThreadId, skip: ThreadId) -> Option<ThreadId> {
        let n = self.threads.len();
        (0..n)
            .map(|k| (from + k) % n)
            .find(|&tid| tid != skip && self.is_runnable(tid))
    }
}

/// What the scheduler wants to happen this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Fire thread `0`'s pending action.
    Schedule(ThreadId),
    /// Crash the thread (engine enforces the `n − 1` crash budget).
    Crash(ThreadId),
}

/// The adversarial scheduler interface.
///
/// Implementations must return a decision naming a *runnable* thread; naming
/// a halted/crashed thread, or crashing with an exhausted budget, is a
/// scheduler bug and makes the engine panic.
pub trait Scheduler {
    /// Chooses the next step given full knowledge of the machine.
    fn decide(&mut self, view: &SchedView<'_>) -> Decision;

    /// Human-readable name for experiment tables.
    fn name(&self) -> &str {
        "scheduler"
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        (**self).decide(view)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MemOp;

    pub(crate) fn mk_threads(statuses: &[ThreadStatus]) -> Vec<ThreadView> {
        statuses
            .iter()
            .enumerate()
            .map(|(id, &status)| ThreadView {
                id,
                status,
                pending: (status == ThreadStatus::Runnable).then_some(Action::Op {
                    op: MemOp::ReadF64 { idx: 0 },
                    tag: OpTag::ClaimIteration,
                }),
            })
            .collect()
    }

    #[test]
    fn view_navigation_helpers() {
        let threads = mk_threads(&[
            ThreadStatus::Halted,
            ThreadStatus::Runnable,
            ThreadStatus::Crashed,
            ThreadStatus::Runnable,
        ]);
        let memory = Memory::new(1, 1);
        let tracker = ContentionTracker::new(4);
        let view = SchedView {
            step: 0,
            memory: &memory,
            threads: &threads,
            tracker: &tracker,
            crashes_remaining: 3,
        };
        assert_eq!(view.first_runnable(), Some(1));
        assert_eq!(view.next_runnable_from(2), Some(3));
        assert_eq!(view.next_runnable_from(0), Some(1));
        assert_eq!(view.next_runnable_excluding(1, 1), Some(3));
        assert!(!view.is_runnable(0));
        assert!(view.is_runnable(3));
        assert_eq!(view.runnable().count(), 2);
    }

    #[test]
    fn thread_view_tag_helpers() {
        let t = ThreadView {
            id: 0,
            status: ThreadStatus::Runnable,
            pending: Some(Action::Op {
                op: MemOp::FaaF64 { idx: 0, delta: 1.0 },
                tag: OpTag::ModelWrite {
                    entry: 0,
                    first: true,
                    last: false,
                },
            }),
        };
        assert!(t.mid_iteration());
        let c = ThreadView {
            id: 1,
            status: ThreadStatus::Runnable,
            pending: Some(Action::Op {
                op: MemOp::FaaU64 { idx: 0, delta: 1 },
                tag: OpTag::ClaimIteration,
            }),
        };
        assert!(!c.mid_iteration());
        assert_eq!(c.pending_tag(), Some(OpTag::ClaimIteration));
        let h = ThreadView {
            id: 2,
            status: ThreadStatus::Halted,
            pending: None,
        };
        assert_eq!(h.pending_tag(), None);
        assert!(!h.mid_iteration());
    }
}
