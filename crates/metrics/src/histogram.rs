//! Integer histograms for contention statistics.

/// A histogram over `u64` observations (e.g. interval contention `ρ(θ)` or
/// staleness `τ_t` values).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: std::collections::BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from observations.
    #[must_use]
    pub fn from_values(values: &[u64]) -> Self {
        let mut h = Self::new();
        for &v in values {
            h.push(v);
        }
        h
    }

    /// Records one observation.
    pub fn push(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of a specific value.
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Largest observed value.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by cumulative count.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (&v, &c) in &self.counts {
            acc += c;
            if acc >= target {
                return Some(v);
            }
        }
        self.max()
    }

    /// Iterates `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Renders a compact ASCII bar chart (one row per distinct value, bars
    /// scaled to `width` characters).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let max_count = self.counts.values().copied().max().unwrap_or(0);
        for (v, c) in self.iter() {
            let bar_len = if max_count == 0 {
                0
            } else {
                ((c as f64 / max_count as f64) * width as f64).round() as usize
            };
            out.push_str(&format!(
                "{v:>8} | {:<width$} {c}\n",
                "#".repeat(bar_len.max(usize::from(c > 0)))
            ));
        }
        out
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Self::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let h = Histogram::from_values(&[1, 1, 2, 5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn quantiles() {
        let h: Histogram = (1..=100).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_range_checked() {
        let _ = Histogram::from_values(&[1]).quantile(1.5);
    }

    #[test]
    fn render_shows_bars() {
        let h = Histogram::from_values(&[0, 0, 0, 7]);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert!(s.contains('7'));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn iterator_construction() {
        let h: Histogram = vec![3u64, 3, 9].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(3, 2), (9, 1)]);
    }
}
