//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the subset of the `rand` 0.8 API the workspace actually uses is
//! implemented here: [`RngCore`], [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++ seeded
//! via SplitMix64 — not bit-compatible with upstream `StdRng` (ChaCha12),
//! but the workspace never asserts golden values, only reproducibility and
//! statistical properties, both of which xoshiro256++ satisfies easily.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the subset of
/// `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a 64-bit source over any span used here is negligible,
                // but widening keeps it exact for spans that fit in u64.
                let span64 = span as u64;
                let v = ((rng.next_u64() as u128 * span64 as u128) >> 64) as u64;
                ((self.start as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "cannot sample empty or non-finite range"
        );
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "cannot sample empty or non-finite range"
        );
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng`; see the crate
    /// docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3_usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0_usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0_u64..10);
        assert!(v < 10);
        let _: f64 = dynr.gen();
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
