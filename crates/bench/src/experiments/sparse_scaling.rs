//! **O(Δ) vs O(d)** — the sparse fast path's measured d/Δ win.
//!
//! The paper's bounds are parameterized by the gradient sparsity Δ (§3);
//! this experiment measures what that parameterisation is worth on real
//! hardware: the same `sparse-quadratic` workload (Δ = 1) run through the
//! native Hogwild backend on the dense O(d) path and the sparse O(Δ) path,
//! sweeping d ∈ {16, 1k, 64k} × threads ∈ {1, 2, 4, 8} at a fixed
//! iteration budget. At d = 64k the dense path reads and scans 64k entries
//! per iteration to apply one update; the sparse path reads one.
//!
//! A second grid takes the sparse path to serving-scale dimensions —
//! d ∈ {1M, 10M} — and compares the flat single-arena store against the
//! topology-sharded `ShardedModel` ([`sweep_store_cells`]): same claims,
//! same coin streams, different arena routing. At these dimensions one flat
//! arena spans hundreds of cache-line-sized pages; sharding keeps each
//! worker's hot range compact.
//!
//! Full (non-quick) runs write `BENCH_sparse_path.json` into the current
//! directory — the workspace's perf trajectory artifact.

use crate::ExperimentOutput;
use asgd_driver::json::Value;
use asgd_driver::{BackendKind, Driver, PinSpec, RunSpec, ShardsSpec, SparsePathSpec};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model dimension.
    pub d: usize,
    /// Worker threads.
    pub threads: usize,
    /// `"dense"` or `"sparse"`.
    pub path: &'static str,
    /// `"flat"` or `"sharded"` — which parameter store held the model.
    pub store: &'static str,
    /// Iteration budget (identical across paths).
    pub iterations: u64,
    /// Wall-clock seconds of the parallel section.
    pub wall_secs: f64,
    /// Iterations per second.
    pub iters_per_sec: f64,
}

fn cell_spec(
    d: usize,
    threads: usize,
    sparse: SparsePathSpec,
    shards: ShardsSpec,
    iterations: u64,
) -> RunSpec {
    // Δ = 1 single-coordinate gradients have magnitude d·x_j, so stability
    // needs α ~ 1/d; noiseless keeps every run finite at any d.
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", d).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(threads)
    .iterations(iterations)
    .learning_rate(0.5 / d as f64)
    .x0(vec![1.0; d])
    .seed(0xD0_0D)
    .sparse(sparse)
    .shards(shards)
}

fn row_from(spec: &RunSpec, report: &asgd_driver::RunReport) -> Row {
    Row {
        d: spec.oracle.dim,
        threads: spec.threads,
        path: if report.sparse_path == Some(true) {
            "sparse"
        } else {
            "dense"
        },
        store: if report.shards.is_some() {
            "sharded"
        } else {
            "flat"
        },
        iterations: spec.iterations,
        wall_secs: report.wall_time_secs,
        iters_per_sec: report.iterations_per_sec(),
    }
}

/// Runs a spec list through [`Driver::run_many`] with a single-worker pool:
/// like the `speedup` experiment, the throughput columns are the output, so
/// a cell must not share cores with the twin it is being compared against.
fn measure(specs: &[RunSpec]) -> Vec<Row> {
    let reports = Driver::new().workers(1).run_many(specs);
    specs
        .iter()
        .zip(reports)
        .map(|(spec, report)| row_from(spec, &report.expect("sparse-scaling spec runs")))
        .collect()
}

/// The dense-vs-sparse grid (flat store).
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    if quick {
        sweep_cells(&[16, 1024], &[1, 2], 2_000)
    } else {
        sweep_cells(&[16, 1024, 65_536], &[1, 2, 4, 8], 20_000)
    }
}

/// Measures an explicit `dims × thread_counts` grid at a caller-chosen
/// iteration budget (both paths per cell, dense first; flat store).
/// `bench-check` uses this to re-measure a corner of the committed grid at
/// the committed budget, so its throughput comparison is apples-to-apples.
#[must_use]
pub fn sweep_cells(dims: &[usize], thread_counts: &[usize], iterations: u64) -> Vec<Row> {
    let mut specs = Vec::new();
    for &d in dims {
        for &threads in thread_counts {
            for path in [SparsePathSpec::Dense, SparsePathSpec::Sparse] {
                specs.push(cell_spec(d, threads, path, ShardsSpec::Flat, iterations));
            }
        }
    }
    measure(&specs)
}

/// The flat-vs-sharded store grid: every cell runs the sparse O(Δ) path
/// (the dense O(d) scan at d = 10M would measure memory bandwidth, not the
/// store), flat store first, then the topology-sharded store. Workers are
/// pinned in both cells so the comparison shares one placement.
#[must_use]
pub fn sweep_store_cells(dims: &[usize], thread_counts: &[usize], iterations: u64) -> Vec<Row> {
    let mut specs = Vec::new();
    for &d in dims {
        for &threads in thread_counts {
            for shards in [ShardsSpec::Flat, ShardsSpec::Auto] {
                specs.push(
                    cell_spec(d, threads, SparsePathSpec::Sparse, shards, iterations)
                        .pin(PinSpec::On),
                );
            }
        }
    }
    measure(&specs)
}

/// The sparse/dense throughput ratio for each `(d, threads)` cell of the
/// dense-vs-sparse grid.
#[must_use]
pub fn speedups(rows: &[Row]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        let [dense, sparse] = pair else { continue };
        debug_assert_eq!(dense.path, "dense");
        debug_assert_eq!(sparse.path, "sparse");
        out.push((
            dense.d,
            dense.threads,
            sparse.iters_per_sec / dense.iters_per_sec,
        ));
    }
    out
}

/// The sharded/flat throughput ratio for each `(d, threads)` cell of the
/// store grid.
#[must_use]
pub fn store_speedups(rows: &[Row]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        let [flat, sharded] = pair else { continue };
        debug_assert_eq!(flat.store, "flat");
        debug_assert_eq!(sharded.store, "sharded");
        out.push((
            flat.d,
            flat.threads,
            sharded.iters_per_sec / flat.iters_per_sec,
        ));
    }
    out
}

/// Serialises the sweep to the `BENCH_sparse_path.json` value tree.
#[must_use]
pub fn to_json(rows: &[Row]) -> Value {
    Value::obj([
        ("experiment", Value::Str("sparse-scaling".to_string())),
        ("backend", Value::Str("hogwild".to_string())),
        ("oracle", Value::Str("sparse-quadratic".to_string())),
        (
            "rows",
            Value::Arr(
                rows.iter()
                    .map(|r| {
                        Value::obj([
                            ("d", Value::U64(r.d as u64)),
                            ("threads", Value::U64(r.threads as u64)),
                            ("path", Value::Str(r.path.to_string())),
                            ("store", Value::Str(r.store.to_string())),
                            ("iterations", Value::U64(r.iterations)),
                            ("wall_time_secs", Value::f64(r.wall_secs)),
                            ("iters_per_sec", Value::f64(r.iters_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the experiment. Non-quick runs also write `BENCH_sparse_path.json`
/// into the current directory.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("sparse_scaling");
    let path_rows = sweep(quick);
    // The store grid gets a deeper budget than the path grid: its cells
    // differ by a few percent (not the sparse path's orders of magnitude),
    // so thread spawn and pinning overhead must be amortised away for the
    // flat/sharded ratio to measure the stores.
    let store_rows = if quick {
        sweep_store_cells(&[1024], &[2], 2_000)
    } else {
        sweep_store_cells(&[1 << 20, 10_000_000], &[1, 4], 1_000_000)
    };
    let mut table = Table::new(
        "O(Δ) sparse path vs O(d) dense path: hogwild on sparse-quadratic (Δ=1), equal budgets",
        &["d", "threads", "path", "store", "wall s", "iters/s"],
    );
    for r in path_rows.iter().chain(&store_rows) {
        table.row(&[
            r.d.to_string(),
            r.threads.to_string(),
            r.path.to_string(),
            r.store.to_string(),
            format!("{:.4}", r.wall_secs),
            fmt_f(r.iters_per_sec),
        ]);
    }
    out.tables.push(table);
    for (d, threads, speedup) in speedups(&path_rows) {
        out.notes.push(format!(
            "d={d} n={threads}: sparse path {speedup:.1}x dense throughput"
        ));
    }
    for (d, threads, ratio) in store_speedups(&store_rows) {
        out.notes.push(format!(
            "d={d} n={threads}: sharded store {ratio:.2}x flat throughput (sparse path)"
        ));
    }
    if !quick {
        let mut rows = path_rows;
        rows.extend(store_rows);
        let path = std::path::Path::new("BENCH_sparse_path.json");
        match std::fs::write(path, to_json(&rows).to_json_pretty() + "\n") {
            Ok(()) => out.notes.push(format!("[json] {}", path.display())),
            Err(e) => out
                .notes
                .push(format!("[json] failed to write {}: {e}", path.display())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_both_paths_and_round_trips_json() {
        let rows = sweep(true);
        assert_eq!(rows.len(), 2 * 2 * 2, "dims × threads × paths");
        assert!(rows.iter().any(|r| r.path == "sparse"));
        assert!(rows.iter().any(|r| r.path == "dense"));
        for r in &rows {
            assert_eq!(r.store, "flat");
            assert!(r.wall_secs >= 0.0);
            assert!(r.iters_per_sec > 0.0, "{r:?}");
        }
        let json = to_json(&rows).to_json();
        let back = asgd_driver::json::parse(&json).expect("valid JSON");
        assert_eq!(
            back.get("rows").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(rows.len())
        );
        // No perf assertion here (CI boxes are noisy); the committed
        // BENCH_sparse_path.json carries the full-run numbers.
        assert_eq!(speedups(&rows).len(), rows.len() / 2);
    }

    #[test]
    fn store_sweep_pairs_flat_with_sharded_on_the_sparse_path() {
        let rows = sweep_store_cells(&[512], &[2], 1_000);
        assert_eq!(rows.len(), 2, "flat + sharded");
        assert_eq!(rows[0].store, "flat");
        assert_eq!(rows[1].store, "sharded");
        for r in &rows {
            assert_eq!(r.path, "sparse", "{r:?}");
            assert!(r.iters_per_sec > 0.0, "{r:?}");
        }
        let ratios = store_speedups(&rows);
        assert_eq!(ratios.len(), 1);
        assert!(ratios[0].2.is_finite() && ratios[0].2 > 0.0);
    }
}
