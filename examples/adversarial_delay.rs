//! The §5 lower bound, live: run the stale-gradient adversary in the
//! simulator and watch it knock SGD back — including the paper's Figure-1
//! update grid rendered from the actual execution.
//!
//! ```text
//! cargo run --release --example adversarial_delay
//! ```

use asyncsgd::prelude::*;
use asyncsgd::theory::lower_bound;
use std::sync::Arc;

fn main() {
    let alpha = 0.1;
    let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).expect("valid"));
    let tau_star = lower_bound::required_delay(alpha);
    println!("f(x) = x²/2, α = {alpha}; Theorem 5.1 needs delay τ ≥ τ* = {tau_star}\n");

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10}",
        "tau", "measured |x|", "predicted", "clean", "slowdown"
    );
    for tau in [5, 10, tau_star, 2 * tau_star, 4 * tau_star] {
        let run = LockFreeSgd::builder(Arc::clone(&oracle))
            .threads(2)
            .iterations(tau + 1)
            .learning_rate(alpha)
            .initial_point(vec![1.0])
            .scheduler(StaleGradientAdversary::new(0, 1, tau))
            .seed(1)
            .run();
        println!(
            "{:>6} {:>14.6e} {:>14.6e} {:>14.6e} {:>10.1}",
            tau,
            run.final_model[0].abs(),
            lower_bound::adversarial_iterate(alpha, tau, 1.0).abs(),
            lower_bound::clean_contraction(alpha, tau, 1.0),
            lower_bound::slowdown_factor(alpha, tau),
        );
    }

    // Figure 1: the update grid of a small adversarial execution.
    println!("\nFigure 1 — update grid under a bounded-delay adversary (d=6, n=3):\n");
    let oracle6 = Arc::new(NoisyQuadratic::new(6, 0.5).expect("valid"));
    let run = LockFreeSgd::builder(oracle6)
        .threads(3)
        .iterations(10)
        .learning_rate(0.05)
        .initial_point(vec![1.0; 6])
        .scheduler(BoundedDelayAdversary::new(3))
        .trace(TraceLevel::Events)
        .seed(3)
        .run();
    let trace = run.execution.trace.expect("trace requested");
    let mid = run.execution.steps / 2;
    println!("mid-execution (step {mid}):");
    println!("{}", trace.update_grid(6, mid).render());
    println!("final:");
    println!("{}", trace.update_grid(6, run.execution.steps).render());
    println!(
        "contention: τ_max = {}, τ_avg = {:.2}",
        run.execution.contention.tau_max(),
        run.execution.contention.tau_avg()
    );
}
