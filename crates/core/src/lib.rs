//! Lock-free stochastic gradient descent in asynchronous shared memory —
//! the algorithms of *"The Convergence of SGD in Asynchronous Shared
//! Memory"* (Alistarh, De Sa, Konstantinov; PODC 2018).
//!
//! This crate implements, on top of the [`asgd_shmem`] simulator:
//!
//! * [`sequential`] — the classic Robbins–Monro iteration
//!   `x_{t+1} = x_t − α·g̃(x_t)` (Eq. 1), the baseline every bound compares
//!   against;
//! * [`lockfree`] — **Algorithm 1 (`EpochSGD`)**: threads share the model
//!   `X[d]`, claim iteration slots with `C.fetch&add(1)`, read the model
//!   entry-wise into a possibly inconsistent view, and apply gradient entries
//!   with per-entry `fetch&add` — no locks anywhere;
//! * [`full_sgd`] — **Algorithm 2 (`FullSGD`)**: a sequence of `EpochSGD`
//!   epochs with halving learning rate, epoch-guarded updates (one model
//!   array per epoch, the guard variant the paper itself proposes), and a
//!   final epoch that accumulates each thread's applied updates into a shared
//!   `Acc` region from which the result `r` is collected;
//! * [`monitor`] — a live observer reconstructing the paper's accumulator
//!   process `x_t` (§6.1) from the update stream, to measure hitting times of
//!   the success region `S = {x : ‖x − x*‖² ≤ ε}`;
//! * [`runner`] — one-call harness wiring oracle + scheduler + engine +
//!   monitor together for experiments.
//!
//! **Front door:** new code should usually go through the unified driver
//! (`asgd-driver`): build a `RunSpec` once and run it on this simulated
//! backend *and* the native ones, getting one serialisable `RunReport`
//! back. The entry points in this crate remain supported as the simulated
//! backend's engine-level API (the driver wraps
//! [`runner::LockFreeSgd::try_run`] and [`full_sgd::run_simulated`]).
//!
//! # Quick example (simulated lock-free SGD under an adversary)
//!
//! ```
//! use asgd_core::runner::LockFreeSgd;
//! use asgd_oracle::NoisyQuadratic;
//! use asgd_shmem::sched::RandomScheduler;
//! use std::sync::Arc;
//!
//! let oracle = Arc::new(NoisyQuadratic::new(2, 0.05).expect("valid"));
//! let run = LockFreeSgd::builder(oracle)
//!     .threads(2)
//!     .iterations(400)
//!     .learning_rate(0.1)
//!     .initial_point(vec![1.0, -1.0])
//!     .success_radius_sq(0.05)
//!     .scheduler(RandomScheduler::new(3))
//!     .seed(7)
//!     .run();
//! assert!(run.hit_iteration.is_some(), "reached the success region");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod full_sgd;
pub mod lockfree;
pub mod monitor;
pub mod runner;
pub mod sequential;

pub use full_sgd::{FullSgdConfig, FullSgdProcess, FullSgdReport};
pub use lockfree::{EpochSgdConfig, EpochSgdProcess};
pub use monitor::HittingMonitor;
pub use runner::{LockFreeRun, LockFreeSgd, RunnerError};
pub use sequential::{SequentialReport, SequentialSgd};
