//! Minibatch gradients: average `b` per-sample gradients per oracle call.
//!
//! Practical data-parallel SGD (the deployment the paper's §8 discussion
//! speaks to) rarely applies single-sample gradients: each iteration
//! averages a small batch, making the computation per iteration `O(b·d)`
//! while the shared-memory update stays `O(d)`. That ratio is what lets
//! lock-free execution convert thread parallelism into wall-clock speedup.
//! [`MinibatchRegression`] wraps [`LinearRegression`] with exactly that
//! access pattern; it is the workload of the `speedup` experiment and the
//! `hogwild_scaling` bench.

use crate::constants::Constants;
use crate::linreg::{LinearRegression, RankDeficientError};
use crate::oracle::GradientOracle;
use crate::sparse_grad::{ModelView, SparseGrad};
use rand::{Rng, RngCore};

/// Least squares with size-`b` minibatch stochastic gradients.
///
/// `g̃(x) = (1/b)·Σ_{i∈B} (a_iᵀx − b_i)·a_i` over a uniformly drawn batch
/// `B` (with replacement). Unbiased for `∇f`; same `c` and `L` as the
/// underlying regression; the single-sample `M²` remains a valid (now
/// conservative, since averaging only shrinks second moments) bound.
#[derive(Debug, Clone, PartialEq)]
pub struct MinibatchRegression {
    inner: LinearRegression,
    batch: usize,
    name: String,
}

impl MinibatchRegression {
    /// Wraps a regression workload with batch size `b ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn new(inner: LinearRegression, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        Self {
            name: format!("minibatch-linreg(b={batch})"),
            inner,
            batch,
        }
    }

    /// Generates a synthetic dataset and wraps it in one call.
    ///
    /// # Errors
    ///
    /// Returns [`RankDeficientError`] if the generated design matrix is rank
    /// deficient.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn synthetic(
        m: usize,
        d: usize,
        noise: f64,
        batch: usize,
        seed: u64,
    ) -> Result<Self, RankDeficientError> {
        Ok(Self::new(
            LinearRegression::synthetic(m, d, noise, seed)?,
            batch,
        ))
    }

    /// The batch size `b`.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The wrapped single-sample workload.
    #[must_use]
    pub fn inner(&self) -> &LinearRegression {
        &self.inner
    }
}

impl GradientOracle for MinibatchRegression {
    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        let d = self.dimension();
        assert_eq!(x.len(), d, "x dimension mismatch");
        assert_eq!(out.len(), d, "out dimension mismatch");
        out.fill(0.0);
        let data = self.inner.data();
        for _ in 0..self.batch {
            let i = rng.gen_range(0..data.len());
            let a = &data.features[i];
            let r = asgd_math::vec::dot(a, x) - data.targets[i];
            for (o, &ai) in out.iter_mut().zip(a) {
                *o += r * ai;
            }
        }
        let inv_b = 1.0 / self.batch as f64;
        for o in out.iter_mut() {
            *o *= inv_b;
        }
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        self.inner.full_gradient(x, out);
    }

    fn objective(&self, x: &[f64]) -> f64 {
        self.inner.objective(x)
    }

    fn minimizer(&self) -> &[f64] {
        self.inner.minimizer()
    }

    fn constants(&self, radius: f64) -> Constants {
        // Averaging cannot increase E‖g̃‖² (Jensen), so the single-sample
        // bound remains valid; c and L carry over unchanged.
        self.inner.constants(radius)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Minibatch averaging over *any* inner oracle, sparsity-preserving.
///
/// `g̃(x) = (1/b)·Σ_{k<b} g̃_inner(x)` with `b` independent inner samples.
/// Unlike [`MinibatchRegression`] (which is tied to least squares and always
/// dense), this wrapper keeps the inner oracle's sparse fast path: a batch
/// over a Δ-sparse inner oracle is at most `b·Δ`-sparse, so the shared
/// memory update cost stays O(b·Δ) instead of O(d). Same `c`/`L` as the
/// inner oracle; the inner single-sample `M²` stays a valid (conservative)
/// bound since averaging only shrinks second moments.
#[derive(Debug, Clone, PartialEq)]
pub struct Minibatch<O> {
    inner: O,
    batch: usize,
    name: String,
}

impl<O: GradientOracle> Minibatch<O> {
    /// Wraps `inner` with batch size `b ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn new(inner: O, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        Self {
            name: format!("minibatch-{}(b={batch})", inner.name()),
            inner,
            batch,
        }
    }

    /// The batch size `b`.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The wrapped oracle.
    #[must_use]
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: GradientOracle> GradientOracle for Minibatch<O> {
    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        let d = self.dimension();
        assert_eq!(x.len(), d, "x dimension mismatch");
        assert_eq!(out.len(), d, "out dimension mismatch");
        out.fill(0.0);
        if let Some(delta) = self.inner.max_support() {
            // Δ-sparse inner: route each sample through the sparse interface
            // so this costs O(b·Δ), not O(b·d).
            let mut sample = SparseGrad::with_capacity(delta);
            for _ in 0..self.batch {
                self.inner.sample_gradient_sparse(&x, rng, &mut sample);
                for &(j, g) in sample.entries() {
                    out[j] += g;
                }
            }
        } else {
            // Dense inner: sample directly into one reused scratch (the
            // sparse fallback would re-materialise the view and allocate
            // per sample for the identical RNG stream).
            let mut sample = vec![0.0; d];
            for _ in 0..self.batch {
                self.inner.sample_gradient(x, rng, &mut sample);
                for (o, &g) in out.iter_mut().zip(&sample) {
                    *o += g;
                }
            }
        }
        let inv_b = 1.0 / self.batch as f64;
        for o in out.iter_mut() {
            *o *= inv_b;
        }
    }

    fn max_support(&self) -> Option<usize> {
        // b·Δ bounds the *entry count* of the sparse gradient (duplicate
        // coordinates stay separate entries), so it must not be capped at d.
        self.inner
            .max_support()
            .map(|s| s.saturating_mul(self.batch))
    }

    fn sample_gradient_sparse(
        &self,
        view: &dyn ModelView,
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        assert_eq!(
            view.dimension(),
            self.dimension(),
            "view dimension mismatch"
        );
        out.clear();
        let mut sample = SparseGrad::with_capacity(self.inner.max_support().unwrap_or(1));
        for _ in 0..self.batch {
            self.inner.sample_gradient_sparse(view, rng, &mut sample);
            for &(j, g) in sample.entries() {
                out.push(j, g);
            }
        }
        out.scale(1.0 / self.batch as f64);
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        self.inner.full_gradient(x, out);
    }

    fn objective(&self, x: &[f64]) -> f64 {
        self.inner.objective(x)
    }

    fn minimizer(&self) -> &[f64] {
        self.inner.minimizer()
    }

    fn constants(&self, radius: f64) -> Constants {
        // Jensen: averaging cannot increase E‖g̃‖²; c and L carry over.
        self.inner.constants(radius)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::unbiasedness_gap;
    use crate::SparseQuadratic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(batch: usize) -> MinibatchRegression {
        MinibatchRegression::synthetic(100, 4, 0.1, batch, 5).expect("well-conditioned")
    }

    #[test]
    fn batch_one_matches_single_sample_statistics() {
        let w = workload(1);
        assert_eq!(w.batch(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let gap = unbiasedness_gap(&w, &[0.5, -0.5, 0.2, 0.0], &mut rng, 40_000);
        assert!(gap < 0.2, "gap {gap}");
    }

    #[test]
    fn minibatch_gradient_is_unbiased() {
        let w = workload(8);
        let mut rng = StdRng::seed_from_u64(2);
        let gap = unbiasedness_gap(&w, &[0.3, 0.1, -0.7, 0.4], &mut rng, 20_000);
        assert!(gap < 0.2, "gap {gap}");
    }

    #[test]
    fn larger_batches_reduce_variance() {
        let w1 = workload(1);
        let w16 = workload(16);
        let x = [0.5, -0.5, 0.2, 0.1];
        let measure = |w: &MinibatchRegression, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = vec![0.0; 4];
            let mut stats = asgd_math::OnlineStats::new();
            let mut exact = vec![0.0; 4];
            w.full_gradient(&x, &mut exact);
            for _ in 0..5_000 {
                w.sample_gradient(&x, &mut rng, &mut g);
                stats.push(asgd_math::vec::l2_dist_sq(&g, &exact));
            }
            stats.mean()
        };
        let v1 = measure(&w1, 3);
        let v16 = measure(&w16, 3);
        assert!(
            v16 < v1 / 4.0,
            "batch-16 variance {v16} should be ≪ single-sample {v1}"
        );
    }

    #[test]
    fn delegated_quantities_match_inner() {
        let w = workload(4);
        assert_eq!(w.minimizer(), w.inner().minimizer());
        assert_eq!(w.objective(&[0.0; 4]), w.inner().objective(&[0.0; 4]));
        let k = w.constants(1.0);
        let ki = w.inner().constants(1.0);
        assert_eq!(k.c, ki.c);
        assert_eq!(k.l, ki.l);
        assert!(w.name().contains("b=4"));
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn rejects_zero_batch() {
        let _ = workload(0);
    }

    fn sparse_batch(batch: usize) -> Minibatch<SparseQuadratic> {
        Minibatch::new(SparseQuadratic::uniform(8, 1.0, 0.3).unwrap(), batch)
    }

    #[test]
    fn generic_minibatch_support_is_b_delta() {
        assert_eq!(sparse_batch(3).max_support(), Some(3));
        assert_eq!(
            sparse_batch(100).max_support(),
            Some(100),
            "b·Δ bounds entry count (duplicates included), so no cap at d"
        );
        let dense = Minibatch::new(crate::NoisyQuadratic::new(4, 0.1).unwrap(), 5);
        assert_eq!(dense.max_support(), None, "dense inner stays dense");
        assert!(sparse_batch(2).name().contains("b=2"));
        assert_eq!(sparse_batch(2).batch(), 2);
        assert_eq!(sparse_batch(2).inner().dimension(), 8);
    }

    #[test]
    fn batch_larger_than_dimension_respects_the_entry_bound() {
        // b > d: every sample contributes an entry (duplicates allowed), so
        // len() can exceed d but never the declared b·Δ bound.
        let w = Minibatch::new(SparseQuadratic::uniform(4, 1.0, 0.2).unwrap(), 9);
        let x = vec![1.0; 4];
        let mut sparse = SparseGrad::new();
        for seed in 0..20 {
            w.sample_gradient_sparse(&x, &mut StdRng::seed_from_u64(seed), &mut sparse);
            assert_eq!(sparse.len(), 9, "one entry per inner sample");
            assert!(sparse.len() <= w.max_support().unwrap());
        }
    }

    #[test]
    fn dense_inner_minibatch_matches_per_sample_accumulation() {
        // The dense-inner path must consume the same RNG stream as b direct
        // inner samples and average them exactly.
        let inner = crate::NoisyQuadratic::new(3, 0.5).unwrap();
        let w = Minibatch::new(inner.clone(), 4);
        let x = [1.0, -2.0, 0.5];
        let mut got = vec![0.0; 3];
        w.sample_gradient(&x, &mut StdRng::seed_from_u64(7), &mut got);
        let mut rng = StdRng::seed_from_u64(7);
        let mut expected = vec![0.0; 3];
        let mut g = vec![0.0; 3];
        for _ in 0..4 {
            inner.sample_gradient(&x, &mut rng, &mut g);
            for (e, &gi) in expected.iter_mut().zip(&g) {
                *e += gi;
            }
        }
        for e in &mut expected {
            *e *= 0.25;
        }
        for (a, b) in got.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn generic_minibatch_sparse_and_dense_paths_agree() {
        let w = sparse_batch(4);
        let x = vec![1.0, -0.5, 2.0, 0.25, -1.0, 0.75, 3.0, -2.0];
        for seed in 0..10 {
            let mut dense = vec![0.0; 8];
            w.sample_gradient(&x, &mut StdRng::seed_from_u64(seed), &mut dense);
            let mut sparse = SparseGrad::new();
            w.sample_gradient_sparse(&&x[..], &mut StdRng::seed_from_u64(seed), &mut sparse);
            assert!(sparse.len() <= 4);
            let mut densified = vec![0.0; 8];
            sparse.densify_into(&mut densified);
            for (j, (a, b)) in dense.iter().zip(&densified).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "entry {j}: dense {a} vs sparse {b}"
                );
            }
        }
    }

    #[test]
    fn generic_minibatch_is_unbiased() {
        let w = sparse_batch(4);
        let mut rng = StdRng::seed_from_u64(3);
        let x = [0.5, -0.5, 0.2, 0.1, 1.0, -1.0, 0.0, 0.3];
        let gap = unbiasedness_gap(&w, &x, &mut rng, 60_000);
        assert!(gap < 0.15, "gap {gap}");
    }
}
