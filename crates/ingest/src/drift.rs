//! Drift injection: shifting the ground truth the live stream is drawn
//! from, at a scheduled point.
//!
//! Continual learning is only interesting when the world moves. A
//! [`DriftSpec`] schedules one move — at the n-th acknowledged
//! observation, or after a wall-clock delay — and describes how the
//! generator's minimizer θ* changes ([`DriftKind`]). The shared
//! [`GroundTruth`] is what producers label against *and* what the
//! recovery monitor measures distance to, so the instant drift fires,
//! every new observation teaches the new world and the measured distance
//! jumps — the gap the trainer then has to close again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// When the drift fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftTrigger {
    /// After this many observations have been acknowledged by the server
    /// (counted across the whole producer fleet).
    AtObservation(u64),
    /// After this many wall-clock seconds of fleet runtime.
    AfterElapsed(f64),
}

/// How the ground-truth minimizer moves.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftKind {
    /// θ* → −θ*: the adversarial flip — every learned coordinate is now
    /// maximally wrong, so the pre-drift model starts at the far side of
    /// the new optimum.
    Negate,
    /// θ*ⱼ → θ*ⱼ + δ for every coordinate.
    Shift(f64),
    /// θ* → the given vector (must match the model dimension).
    Replace(Vec<f64>),
}

impl DriftKind {
    /// Canonical label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Negate => "negate",
            Self::Shift(_) => "shift",
            Self::Replace(_) => "replace",
        }
    }
}

/// One scheduled drift: when it fires and what it does.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSpec {
    /// When the drift fires.
    pub trigger: DriftTrigger,
    /// What happens to θ*.
    pub kind: DriftKind,
}

impl DriftSpec {
    /// A negation drift at the given acknowledged-observation count.
    #[must_use]
    pub fn negate_at(observations: u64) -> Self {
        Self {
            trigger: DriftTrigger::AtObservation(observations),
            kind: DriftKind::Negate,
        }
    }

    /// A negation drift after the given number of seconds.
    #[must_use]
    pub fn negate_after(secs: f64) -> Self {
        Self {
            trigger: DriftTrigger::AfterElapsed(secs),
            kind: DriftKind::Negate,
        }
    }
}

/// The minimizer θ* the stream is generated from, shared between the
/// producer fleet (labels) and the recovery monitor (distance target).
/// Every mutation bumps a version counter so samples can record which
/// world they measured against.
#[derive(Debug)]
pub struct GroundTruth {
    theta: Mutex<Vec<f64>>,
    version: AtomicU64,
}

impl GroundTruth {
    /// A ground truth starting at `theta`.
    #[must_use]
    pub fn new(theta: Vec<f64>) -> Self {
        Self {
            theta: Mutex::new(theta),
            version: AtomicU64::new(0),
        }
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.lock().len()
    }

    /// A copy of the current θ*.
    #[must_use]
    pub fn current(&self) -> Vec<f64> {
        self.lock().clone()
    }

    /// How many drifts have been applied so far.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// `‖x − θ*‖²` against the current ground truth.
    #[must_use]
    pub fn dist_sq(&self, x: &[f64]) -> f64 {
        let theta = self.lock();
        x.iter()
            .zip(theta.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Applies one drift and bumps the version. A `Replace` with the
    /// wrong dimension is ignored (the old θ* stands) — drift injection
    /// races live producers and must never corrupt the generator.
    pub fn apply(&self, kind: &DriftKind) {
        let mut theta = self.lock();
        match kind {
            DriftKind::Negate => theta.iter_mut().for_each(|v| *v = -*v),
            DriftKind::Shift(delta) => theta.iter_mut().for_each(|v| *v += delta),
            DriftKind::Replace(new) => {
                if new.len() != theta.len() {
                    return;
                }
                theta.clone_from(new);
            }
        }
        drop(theta);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<f64>> {
        self.theta.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifts_move_theta_and_bump_the_version() {
        let gt = GroundTruth::new(vec![1.0, -2.0]);
        assert_eq!(gt.version(), 0);
        assert_eq!(gt.dimension(), 2);
        gt.apply(&DriftKind::Negate);
        assert_eq!(gt.current(), vec![-1.0, 2.0]);
        gt.apply(&DriftKind::Shift(0.5));
        assert_eq!(gt.current(), vec![-0.5, 2.5]);
        gt.apply(&DriftKind::Replace(vec![3.0, 4.0]));
        assert_eq!(gt.current(), vec![3.0, 4.0]);
        assert_eq!(gt.version(), 3);
        // Wrong-dimension replace is ignored, version included.
        gt.apply(&DriftKind::Replace(vec![1.0]));
        assert_eq!(gt.current(), vec![3.0, 4.0]);
        assert_eq!(gt.version(), 3);
    }

    #[test]
    fn dist_sq_measures_against_the_current_world() {
        let gt = GroundTruth::new(vec![1.0, 1.0]);
        assert!((gt.dist_sq(&[1.0, 1.0])).abs() < 1e-12);
        assert!((gt.dist_sq(&[0.0, 0.0]) - 2.0).abs() < 1e-12);
        gt.apply(&DriftKind::Negate);
        // The same point is now far from the (moved) optimum.
        assert!((gt.dist_sq(&[1.0, 1.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn spec_constructors_and_labels() {
        let at = DriftSpec::negate_at(100);
        assert_eq!(at.trigger, DriftTrigger::AtObservation(100));
        assert_eq!(at.kind.label(), "negate");
        let after = DriftSpec::negate_after(0.25);
        assert_eq!(after.trigger, DriftTrigger::AfterElapsed(0.25));
        assert_eq!(DriftKind::Shift(1.0).label(), "shift");
        assert_eq!(DriftKind::Replace(vec![]).label(), "replace");
    }
}
