//! Online model serving over asynchronous SGD — **inference reads racing
//! training writes on the very shared model the convergence bounds
//! describe**.
//!
//! The paper (Alistarh, De Sa, Konstantinov; PODC 2018) proves that the
//! lock-free iterate stays useful while other processes concurrently mutate
//! it under bounded delay τ. Everywhere else in this workspace the model is
//! read *after* a run finishes (`RunReport::final_model`); this crate is the
//! serving layer that reads it *during* the run:
//!
//! * [`ModelService`] — owns a training run as a job (via
//!   `Driver::submit_with` + `RunHandle`) and hands out live
//!   [`ModelReader`](asgd_driver::ModelReader)s into the executing shared
//!   model;
//! * [`ModelRegistry`] — the multi-tenant generalisation: many named
//!   concurrent training runs sharing one `Driver`, created/attached/
//!   dropped by name, addressed by compact [`ModelId`]s (what the
//!   `asgd-net` wire protocol puts in request frames), each with its own
//!   per-model [`ReadMode`] — including **streaming** models
//!   ([`ModelRegistry::create_streaming`]) whose trainer consumes live
//!   labeled observations from a bounded ingress queue (the
//!   continual-learning path; see `asgd-ingest`);
//! * [`ReadMode`] — `Live` (per-entry atomic reads; the inconsistent-view
//!   semantics the paper's adversary allows) vs `Snapshot` (epoch-versioned
//!   double-buffered copies published every
//!   [`ServeSpec::publish_stride`] claims; one coherent vector per query);
//! * [`ServeSpec`] + [`run_workload`] — a closed-loop or fixed-rate client
//!   fleet ([`QueryClient`]s issuing dot-product scores, held-out
//!   predictions, or raw parameter fetches) hammering the service while
//!   training runs underneath;
//! * [`ServeReport`] — per-query telemetry (latency p50/p90/p99/p999,
//!   throughput, snapshot *staleness* in training iterations) plus the
//!   training run's own report, with exact JSON round-trip.
//!
//! Serving is pure observation: attaching a service never consumes RNG
//! state or reorders updates, so a served single-threaded run is
//! bit-identical to an unserved one (tested in `tests/serving.rs`).
//!
//! # Example
//!
//! ```
//! use asgd_driver::{BackendKind, RunSpec};
//! use asgd_oracle::OracleSpec;
//! use asgd_serve::{QueryKind, ReadMode, ServeSpec};
//!
//! let train = RunSpec::new(
//!     OracleSpec::new("sparse-quadratic", 256).sigma(0.0),
//!     BackendKind::Hogwild,
//! )
//! .threads(2)
//! .iterations(500_000)
//! .learning_rate(0.002)
//! .x0(vec![1.0; 256])
//! .seed(7);
//!
//! let report = ServeSpec::new(train)
//!     .mode(ReadMode::Snapshot)
//!     .query(QueryKind::DotScore)
//!     .clients(2)
//!     .duration_secs(0.05)
//!     .publish_every(1_000)
//!     .run()
//!     .expect("serves");
//! assert!(report.queries > 0);
//! assert_eq!(asgd_serve::ServeReport::from_json(&report.to_json()).unwrap(), report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod registry;
pub mod report;
pub mod service;
pub mod spec;
pub mod workload;

pub use error::ServeError;
pub use registry::{ModelEntry, ModelId, ModelRegistry, ModelStats};
pub use report::{LatencySummary, ServeReport, StalenessSummary};
pub use service::ModelService;
pub use spec::{Arrival, QueryKind, ReadMode, ServeSpec};
pub use workload::{run_workload, QueryClient, QueryOutcome};
