//! Adversarial robustness campaign for the workspace: bounded-preemption
//! **model checking** of its concurrent protocols, plus a seeded
//! **fault-injection campaign** against the serving-net stack.
//!
//! The paper's setting is adversarial scheduling — §2's strong adaptive
//! adversary chooses every interleaving. The `asgd-shmem` simulator plays
//! that adversary over simulated SGD programs; this crate turns the same
//! idea on the workspace's *own* concurrent code:
//!
//! * [`explore`] — a DFS [`Explorer`] that enumerates **every** schedule
//!   of a [`Schedulable`] protocol within a preemption bound, checks an
//!   invariant after each atomic step, and minimizes any counterexample
//!   into a replayable trace in the shmem simulator's schedule vocabulary
//!   ([`asgd_shmem::sched::encode_schedule`]).
//! * [`snapshot_model`] — the [`SnapshotCell`](asgd_hogwild::SnapshotCell)
//!   seqlock publish/read protocol, with a deliberately weakened publish
//!   fence ([`FenceMode::WeakPublish`]) the explorer must catch (a torn
//!   snapshot accepted by a reader).
//! * [`atomic_model`] — the [`AtomicF64`](asgd_hogwild::AtomicF64)
//!   CAS-loop `fetch_add`, conservation at quiescence, with a blind-store
//!   bug mode ([`AddMode::BlindStore`]) that loses updates.
//! * [`registry_model`] — the
//!   [`ModelRegistry`](asgd_serve::ModelRegistry) create/query/drop
//!   lifecycle (map coherence, monotone ids, no leaked services), with a
//!   split check-then-insert bug mode ([`RegistryMode::SplitCheck`]).
//! * [`ingest_model`] — the bounded
//!   [`IngressQueue`](asgd_oracle::IngressQueue) push/pop protocol under
//!   every backpressure policy (bounded depth, no loss or duplication,
//!   FIFO, drop accounting), with a non-atomic check-then-push bug mode
//!   ([`LenMode::SplitCheck`]) that overflows the capacity under one
//!   adversarial preemption.
//! * [`sharded_model`] — the
//!   [`ShardedModel`](asgd_hogwild::ShardedModel) per-shard progress
//!   counters and their `coherent_update_counts` double-collect read
//!   protocol (coherence of the published cross-shard vector), with a
//!   validation-free split-read bug mode ([`ScanMode::SplitRead`]) that
//!   publishes a torn snapshot under one adversarial preemption.
//! * [`netchaos`] — [`run_net_chaos`]: a fleet of retrying clients versus
//!   a server under seeded [`FaultPlan`](asgd_net::FaultPlan) injection
//!   (partial writes, short reads, delays, mid-frame disconnects),
//!   scored bit-for-bit; the bar is **zero wrong answers** under churn.
//!
//! Verification here is *within the preemption bound*: a verified report
//! means no schedule with at most `k` preemptions violates the invariant
//! — the classic context-bounded guarantee, which in practice catches the
//! bugs that matter because almost all real concurrency bugs need very
//! few preemptions placed adversarially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic_model;
pub mod explore;
pub mod ingest_model;
pub mod netchaos;
pub mod registry_model;
pub mod sharded_model;
pub mod snapshot_model;
pub mod telemetry_model;

pub use atomic_model::{AddMode, AtomicAddModel};
pub use explore::{
    minimize, replay, Counterexample, ExploreReport, Explorer, ReplayOutcome, Schedulable,
    StepStatus, Violation,
};
pub use ingest_model::{IngestQueueModel, LenMode};
pub use netchaos::{run_net_chaos, NetChaosError, NetChaosReport, NetChaosSpec};
pub use registry_model::{RegistryMode, RegistryModel};
pub use sharded_model::{ScanMode, ShardedCounterModel};
pub use snapshot_model::{FenceMode, SnapshotModel};
pub use telemetry_model::{CollectMode, TelemetryCellModel};
