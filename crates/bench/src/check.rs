//! `bench-check` — the committed-artifact regression gate.
//!
//! The repo commits full-run serving artifacts (`BENCH_serving.json`,
//! `BENCH_net.json`). This module re-runs the *quick* sweeps fresh and
//! compares every cell whose configuration appears in both the fresh
//! sweep and the committed artifact: answered throughput must not drop,
//! and p99 latency must not rise, by more than the tolerance (default
//! 30%; p99 breaches additionally need [`P99_NOISE_FLOOR_NS`] of
//! absolute slack before they count). Cells only one side measured (the
//! full grids are wider than the
//! quick ones) are skipped; the deliberately saturated `overload` cell is
//! excluded on principle — its latency is governed by the shedding
//! policy, not by code speed. An empty intersection is itself a failure:
//! a gate that compares nothing gates nothing.

use crate::experiments::{serving, serving_net};
use asgd_driver::json::{self, Value};
use asgd_driver::report::{field_f64, field_str, field_u64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Default allowed regression: 30% on throughput and on p99.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Absolute p99 slack beneath which a ratio breach is not a failure.
/// Tail quantiles of sub-second quick cells on a shared core move by
/// hundreds of µs from scheduler noise alone; a regression must clear
/// both the relative ceiling *and* this absolute floor to be real.
pub const P99_NOISE_FLOOR_NS: u64 = 1_000_000; // 1 ms

/// One artifact's measured baseline for a cell.
#[derive(Debug, Clone, Copy)]
struct Baseline {
    qps: f64,
    p99_ns: u64,
}

/// The gate's outcome: human-readable per-cell lines plus the failures
/// that make it red.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Per-cell comparison lines (and skip notes), in artifact order.
    pub lines: Vec<String>,
    /// Regressions and structural problems. Empty means the gate passes.
    pub failures: Vec<String>,
}

impl CheckReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if self.passed() {
            let _ = writeln!(out, "bench-check: PASS");
        } else {
            for f in &self.failures {
                let _ = writeln!(out, "FAIL: {f}");
            }
            let _ = writeln!(
                out,
                "bench-check: FAIL ({} regression(s))",
                self.failures.len()
            );
        }
        out
    }
}

fn load_rows(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let root = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let rows = root
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: missing `rows` array", path.display()))?;
    Ok(rows.to_vec())
}

fn committed_map(
    rows: &[Value],
    key_of: impl Fn(&Value) -> Result<Option<String>, asgd_driver::DecodeError>,
) -> Result<BTreeMap<String, Baseline>, String> {
    let mut map = BTreeMap::new();
    for row in rows {
        let Some(key) = key_of(row).map_err(|e| e.to_string())? else {
            continue;
        };
        map.insert(
            key,
            Baseline {
                qps: field_f64(row, "qps").map_err(|e| e.to_string())?,
                p99_ns: field_u64(row, "p99_ns").map_err(|e| e.to_string())?,
            },
        );
    }
    Ok(map)
}

/// Compares fresh cells against committed baselines; appends one line per
/// intersecting cell and failure entries for regressions past `tol`.
fn compare(
    label: &str,
    committed: &BTreeMap<String, Baseline>,
    fresh: &BTreeMap<String, Baseline>,
    tol: f64,
    report: &mut CheckReport,
) {
    let mut matched = 0usize;
    for (key, now) in fresh {
        let Some(base) = committed.get(key) else {
            continue;
        };
        matched += 1;
        let qps_ratio = if base.qps > 0.0 {
            now.qps / base.qps
        } else {
            1.0
        };
        let p99_ratio = if base.p99_ns > 0 {
            now.p99_ns as f64 / base.p99_ns as f64
        } else {
            1.0
        };
        let mut verdict = "ok";
        if qps_ratio < 1.0 - tol {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "{label} {key}: throughput {:.0}/s vs committed {:.0}/s (x{qps_ratio:.2}, floor x{:.2})",
                now.qps,
                base.qps,
                1.0 - tol
            ));
        }
        if p99_ratio > 1.0 + tol && now.p99_ns > base.p99_ns.saturating_add(P99_NOISE_FLOOR_NS) {
            verdict = "REGRESSED";
            report.failures.push(format!(
                "{label} {key}: p99 {}ns vs committed {}ns (x{p99_ratio:.2}, ceiling x{:.2})",
                now.p99_ns,
                base.p99_ns,
                1.0 + tol
            ));
        }
        report.lines.push(format!(
            "{label} {key}: qps x{qps_ratio:.2}, p99 x{p99_ratio:.2} [{verdict}]"
        ));
    }
    report.lines.push(format!(
        "{label}: compared {matched} cell(s) ({} fresh, {} committed)",
        fresh.len(),
        committed.len()
    ));
    if matched == 0 {
        report.failures.push(format!(
            "{label}: no comparable cells — the gate is vacuous"
        ));
    }
}

fn serving_fresh() -> BTreeMap<String, Baseline> {
    serving::sweep(true)
        .into_iter()
        .map(|r| {
            (
                format!(
                    "clients={},mode={},threads={}",
                    r.clients, r.mode, r.trainer_threads
                ),
                Baseline {
                    qps: r.qps,
                    p99_ns: r.p99_ns,
                },
            )
        })
        .collect()
}

fn serving_net_fresh() -> BTreeMap<String, Baseline> {
    serving_net::sweep(true)
        .into_iter()
        .filter(|r| r.cell == "grid")
        .map(|r| {
            (
                format!("clients={},mode={},models={}", r.clients, r.mode, r.models),
                Baseline {
                    qps: r.qps,
                    p99_ns: r.p99_ns,
                },
            )
        })
        .collect()
}

/// Runs the full gate: fresh quick sweeps of `serving` and `serving-net`
/// compared against `BENCH_serving.json` and `BENCH_net.json` in `dir`.
///
/// Missing or malformed artifacts are failures — they are committed files
/// in this repository, so their absence means the gate's baseline is gone.
#[must_use]
pub fn run_bench_check(dir: &Path, tol: f64) -> CheckReport {
    let mut report = CheckReport::default();
    report.lines.push(format!("tolerance: {:.0}%", tol * 100.0));

    match load_rows(&dir.join("BENCH_serving.json")).and_then(|rows| {
        committed_map(&rows, |row| {
            Ok(Some(format!(
                "clients={},mode={},threads={}",
                field_u64(row, "clients")?,
                field_str(row, "mode")?,
                field_u64(row, "trainer_threads")?
            )))
        })
    }) {
        Ok(committed) => compare("serving", &committed, &serving_fresh(), tol, &mut report),
        Err(e) => report.failures.push(format!("serving baseline: {e}")),
    }

    match load_rows(&dir.join("BENCH_net.json")).and_then(|rows| {
        committed_map(&rows, |row| {
            if field_str(row, "cell")? != "grid" {
                return Ok(None);
            }
            Ok(Some(format!(
                "clients={},mode={},models={}",
                field_u64(row, "clients")?,
                field_str(row, "mode")?,
                field_u64(row, "models")?
            )))
        })
    }) {
        Ok(committed) => compare(
            "serving-net",
            &committed,
            &serving_net_fresh(),
            tol,
            &mut report,
        ),
        Err(e) => report.failures.push(format!("serving-net baseline: {e}")),
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(qps: f64, p99_ns: u64) -> Baseline {
        Baseline { qps, p99_ns }
    }

    #[test]
    fn identical_measurements_pass() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &base.clone(), DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn regressions_past_tolerance_fail_with_named_cell() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 5_000_000))].into();
        let slow: BTreeMap<_, _> = [("a".to_string(), cell(600.0, 9_000_000))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &slow, DEFAULT_TOLERANCE, &mut report);
        assert_eq!(report.failures.len(), 2, "{report:?}");
        assert!(report.failures[0].contains("t a:"), "{report:?}");
        assert!(report.render().contains("bench-check: FAIL"));
    }

    #[test]
    fn sub_floor_tail_noise_passes_even_past_the_ratio_ceiling() {
        // 500ns → 900ns is x1.8 but only 400ns absolute — scheduler
        // noise on a tail quantile, not a regression.
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let noisy: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 900))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &noisy, DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn within_tolerance_noise_passes() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let noisy: BTreeMap<_, _> = [("a".to_string(), cell(750.0, 620))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &noisy, DEFAULT_TOLERANCE, &mut report);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn disjoint_grids_make_the_gate_fail_as_vacuous() {
        let base: BTreeMap<_, _> = [("a".to_string(), cell(1000.0, 500))].into();
        let other: BTreeMap<_, _> = [("b".to_string(), cell(1000.0, 500))].into();
        let mut report = CheckReport::default();
        compare("t", &base, &other, DEFAULT_TOLERANCE, &mut report);
        assert!(!report.passed());
        assert!(report.failures[0].contains("vacuous"), "{report:?}");
    }

    #[test]
    fn missing_artifact_is_a_failure() {
        let report = run_bench_check(Path::new("/nonexistent-dir-for-test"), DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("BENCH_serving.json")),
            "{report:?}"
        );
    }
}
