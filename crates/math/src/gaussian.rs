//! Gaussian sampling via the Box–Muller transform.
//!
//! The §5 lower-bound construction of the paper uses noisy gradients
//! `g̃(x) = x − ũ` with `ũ ~ N(0, σ²)`. The sanctioned dependency set does not
//! include `rand_distr`, so the transform is implemented here directly. The
//! polar (Marsaglia) variant is used: it avoids trigonometric calls and is
//! numerically well behaved.

use rand::Rng;

/// A normal distribution `N(mean, std_dev²)` that can sample from any
/// [`rand::Rng`].
///
/// # Example
///
/// ```
/// use asgd_math::Normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let n = Normal::new(0.0, 1.0).expect("std dev is non-negative");
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error returned by [`Normal::new`] when the standard deviation is negative
/// or non-finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStdDevError;

impl std::fmt::Display for InvalidStdDevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for InvalidStdDevError {}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStdDevError`] if `std_dev` is negative, NaN or
    /// infinite. A `std_dev` of zero is allowed and yields a point mass at
    /// `mean` (useful for the noise-free `σ = 0` case analysed in §5).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, InvalidStdDevError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(InvalidStdDevError);
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Returns the mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Returns the standard deviation of the distribution.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Fills `out` with independent samples.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for o in out.iter_mut() {
            *o = self.sample(rng);
        }
    }
}

/// Draws one standard-normal sample using the Marsaglia polar method.
///
/// Each call consumes a variable number of uniforms (expected ≈ 2.55); the
/// second generated variate is intentionally discarded to keep the sampler
/// stateless, which keeps per-process RNG streams trivially reproducible in
/// the simulator.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_std_dev() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zero_std_dev_is_point_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(3.25, 0.0).unwrap();
        for _ in 0..16 {
            assert_eq!(n.sample(&mut rng), 3.25);
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let n = Normal::new(1.5, 2.5).unwrap();
        assert_eq!(n.mean(), 1.5);
        assert_eq!(n.std_dev(), 2.5);
        let s = Normal::standard();
        assert_eq!((s.mean(), s.std_dev()), (0.0, 1.0));
    }

    #[test]
    fn sample_moments_match() {
        // 100k samples: sample mean within ~4σ/√n and variance within a few %.
        let mut rng = StdRng::seed_from_u64(42);
        let n = Normal::new(-2.0, 3.0).unwrap();
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(n.sample(&mut rng));
        }
        assert!(
            (stats.mean() + 2.0).abs() < 0.05,
            "mean {} too far from -2",
            stats.mean()
        );
        assert!(
            (stats.variance().sqrt() - 3.0).abs() < 0.05,
            "std {} too far from 3",
            stats.variance().sqrt()
        );
    }

    #[test]
    fn standard_normal_tail_mass_is_plausible() {
        // P(|Z| > 2) ≈ 4.55%; check it lands in a generous window.
        let mut rng = StdRng::seed_from_u64(9);
        let total = 50_000;
        let tail = (0..total)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        let frac = tail as f64 / total as f64;
        assert!((0.03..0.06).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn sample_into_fills_all_entries() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = Normal::standard();
        let mut buf = vec![f64::NAN; 32];
        n.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let n = Normal::standard();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..8).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..8).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
