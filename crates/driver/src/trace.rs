//! [`TraceObserver`] — a [`RunObserver`] that writes
//! every [`RunEvent`] as a structured JSONL span into an
//! [`asgd_telemetry::TraceSink`].
//!
//! One sink can be shared by many observers (one per run), so a multi-model
//! serving process produces a single trace file whose lines interleave by
//! wall time but replay into a monotone per-run timeline
//! ([`asgd_telemetry::replay`] + filter by `run`). Field names follow the
//! event's own field names; the span's `event` string is the kebab-case
//! variant name (`started`, `progress`, `sample`, `snapshot`, `drift`,
//! `shed-tier`, `queue-saturated`, `finished`).

use crate::session::{RunEvent, RunObserver};
use asgd_telemetry::{FieldValue, TraceSink};
use std::sync::Arc;

/// Streams one run's lifecycle events into a shared [`TraceSink`].
#[derive(Debug, Clone)]
pub struct TraceObserver {
    sink: Arc<TraceSink>,
    run: String,
}

impl TraceObserver {
    /// An observer labelling its spans with run/model id `run`.
    #[must_use]
    pub fn new(sink: Arc<TraceSink>, run: impl Into<String>) -> Self {
        Self {
            sink,
            run: run.into(),
        }
    }

    /// The sink this observer writes to (for flushing at shutdown).
    #[must_use]
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }
}

impl RunObserver for TraceObserver {
    fn on_event(&self, event: &RunEvent) {
        let u = FieldValue::U64;
        let f = FieldValue::F64;
        match event {
            RunEvent::Started {
                backend,
                oracle,
                threads,
                iterations,
                seed,
            } => self.sink.emit(
                &self.run,
                "started",
                &[
                    ("backend", FieldValue::Str(backend.to_string())),
                    ("oracle", FieldValue::Str(oracle.clone())),
                    ("threads", u(*threads as u64)),
                    ("iterations", u(*iterations)),
                    ("seed", u(*seed)),
                ],
            ),
            RunEvent::Progress(p) => self.sink.emit(
                &self.run,
                "progress",
                &[
                    ("iterations", u(p.iterations)),
                    ("evaluations", u(p.evaluations)),
                    ("dist_sq", f(p.dist_sq)),
                    ("elapsed_secs", f(p.elapsed_secs)),
                ],
            ),
            RunEvent::TrajectorySample(s) => self.sink.emit(
                &self.run,
                "sample",
                &[
                    ("index", u(s.index)),
                    ("dist_sq", f(s.dist_sq)),
                    ("elapsed_secs", f(s.elapsed_secs)),
                ],
            ),
            RunEvent::SnapshotPublished { version, iteration } => self.sink.emit(
                &self.run,
                "snapshot",
                &[("version", u(*version)), ("iteration", u(*iteration))],
            ),
            RunEvent::DriftInjected {
                iteration,
                elapsed_secs,
            } => self.sink.emit(
                &self.run,
                "drift",
                &[
                    ("iteration", u(*iteration)),
                    ("elapsed_secs", f(*elapsed_secs)),
                ],
            ),
            RunEvent::ShedTierChanged {
                tier,
                p99_ns,
                slo_ns,
            } => self.sink.emit(
                &self.run,
                "shed-tier",
                &[
                    ("tier", u(u64::from(*tier))),
                    ("p99_ns", u(*p99_ns)),
                    ("slo_ns", u(*slo_ns)),
                ],
            ),
            RunEvent::QueueSaturated { depth, capacity } => self.sink.emit(
                &self.run,
                "queue-saturated",
                &[("depth", u(*depth)), ("capacity", u(*capacity))],
            ),
            RunEvent::Finished(report) => self.sink.emit(
                &self.run,
                "finished",
                &[
                    ("iterations", u(report.iterations)),
                    ("final_dist_sq", f(report.final_dist_sq)),
                    ("wall_time_secs", f(report.wall_time_secs)),
                    (
                        "stop",
                        FieldValue::Str(report.stop.clone().unwrap_or_default()),
                    ),
                ],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Driver, SessionCtx};
    use crate::spec::{BackendKind, RunSpec, SchedulerSpec};
    use asgd_oracle::OracleSpec;
    use asgd_telemetry::replay;

    fn quick_spec(seed: u64) -> RunSpec {
        RunSpec::new(
            OracleSpec::new("noisy-quadratic", 2).sigma(0.1),
            BackendKind::Sequential,
        )
        .threads(1)
        .iterations(300)
        .learning_rate(0.05)
        .x0(vec![1.0, -1.0])
        .scheduler(SchedulerSpec::Serial)
        .seed(seed)
    }

    #[test]
    fn traced_run_replays_into_a_monotone_timeline() {
        let (sink, buf) = TraceSink::in_memory();
        let sink = Arc::new(sink);
        let observer = Arc::new(TraceObserver::new(Arc::clone(&sink), "m-trace"));
        let report = Driver::new()
            .submit_with(
                quick_spec(11).trajectory_every(100),
                SessionCtx::observed(observer),
            )
            .wait()
            .expect("valid spec");
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let spans = replay(&text).expect("every span parses");
        assert!(spans.iter().all(|s| s.run == "m-trace"));
        assert_eq!(spans.first().map(|s| s.event.as_str()), Some("started"));
        assert_eq!(spans.last().map(|s| s.event.as_str()), Some("finished"));
        assert!(spans.iter().any(|s| s.event == "progress"));
        assert!(spans.iter().any(|s| s.event == "sample"));
        assert!(
            spans.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "one sink origin → monotone timeline"
        );
        assert!(text.contains(&format!("\"iterations\":{}", report.iterations)));
    }

    #[test]
    fn net_tier_events_become_spans() {
        let (sink, buf) = TraceSink::in_memory();
        let observer = TraceObserver::new(Arc::new(sink), "srv");
        observer.on_event(&RunEvent::ShedTierChanged {
            tier: 2,
            p99_ns: 9_000_000,
            slo_ns: 4_000_000,
        });
        observer.on_event(&RunEvent::QueueSaturated {
            depth: 512,
            capacity: 512,
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"event\":\"shed-tier\""));
        assert!(text.contains("\"tier\":2"));
        assert!(text.contains("\"slo_ns\":4000000"));
        assert!(text.contains("\"event\":\"queue-saturated\""));
        assert!(text.contains("\"depth\":512"));
        let spans = replay(&text).expect("parses");
        assert_eq!(spans.len(), 2);
    }
}
