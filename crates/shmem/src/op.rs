//! Shared-memory operations, their results, and semantic tags.
//!
//! A simulated thread interacts with shared memory exclusively through
//! [`MemOp`]s. Each op is applied atomically by the engine, one per global
//! step, which makes every execution sequentially consistent by construction —
//! the memory model assumed in §2 of the paper.
//!
//! Ops carry an [`OpTag`] describing their role in the SGD iteration structure
//! (claiming an iteration, scanning the model, writing a gradient entry). Tags
//! are what let the engine's [contention tracker](crate::contention) recover
//! the paper's iteration ordering (Lemma 6.1) and what let adaptive
//! adversaries recognise "this thread is about to apply a gradient" — the
//! information a strong adversary is entitled to.

/// Identifier of a simulated thread (`P_1, …, P_n` in the paper; 0-based here).
pub type ThreadId = usize;

/// Global step counter: the number of actions the scheduler has fired.
pub type Step = u64;

/// An atomic operation on shared memory.
///
/// Two register banks exist: `f64` *model* registers (the shared parameter
/// vector `X[d]`, plus any per-epoch copies) and `u64` *counter* registers
/// (the iteration counter `C`). `read` / `write` / `fetch&add` / CAS are
/// provided on both, mirroring the primitives named in §2; Algorithm 1 only
/// needs `read` and `fetch&add`.
#[derive(Debug, Clone, PartialEq)]
pub enum MemOp {
    /// Atomic read of model register `idx`.
    ReadF64 {
        /// Register index.
        idx: usize,
    },
    /// Atomic write of `value` to model register `idx`.
    WriteF64 {
        /// Register index.
        idx: usize,
        /// Value to store.
        value: f64,
    },
    /// Atomic fetch&add of `delta` to model register `idx`; returns the prior
    /// value (the primitive Algorithm 1 uses for gradient updates).
    FaaF64 {
        /// Register index.
        idx: usize,
        /// Addend.
        delta: f64,
    },
    /// Atomic compare&swap on model register `idx`.
    CasF64 {
        /// Register index.
        idx: usize,
        /// Expected current value (bitwise comparison).
        expected: f64,
        /// Replacement value.
        new: f64,
    },
    /// Atomic read of counter register `idx`.
    ReadU64 {
        /// Register index.
        idx: usize,
    },
    /// Atomic write of `value` to counter register `idx`.
    WriteU64 {
        /// Register index.
        idx: usize,
        /// Value to store.
        value: u64,
    },
    /// Atomic fetch&add on counter register `idx`; returns the prior value
    /// (the `C.fetch&add(1)` of Algorithm 1, line 3).
    FaaU64 {
        /// Register index.
        idx: usize,
        /// Addend.
        delta: u64,
    },
    /// Atomic compare&swap on counter register `idx`.
    CasU64 {
        /// Register index.
        idx: usize,
        /// Expected current value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
}

impl MemOp {
    /// Returns `true` if the op mutates memory (everything except reads; a
    /// failed CAS is still counted as a mutation attempt).
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, MemOp::ReadF64 { .. } | MemOp::ReadU64 { .. })
    }

    /// The register index this op addresses.
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            MemOp::ReadF64 { idx }
            | MemOp::WriteF64 { idx, .. }
            | MemOp::FaaF64 { idx, .. }
            | MemOp::CasF64 { idx, .. }
            | MemOp::ReadU64 { idx }
            | MemOp::WriteU64 { idx, .. }
            | MemOp::FaaU64 { idx, .. }
            | MemOp::CasU64 { idx, .. } => idx,
        }
    }
}

/// Result of applying a [`MemOp`], delivered to the issuing process on its
/// next poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpResult {
    /// Value returned by a `ReadF64` or the prior value of a `FaaF64`.
    F64(f64),
    /// Value returned by a `ReadU64` or the prior value of a `FaaU64`.
    U64(u64),
    /// Outcome of a `CasF64`: whether it succeeded, and the value observed.
    CasF64 {
        /// `true` if the swap was performed.
        success: bool,
        /// The register value observed at the time of the CAS.
        observed: f64,
    },
    /// Outcome of a `CasU64`.
    CasU64 {
        /// `true` if the swap was performed.
        success: bool,
        /// The register value observed at the time of the CAS.
        observed: u64,
    },
    /// A plain write completed.
    Unit,
}

impl OpResult {
    /// Extracts the `f64` payload of a `F64` result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `F64` — a protocol error in the calling
    /// process's state machine.
    #[must_use]
    pub fn unwrap_f64(self) -> f64 {
        match self {
            OpResult::F64(v) => v,
            other => panic!("expected F64 result, got {other:?}"),
        }
    }

    /// Extracts the `u64` payload of a `U64` result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `U64`.
    #[must_use]
    pub fn unwrap_u64(self) -> u64 {
        match self {
            OpResult::U64(v) => v,
            other => panic!("expected U64 result, got {other:?}"),
        }
    }
}

/// Semantic role of an action within the SGD iteration structure.
///
/// Tags are metadata: the engine applies ops identically regardless of tag.
/// They drive the contention tracker and inform adaptive adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTag {
    /// No particular role.
    Untagged,
    /// The `C.fetch&add(1)` that claims an iteration slot (Alg. 1 line 3).
    ClaimIteration,
    /// Reading model entry `entry` while building the view `v_θ`
    /// (Alg. 1 line 4). `first`/`last` mark the scan boundaries.
    ViewRead {
        /// Model entry being read.
        entry: usize,
        /// This is the first read of the scan.
        first: bool,
        /// This is the last read of the scan.
        last: bool,
    },
    /// Local step that draws the stochastic-gradient coin and computes `g̃`
    /// (Alg. 1 line 5). The coin outcome becomes visible to the adversary
    /// through the thread's subsequent pending write ops.
    SampleCoin,
    /// Applying gradient entry `entry` via `fetch&add` (Alg. 1 lines 6-7).
    /// `first` marks the op that *orders* the iteration (Lemma 6.1);
    /// `last` marks iteration completion.
    ModelWrite {
        /// Model entry being updated.
        entry: usize,
        /// This is the iteration's first model write.
        first: bool,
        /// This is the iteration's last model write.
        last: bool,
    },
}

/// What a process wants to do next, declared before being scheduled.
///
/// Processes *pre-declare* their next action (drawing whatever local coins it
/// requires), and the scheduler picks which declared action fires. This gives
/// the scheduler the strong-adversary power of §2: it observes local coin
/// flips before making scheduling decisions.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Issue a shared-memory operation.
    Op {
        /// The operation.
        op: MemOp,
        /// Its semantic role.
        tag: OpTag,
    },
    /// A local computation step (costs a scheduling slot, touches no memory).
    Local {
        /// Semantic role (e.g. [`OpTag::SampleCoin`]).
        tag: OpTag,
    },
    /// The process's program has finished.
    Halt,
}

impl Action {
    /// Convenience constructor for an untagged op.
    #[must_use]
    pub fn op(op: MemOp) -> Self {
        Action::Op {
            op,
            tag: OpTag::Untagged,
        }
    }

    /// The action's tag ([`OpTag::Untagged`] for `Halt`).
    #[must_use]
    pub fn tag(&self) -> OpTag {
        match self {
            Action::Op { tag, .. } | Action::Local { tag } => *tag,
            Action::Halt => OpTag::Untagged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_write_classification() {
        assert!(!MemOp::ReadF64 { idx: 0 }.is_write());
        assert!(!MemOp::ReadU64 { idx: 0 }.is_write());
        assert!(MemOp::WriteF64 { idx: 0, value: 1.0 }.is_write());
        assert!(MemOp::FaaF64 { idx: 0, delta: 1.0 }.is_write());
        assert!(MemOp::FaaU64 { idx: 0, delta: 1 }.is_write());
        assert!(MemOp::CasU64 {
            idx: 0,
            expected: 0,
            new: 1
        }
        .is_write());
    }

    #[test]
    fn index_extraction() {
        assert_eq!(MemOp::ReadF64 { idx: 7 }.index(), 7);
        assert_eq!(MemOp::FaaU64 { idx: 3, delta: 1 }.index(), 3);
    }

    #[test]
    fn unwrap_helpers() {
        assert_eq!(OpResult::F64(2.5).unwrap_f64(), 2.5);
        assert_eq!(OpResult::U64(9).unwrap_u64(), 9);
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn unwrap_f64_wrong_variant_panics() {
        let _ = OpResult::U64(1).unwrap_f64();
    }

    #[test]
    #[should_panic(expected = "expected U64")]
    fn unwrap_u64_wrong_variant_panics() {
        let _ = OpResult::Unit.unwrap_u64();
    }

    #[test]
    fn action_tag_accessor() {
        let a = Action::Op {
            op: MemOp::ReadF64 { idx: 0 },
            tag: OpTag::ClaimIteration,
        };
        assert_eq!(a.tag(), OpTag::ClaimIteration);
        assert_eq!(Action::Halt.tag(), OpTag::Untagged);
        assert_eq!(Action::op(MemOp::ReadF64 { idx: 1 }).tag(), OpTag::Untagged);
    }
}
