//! **Theorem 5.1 / §5** — the stale-gradient lower bound.
//!
//! Paper claim: on `f(x) = ½x²` with fixed `α`, an adversary that delays one
//! thread's gradient (computed at `x₀`) by `τ` iterations produces
//! `x_{τ+1} = ((1−α)^τ − α)·x₀` (σ = 0), versus `(1−α)^τ·x₀` without the
//! adversary — an `Ω(τ)` slowdown once `2(1−α)^τ ≤ α`.
//!
//! Measured: we *run the adversary in the simulator* and compare the final
//! model against the paper's closed forms exactly (the σ = 0 construction is
//! deterministic), then tabulate the slowdown factor's linear growth in τ.

use crate::ExperimentOutput;
use asgd_core::runner::LockFreeSgd;
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_shmem::sched::StaleGradientAdversary;
use asgd_theory::lower_bound;

/// One sweep point: measured vs closed form.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Adversarial delay τ.
    pub tau: u64,
    /// `|x_{τ+1}|/|x₀|` measured from the simulated execution.
    pub measured: f64,
    /// Closed form `|(1−α)^τ − α|`.
    pub predicted: f64,
    /// Adversary-free contraction `(1−α)^τ`.
    pub clean: f64,
}

/// Runs the sweep and returns the raw points (used by tests).
#[must_use]
pub fn sweep(alpha: f64, taus: &[u64]) -> Vec<Point> {
    let oracle = super::quad(1, 0.0); // σ = 0: exactly the §5 simplification
    taus.iter()
        .map(|&tau| {
            let run = LockFreeSgd::builder(std::sync::Arc::clone(&oracle))
                .threads(2)
                .iterations(tau + 1) // τ runner iterations + 1 stale merge
                .learning_rate(alpha)
                .initial_point(vec![1.0])
                .scheduler(StaleGradientAdversary::new(0, 1, tau))
                .seed(7)
                .run();
            Point {
                tau,
                measured: run.final_model[0].abs(),
                predicted: lower_bound::adversarial_iterate(alpha, tau, 1.0).abs(),
                clean: lower_bound::clean_contraction(alpha, tau, 1.0).abs(),
            }
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("t51");
    let alpha = 0.1;
    let tau_star = lower_bound::required_delay(alpha);
    let taus: Vec<u64> = if quick {
        vec![5, tau_star, 2 * tau_star]
    } else {
        vec![5, 10, tau_star, 2 * tau_star, 4 * tau_star, 8 * tau_star]
    };
    let points = sweep(alpha, &taus);

    let mut table = Table::new(
        format!("Theorem 5.1: stale-gradient adversary on f(x)=x²/2, α={alpha}, τ*(α)={tau_star}"),
        &[
            "tau",
            "|x_t+1| measured",
            "|(1-a)^t - a| predicted",
            "(1-a)^t clean",
            "floor a/2",
            "slowdown Ω(τ)",
        ],
    );
    for p in &points {
        table.row(&[
            p.tau.to_string(),
            fmt_f(p.measured),
            fmt_f(p.predicted),
            fmt_f(p.clean),
            fmt_f(lower_bound::adversarial_magnitude_floor(alpha, 1.0)),
            fmt_f(lower_bound::slowdown_factor(alpha, p.tau)),
        ]);
    }
    out.tables.push(table);

    let max_err = points
        .iter()
        .map(|p| (p.measured - p.predicted).abs())
        .fold(0.0_f64, f64::max);
    out.notes.push(format!(
        "max |measured − closed form| = {max_err:.2e} (deterministic construction)"
    ));
    let past = points.iter().filter(|p| p.tau >= tau_star);
    let floor = lower_bound::adversarial_magnitude_floor(alpha, 1.0);
    let floor_holds = past.clone().all(|p| p.measured >= floor - 1e-12);
    out.notes.push(format!(
        "for τ ≥ τ*: measured ‖x_τ+1‖ ≥ α/2·‖x₀‖ = {floor:.4}: {floor_holds}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_execution_matches_closed_form_exactly() {
        // The σ=0 construction is deterministic: simulator and paper algebra
        // must agree to machine precision.
        let points = sweep(0.1, &[3, 10, 29, 60]);
        for p in &points {
            assert!(
                (p.measured - p.predicted).abs() < 1e-12,
                "τ={}: measured {} vs predicted {}",
                p.tau,
                p.measured,
                p.predicted
            );
        }
    }

    #[test]
    fn adversary_beats_clean_contraction_past_threshold() {
        let alpha = 0.1;
        let tau_star = lower_bound::required_delay(alpha);
        let points = sweep(alpha, &[tau_star, 2 * tau_star]);
        for p in &points {
            assert!(
                p.measured > p.clean,
                "τ={}: adversarial {} should exceed clean {}",
                p.tau,
                p.measured,
                p.clean
            );
            assert!(p.measured >= lower_bound::adversarial_magnitude_floor(alpha, 1.0) - 1e-12);
        }
    }

    #[test]
    fn output_reports_zero_error() {
        let out = run(true);
        assert!(out.notes[0].contains("max |measured − closed form|"));
        assert!(out.notes[1].ends_with("true"));
    }
}
