//! The coarse-grained-locking baseline.
//!
//! Early parallel SGD systems (Langford et al., cited as \[16\] in the
//! paper's introduction) kept the process "consistent to a sequential
//! execution" via coarse-grained locking — and paid for it in scalability.
//! This executor holds one mutex across a whole iteration (view read +
//! gradient application), serialising all model access. It exists as the
//! comparison point for the `speedup` experiment and the
//! `hogwild_scaling` bench.

use crate::control::RunControl;
use crate::tuning::ExecTuning;
use asgd_math::rng::SeedSequence;
use asgd_oracle::{GradientOracle, SparseGrad};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Outcome of a locked-baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct LockedSgdReport {
    /// Final model.
    pub final_model: Vec<f64>,
    /// `‖X_final − x*‖²`.
    pub final_dist_sq: f64,
    /// Iterations executed (= configured `T`, or fewer if cancelled).
    pub iterations: u64,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// Whether the run took the O(Δ) sparse gradient path.
    pub used_sparse: bool,
    /// Whether the run was ended early by [`RunControl::stop`].
    pub cancelled: bool,
}

impl LockedSgdReport {
    /// Iteration throughput in iterations per second.
    #[must_use]
    pub fn iterations_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            f64::INFINITY
        } else {
            self.iterations as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Coarse-grained-locking SGD: `n` threads contend on one model mutex.
#[derive(Debug)]
pub struct LockedSgd<O> {
    oracle: O,
    threads: usize,
    iterations: u64,
    alpha: f64,
    seed: u64,
    tuning: ExecTuning,
}

impl<O: GradientOracle> LockedSgd<O> {
    /// Creates the executor with default [`ExecTuning`] (only the sparse
    /// knob applies — the model lives under one mutex, so layout/ordering
    /// are moot).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `alpha` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, threads: usize, iterations: u64, alpha: f64, seed: u64) -> Self {
        assert!(threads >= 1, "at least one thread required");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Self {
            oracle,
            threads,
            iterations,
            alpha,
            seed,
            tuning: ExecTuning::default(),
        }
    }

    /// Overrides the execution tuning.
    #[must_use]
    pub fn tuning(mut self, tuning: ExecTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run(&self, x0: &[f64]) -> LockedSgdReport {
        self.run_controlled(x0, RunControl::default())
    }

    /// Like [`LockedSgd::run`], with a [`RunControl`] for cancellation and
    /// strided metrics (dist² computed under a brief model lock).
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run_controlled(&self, x0: &[f64], ctrl: RunControl<'_>) -> LockedSgdReport {
        let d = self.oracle.dimension();
        assert_eq!(x0.len(), d, "x0 dimension mismatch");
        let model = Mutex::new(x0.to_vec());
        let counter = AtomicU64::new(0);
        let executed = AtomicU64::new(0);
        let interrupted = AtomicBool::new(false);
        let seeds = SeedSequence::new(self.seed);
        let use_sparse = self.tuning.sparse.use_sparse(d, self.oracle.max_support());
        let stride = self.tuning.stride();
        let minimizer = self.oracle.minimizer();
        let grad_cap = self.oracle.max_support().unwrap_or(1);

        let start = Instant::now();
        std::thread::scope(|scope| {
            for tid in 0..self.threads {
                let model = &model;
                let counter = &counter;
                let executed = &executed;
                let interrupted = &interrupted;
                let oracle = &self.oracle;
                let (alpha, iterations) = (self.alpha, self.iterations);
                let mut rng = seeds.child_rng(tid as u64);
                scope.spawn(move || {
                    let mut done = 0u64;
                    // Strided control point shared by both paths: stop at
                    // the success-check stride, metrics at their own stride.
                    let observe = |claim: u64| -> bool {
                        if claim.is_multiple_of(stride) && ctrl.is_stopped() {
                            interrupted.store(true, Ordering::SeqCst);
                            return true;
                        }
                        if ctrl.metrics_at(claim) {
                            // Hold the lock only for the distance read; the
                            // observer pipeline must run outside the critical
                            // section or it stalls every worker.
                            let dist_sq = {
                                let x = model.lock();
                                asgd_math::vec::l2_dist_sq(&x, minimizer)
                            };
                            ctrl.emit_metrics(claim, dist_sq);
                        }
                        false
                    };
                    if use_sparse {
                        // Even under the lock, a Δ-sparse iteration need not
                        // copy or scan the full model: sample through the
                        // locked slice, update only the support.
                        let mut grad = SparseGrad::with_capacity(grad_cap);
                        loop {
                            let claim = counter.fetch_add(1, Ordering::SeqCst);
                            if claim >= iterations || observe(claim) {
                                break;
                            }
                            let mut x = model.lock();
                            oracle.sample_gradient_sparse(&*x, &mut rng, &mut grad);
                            for &(j, gj) in grad.entries() {
                                if gj != 0.0 {
                                    x[j] -= alpha * gj;
                                }
                            }
                            done += 1;
                        }
                    } else {
                        let mut grad = vec![0.0; d];
                        let mut view = vec![0.0; d];
                        loop {
                            let claim = counter.fetch_add(1, Ordering::SeqCst);
                            if claim >= iterations || observe(claim) {
                                break;
                            }
                            // The whole iteration holds the lock: fully serial
                            // semantics (and fully serial performance).
                            let mut x = model.lock();
                            view.copy_from_slice(&x);
                            oracle.sample_gradient(&view, &mut rng, &mut grad);
                            asgd_math::vec::axpy(&mut x, -alpha, &grad);
                            done += 1;
                        }
                    }
                    executed.fetch_add(done, Ordering::SeqCst);
                });
            }
        });
        let elapsed = start.elapsed();

        let final_model = model.into_inner();
        let final_dist_sq = asgd_math::vec::l2_dist_sq(&final_model, self.oracle.minimizer());
        LockedSgdReport {
            final_model,
            final_dist_sq,
            iterations: executed.load(Ordering::SeqCst),
            elapsed,
            used_sparse: use_sparse,
            cancelled: interrupted.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::NoisyQuadratic;
    use std::sync::Arc;

    #[test]
    fn converges_like_sequential() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        let report = LockedSgd::new(Arc::clone(&oracle), 4, 10_000, 0.02, 5).run(&[2.0, -2.0]);
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {}",
            report.final_dist_sq
        );
        assert_eq!(report.iterations, 10_000);
        assert!(report.iterations_per_sec() > 0.0);
    }

    #[test]
    fn noiseless_run_is_exactly_sequential() {
        // Locked iterations are serialisable: the noiseless quadratic
        // contracts deterministically regardless of which thread runs when.
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let report = LockedSgd::new(oracle, 4, 100, 0.1, 1).run(&[1.0]);
        assert!((report.final_model[0] - 0.9_f64.powi(100)).abs() < 1e-12);
    }

    #[test]
    fn sparse_path_matches_dense_bitwise_single_threaded() {
        let oracle = Arc::new(asgd_oracle::SparseQuadratic::uniform(8, 1.0, 0.5).unwrap());
        let run = |sparse| {
            LockedSgd::new(Arc::clone(&oracle), 1, 2_000, 0.02, 3)
                .tuning(crate::tuning::ExecTuning {
                    sparse,
                    ..crate::tuning::ExecTuning::default()
                })
                .run(&[1.0; 8])
        };
        let dense = run(crate::tuning::SparsePolicy::ForceDense);
        let sparse = run(crate::tuning::SparsePolicy::ForceSparse);
        assert!(!dense.used_sparse);
        assert!(sparse.used_sparse);
        for (j, (a, b)) in dense
            .final_model
            .iter()
            .zip(&sparse.final_model)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "entry {j}");
        }
    }

    #[test]
    fn stop_flag_cancels_and_metrics_fire() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex as StdMutex;
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.0).unwrap());
        let flag = AtomicBool::new(false);
        let samples: StdMutex<Vec<u64>> = StdMutex::new(Vec::new());
        let sink = |claim: u64, _dist_sq: f64| {
            samples.lock().unwrap().push(claim);
            // Cancel as soon as the first strided sample lands.
            flag.store(true, Ordering::SeqCst);
        };
        let report = LockedSgd::new(oracle, 2, u64::MAX / 2, 0.1, 3).run_controlled(
            &[1.0, 1.0],
            crate::control::RunControl {
                stop: Some(&flag),
                metrics: Some(crate::control::MetricsSink {
                    stride: 16,
                    f: &sink,
                }),
                ..RunControl::default()
            },
        );
        assert!(report.cancelled);
        let stride = crate::tuning::ExecTuning::default().stride();
        assert!(report.iterations <= 2 * stride + 2);
        assert!(!samples.lock().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let _ = LockedSgd::new(oracle, 1, 1, f64::NAN, 0);
    }
}
