//! The native lock-free executor — Algorithm 1 on OS threads.

use crate::model::SharedModel;
use asgd_math::rng::SeedSequence;
use asgd_oracle::GradientOracle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a native Hogwild run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HogwildConfig {
    /// Worker thread count `n ≥ 1`.
    pub threads: usize,
    /// Total iteration budget `T` (shared claim counter).
    pub iterations: u64,
    /// Constant learning rate `α > 0`.
    pub alpha: f64,
    /// Master seed; thread `i` derives coin stream `i`.
    pub seed: u64,
    /// Optional `ε`: threads record the first claim index at which a freshly
    /// read view satisfied `‖v − x*‖² ≤ ε` (a native proxy for the hitting
    /// time; exact accumulator-order tracking is a simulator-only facility).
    pub success_radius_sq: Option<f64>,
}

/// Outcome of a native Hogwild run.
#[derive(Debug, Clone, PartialEq)]
pub struct HogwildReport {
    /// Final shared model (read after all threads joined — consistent).
    pub final_model: Vec<f64>,
    /// `‖X_final − x*‖²`.
    pub final_dist_sq: f64,
    /// Iterations actually executed (= `T`).
    pub iterations: u64,
    /// Per-thread completed iteration counts (sums to `iterations`).
    pub per_thread_iterations: Vec<u64>,
    /// Smallest claim index whose view was inside the success region, if
    /// tracking was enabled and any view qualified.
    pub first_success_claim: Option<u64>,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
}

impl HogwildReport {
    /// Iteration throughput in iterations per second.
    #[must_use]
    pub fn iterations_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            f64::INFINITY
        } else {
            self.iterations as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// The lock-free executor.
///
/// Shares one [`GradientOracle`] and one [`SharedModel`] across `n` threads;
/// each thread loops: claim a slot via `fetch&add` on the iteration counter,
/// read an (inconsistent) view, sample a gradient, apply nonzero entries via
/// per-entry `fetch&add`. No locks, no barriers.
#[derive(Debug)]
pub struct Hogwild<O> {
    oracle: O,
    cfg: HogwildConfig,
}

impl<O: GradientOracle> Hogwild<O> {
    /// Creates the executor.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `alpha` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, cfg: HogwildConfig) -> Self {
        assert!(cfg.threads >= 1, "at least one thread required");
        assert!(
            cfg.alpha.is_finite() && cfg.alpha > 0.0,
            "alpha must be positive"
        );
        Self { oracle, cfg }
    }

    /// Runs Algorithm 1 to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run(&self, x0: &[f64]) -> HogwildReport {
        let d = self.oracle.dimension();
        assert_eq!(x0.len(), d, "x0 dimension mismatch");
        let model = SharedModel::new(x0);
        let counter = AtomicU64::new(0);
        let first_success = AtomicU64::new(u64::MAX);
        let seeds = SeedSequence::new(self.cfg.seed);
        let mut per_thread = vec![0u64; self.cfg.threads];

        let start = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.cfg.threads)
                .map(|tid| {
                    let model = &model;
                    let counter = &counter;
                    let first_success = &first_success;
                    let oracle = &self.oracle;
                    let cfg = self.cfg;
                    let mut rng = seeds.child_rng(tid as u64);
                    scope.spawn(move || {
                        let mut view = vec![0.0; d];
                        let mut grad = vec![0.0; d];
                        let mut done = 0u64;
                        loop {
                            let claim = counter.fetch_add(1, Ordering::SeqCst);
                            if claim >= cfg.iterations {
                                return done;
                            }
                            model.read_view(&mut view);
                            if let Some(eps) = cfg.success_radius_sq {
                                let dist_sq = asgd_math::vec::l2_dist_sq(&view, oracle.minimizer());
                                if dist_sq <= eps {
                                    first_success.fetch_min(claim, Ordering::SeqCst);
                                }
                            }
                            oracle.sample_gradient(&view, &mut rng, &mut grad);
                            for (j, &gj) in grad.iter().enumerate() {
                                if gj != 0.0 {
                                    model.fetch_add(j, -cfg.alpha * gj);
                                }
                            }
                            done += 1;
                        }
                    })
                })
                .collect();
            for (tid, h) in handles.into_iter().enumerate() {
                per_thread[tid] = h.join().expect("worker thread panicked");
            }
        });
        let elapsed = start.elapsed();

        let final_model = model.snapshot();
        let final_dist_sq = asgd_math::vec::l2_dist_sq(&final_model, self.oracle.minimizer());
        let hit = first_success.load(Ordering::SeqCst);
        HogwildReport {
            final_model,
            final_dist_sq,
            iterations: self.cfg.iterations,
            per_thread_iterations: per_thread,
            first_success_claim: (hit != u64::MAX).then_some(hit),
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::{LinearRegression, NoisyQuadratic, SparseQuadratic};
    use std::sync::Arc;

    #[test]
    fn iterations_partition_exactly() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.5).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: 1_000,
                alpha: 0.01,
                seed: 1,
                success_radius_sq: None,
            },
        )
        .run(&[1.0, 1.0]);
        assert_eq!(report.per_thread_iterations.iter().sum::<u64>(), 1_000);
        assert_eq!(report.iterations, 1_000);
        assert!(report.iterations_per_sec() > 0.0);
    }

    #[test]
    fn converges_on_quadratic_multithreaded() {
        let oracle = Arc::new(NoisyQuadratic::new(4, 0.1).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: 20_000,
                alpha: 0.02,
                seed: 3,
                success_radius_sq: Some(0.05),
            },
        )
        .run(&[2.0, -2.0, 1.0, -1.0]);
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {}",
            report.final_dist_sq
        );
        assert!(report.first_success_claim.is_some());
    }

    #[test]
    fn converges_on_linear_regression() {
        let oracle = Arc::new(LinearRegression::synthetic(200, 6, 0.05, 5).unwrap());
        let report = Hogwild::new(
            Arc::clone(&oracle),
            HogwildConfig {
                threads: 3,
                iterations: 40_000,
                alpha: 0.01,
                seed: 9,
                success_radius_sq: None,
            },
        )
        .run(&[0.0; 6]);
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {}",
            report.final_dist_sq
        );
    }

    #[test]
    fn sparse_gradients_native() {
        let oracle = Arc::new(SparseQuadratic::uniform(8, 1.0, 0.0).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: 30_000,
                alpha: 0.02,
                seed: 4,
                success_radius_sq: None,
            },
        )
        .run(&[1.0; 8]);
        assert!(
            report.final_dist_sq < 0.01,
            "final dist² {}",
            report.final_dist_sq
        );
    }

    #[test]
    fn single_thread_matches_iteration_count() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 1,
                iterations: 64,
                alpha: 0.1,
                seed: 0,
                success_radius_sq: None,
            },
        )
        .run(&[1.0]);
        assert_eq!(report.per_thread_iterations, vec![64]);
        // Single-threaded noiseless run is exactly (1−α)^T.
        assert!((report.final_model[0] - 0.9_f64.powi(64)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let _ = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 0,
                iterations: 1,
                alpha: 0.1,
                seed: 0,
                success_radius_sq: None,
            },
        );
    }
}
