//! §8(c) in bench form: lock-free vs coarse-grained-locked SGD throughput
//! across thread counts (the practical payoff of asynchrony the paper's
//! discussion appeals to).

use asgd_hogwild::hogwild::{Hogwild, HogwildConfig};
use asgd_hogwild::locked::LockedSgd;
use asgd_oracle::MinibatchRegression;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn bench_scaling(c: &mut Criterion) {
    let d = 64;
    let iterations = 2_000_u64;
    // Minibatch gradients: compute O(b·d) per iteration dominates the O(d)
    // atomic update traffic, so thread scaling is visible (§8(c)).
    let oracle =
        Arc::new(MinibatchRegression::synthetic(2_000, d, 0.05, 64, 7).expect("well-conditioned"));
    let x0 = vec![0.0; d];

    let mut group = c.benchmark_group("sgd_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(iterations));

    for &threads in &[1_usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("lockfree", threads), &threads, |b, &n| {
            b.iter(|| {
                Hogwild::new(
                    Arc::clone(&oracle),
                    HogwildConfig {
                        threads: n,
                        iterations,
                        alpha: 0.005,
                        seed: 42,
                        success_radius_sq: None,
                    },
                )
                .run(&x0)
            })
        });
        group.bench_with_input(BenchmarkId::new("locked", threads), &threads, |b, &n| {
            b.iter(|| LockedSgd::new(Arc::clone(&oracle), n, iterations, 0.005, 42).run(&x0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
