//! The wire protocol: length-prefixed, versioned binary frames.
//!
//! Every message on the socket is one **frame**:
//!
//! ```text
//! [ len: u32 LE ][ body: len bytes ]
//! ```
//!
//! `len` counts only the body and is capped at [`MAX_FRAME_LEN`] — an
//! oversized prefix is rejected before any allocation, a truncated body is
//! a typed error, never a panic. The body starts with a two-byte header:
//!
//! ```text
//! request  body:  [ version: u8 ][ opcode: u8 ][ priority: u8 ][ payload ]
//! response body:  [ version: u8 ][ tag: u8 ][ payload ]
//! ```
//!
//! Integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so values round-trip *exactly* — the
//! socket path preserves the bit-identity guarantees the rest of the
//! workspace is tested against. Strings are `u16`-length-prefixed UTF-8.
//!
//! Operations ([`Request`]): `dot-score` (client-supplied sparse probe),
//! `predict` (held-out objective at the served point), `fetch-range` (raw
//! parameters), `model-stats` (by id or by name), `submit-observe`
//! (v2: push one labeled observation into a streaming model's ingress
//! queue — the continual-learning write path), and `stats-scrape` (the
//! observability read: one payload-free request returning the server's
//! whole telemetry registry as Prometheus exposition text). Every request
//! addresses a model by its registry id (`stats-scrape` addresses the
//! process) and carries a [`Priority`] the SLO load shedder uses to decide
//! who gets shed first.
//!
//! Replies ([`Response`]): `Score`, `Values`, `Stats` (now carrying
//! snapshot staleness and the per-shard τ update counters), `Ingested`
//! (the submit-observe ack: the observation is in the queue),
//! `ScrapeText` (the exposition body answering `stats-scrape`), plus two
//! explicit failure frames — `Error` (typed [`ErrorCode`] + message) and
//! `Shed` (the load shedder refused the request; carries the rolling p99
//! and the SLO that was breached). **Shed and rejected requests always
//! get a frame** — the protocol never drops a request silently.
//!
//! Unlike every v1 operation, `submit-observe` is **not idempotent**: it
//! mutates server state (enqueues an observation), so a retry layer must
//! not blindly replay it after a mid-frame disconnect — see
//! [`Request::idempotent`] and the `RetryingClient` docs.

use asgd_serve::{ModelStats, ReadMode};

/// Spells `fmt` as "write the label" for label-carrying enums.
macro_rules! fmt_label {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(self.label())
        }
    };
}

/// Protocol version this build speaks (the first byte of every body).
/// v2 added the `submit-observe` opcode, the `Ingested` response tag, and
/// the `Overloaded` error code; v1 peers are refused with a typed
/// [`FrameError::BadVersion`] / [`ErrorCode::VersionMismatch`].
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard cap on a frame body, enforced on both encode and decode.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Most probe coordinates one dot-score request may carry.
pub const MAX_PROBE_LEN: usize = 4_096;

/// Most parameters one fetch-range request may ask for (the values
/// response must itself fit a frame: 65 536 × 8 B = 512 KiB).
pub const MAX_FETCH_LEN: u32 = 65_536;

/// Most feature coordinates one submit-observe request may carry — the
/// same budget as a dot-score probe: an observation is a sparse probe
/// plus a label.
pub const MAX_OBSERVE_LEN: usize = 4_096;

/// Most bytes one stats-scrape response may carry (the exposition text
/// must itself fit a frame with room for the header).
pub const MAX_SCRAPE_LEN: usize = MAX_FRAME_LEN - 16;

/// Most per-shard counters one stats response may carry. Far above any
/// real store (the shard router tops out at one shard per cache line of
/// parameters) but small enough that a forged count cannot balloon the
/// decode allocation.
pub const MAX_STATS_SHARDS: usize = 4_096;

/// Request priority, lowest first. Under SLO pressure the load shedder
/// sheds [`Priority::Low`] traffic first, then [`Priority::Normal`];
/// [`Priority::High`] is never shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort traffic — first to be shed.
    Low = 0,
    /// Standard traffic. The default.
    #[default]
    Normal = 1,
    /// Traffic that is never shed (admission and timeouts still apply).
    High = 2,
}

impl Priority {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Low => "low",
            Self::Normal => "normal",
            Self::High => "high",
        }
    }

    /// All priorities, lowest first.
    #[must_use]
    pub fn all() -> &'static [Priority] {
        &[Self::Low, Self::Normal, Self::High]
    }

    /// Decodes a wire byte.
    fn from_wire(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(Self::Low),
            1 => Ok(Self::Normal),
            2 => Ok(Self::High),
            other => Err(FrameError::BadPriority(other)),
        }
    }
}

impl std::str::FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "low" => Ok(Self::Low),
            "normal" => Ok(Self::Normal),
            "high" => Ok(Self::High),
            other => Err(format!(
                "unknown priority `{other}` (known: low, normal, high)"
            )),
        }
    }
}

impl std::fmt::Display for Priority {
    fmt_label!();
}

/// How a model-stats request names its model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsSelector {
    /// By registry id (the steady-state path).
    ById(u32),
    /// By name — the discovery path: a client that only knows the model's
    /// name resolves it to an id from the stats response.
    ByName(String),
}

/// One decoded request. Every query op addresses a model by registry id.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Sparse dot-product score: `Σ wᵢ · x[idxᵢ]` over a client-supplied
    /// probe (at most [`MAX_PROBE_LEN`] coordinates).
    DotScore {
        /// Registry id of the model to score against.
        model: u32,
        /// `(index, weight)` probe coordinates.
        probe: Vec<(u32, f64)>,
    },
    /// Held-out objective `f(x)` at the served point — O(d).
    Predict {
        /// Registry id of the model to evaluate.
        model: u32,
    },
    /// Raw parameters `x[start .. start+len]` (at most [`MAX_FETCH_LEN`]).
    FetchRange {
        /// Registry id of the model to read.
        model: u32,
        /// First parameter index.
        start: u32,
        /// Number of parameters.
        len: u32,
    },
    /// Statistics (and id discovery) for one model.
    ModelStats {
        /// By-id or by-name selection.
        selector: StatsSelector,
    },
    /// Push one labeled observation into a streaming model's ingress
    /// queue (at most [`MAX_OBSERVE_LEN`] feature coordinates). The only
    /// state-mutating operation in the protocol — acked with
    /// [`Response::Ingested`] once the observation is actually queued.
    SubmitObserve {
        /// Registry id of the streaming model to feed.
        model: u32,
        /// `(index, value)` sparse feature coordinates.
        features: Vec<(u32, f64)>,
        /// The observed label.
        label: f64,
    },
    /// Scrape the server's telemetry registry: per-shard τ gauges, serve
    /// latency/staleness histograms, queue and shedder counters — rendered
    /// as Prometheus exposition text in a [`Response::ScrapeText`]. No
    /// payload; addresses the whole process, not one model.
    StatsScrape,
}

impl Request {
    /// The opcode byte this request encodes as.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Self::DotScore { .. } => 1,
            Self::Predict { .. } => 2,
            Self::FetchRange { .. } => 3,
            Self::ModelStats { .. } => 4,
            Self::SubmitObserve { .. } => 5,
            Self::StatsScrape => 6,
        }
    }

    /// Human-readable op name (bench/report label).
    #[must_use]
    pub fn op_label(&self) -> &'static str {
        match self {
            Self::DotScore { .. } => "dot-score",
            Self::Predict { .. } => "predict",
            Self::FetchRange { .. } => "fetch-range",
            Self::ModelStats { .. } => "model-stats",
            Self::SubmitObserve { .. } => "submit-observe",
            Self::StatsScrape => "stats-scrape",
        }
    }

    /// Whether retrying this request after an *indeterminate* failure (the
    /// connection died after the request may have been sent, before any
    /// response) is safe. Pure reads are; `submit-observe` is not — a
    /// blind replay could enqueue the observation twice. Retry layers must
    /// consult this before replaying (see `RetryingClient`).
    #[must_use]
    pub fn idempotent(&self) -> bool {
        !matches!(self, Self::SubmitObserve { .. })
    }
}

/// A request plus the priority byte it travels with.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Shedding priority.
    pub priority: Priority,
    /// The operation.
    pub request: Request,
}

impl RequestFrame {
    /// A frame at [`Priority::Normal`].
    #[must_use]
    pub fn new(request: Request) -> Self {
        Self {
            priority: Priority::Normal,
            request,
        }
    }

    /// Sets the priority.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Encodes the frame body (no length prefix).
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when the probe exceeds [`MAX_PROBE_LEN`],
    /// the fetch exceeds [`MAX_FETCH_LEN`], or a name exceeds `u16`.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut buf = Vec::with_capacity(16);
        buf.push(PROTOCOL_VERSION);
        buf.push(self.request.opcode());
        buf.push(self.priority as u8);
        match &self.request {
            Request::DotScore { model, probe } => {
                if probe.len() > MAX_PROBE_LEN {
                    return Err(FrameError::Oversized {
                        len: probe.len(),
                        max: MAX_PROBE_LEN,
                    });
                }
                put_u32(&mut buf, *model);
                put_u32(&mut buf, probe.len() as u32);
                for &(idx, w) in probe {
                    put_u32(&mut buf, idx);
                    put_f64(&mut buf, w);
                }
            }
            Request::Predict { model } => put_u32(&mut buf, *model),
            Request::FetchRange { model, start, len } => {
                if *len > MAX_FETCH_LEN {
                    return Err(FrameError::Oversized {
                        len: *len as usize,
                        max: MAX_FETCH_LEN as usize,
                    });
                }
                put_u32(&mut buf, *model);
                put_u32(&mut buf, *start);
                put_u32(&mut buf, *len);
            }
            Request::ModelStats { selector } => match selector {
                StatsSelector::ById(id) => {
                    buf.push(0);
                    put_u32(&mut buf, *id);
                }
                StatsSelector::ByName(name) => {
                    buf.push(1);
                    put_str(&mut buf, name)?;
                }
            },
            Request::SubmitObserve {
                model,
                features,
                label,
            } => {
                if features.len() > MAX_OBSERVE_LEN {
                    return Err(FrameError::Oversized {
                        len: features.len(),
                        max: MAX_OBSERVE_LEN,
                    });
                }
                put_u32(&mut buf, *model);
                put_u32(&mut buf, features.len() as u32);
                for &(idx, v) in features {
                    put_u32(&mut buf, idx);
                    put_f64(&mut buf, v);
                }
                put_f64(&mut buf, *label);
            }
            Request::StatsScrape => {}
        }
        Ok(buf)
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] for any malformed body: wrong version,
    /// unknown opcode/priority, truncated or trailing bytes, probe/fetch
    /// over the caps, invalid UTF-8 in names.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut cur = Cursor::new(body);
        let version = cur.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let opcode = cur.u8()?;
        let priority = Priority::from_wire(cur.u8()?)?;
        let request = match opcode {
            1 => {
                let model = cur.u32()?;
                let k = cur.u32()? as usize;
                if k > MAX_PROBE_LEN {
                    return Err(FrameError::Oversized {
                        len: k,
                        max: MAX_PROBE_LEN,
                    });
                }
                let mut probe = Vec::with_capacity(k);
                for _ in 0..k {
                    let idx = cur.u32()?;
                    let w = cur.f64()?;
                    probe.push((idx, w));
                }
                Request::DotScore { model, probe }
            }
            2 => Request::Predict { model: cur.u32()? },
            3 => {
                let model = cur.u32()?;
                let start = cur.u32()?;
                let len = cur.u32()?;
                if len > MAX_FETCH_LEN {
                    return Err(FrameError::Oversized {
                        len: len as usize,
                        max: MAX_FETCH_LEN as usize,
                    });
                }
                Request::FetchRange { model, start, len }
            }
            4 => {
                let selector = match cur.u8()? {
                    0 => StatsSelector::ById(cur.u32()?),
                    1 => StatsSelector::ByName(cur.str()?),
                    other => return Err(FrameError::BadSelector(other)),
                };
                Request::ModelStats { selector }
            }
            5 => {
                let model = cur.u32()?;
                let k = cur.u32()? as usize;
                if k > MAX_OBSERVE_LEN {
                    return Err(FrameError::Oversized {
                        len: k,
                        max: MAX_OBSERVE_LEN,
                    });
                }
                let mut features = Vec::with_capacity(k);
                for _ in 0..k {
                    let idx = cur.u32()?;
                    let v = cur.f64()?;
                    features.push((idx, v));
                }
                let label = cur.f64()?;
                Request::SubmitObserve {
                    model,
                    features,
                    label,
                }
            }
            6 => Request::StatsScrape,
            other => return Err(FrameError::BadOpcode(other)),
        };
        cur.finish()?;
        Ok(Self { priority, request })
    }
}

/// Typed failure codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The addressed model does not exist (never created, or dropped).
    NoSuchModel = 1,
    /// The request was structurally valid but semantically wrong (index
    /// out of range, empty probe, …).
    BadRequest = 2,
    /// The server does not speak the client's protocol version.
    VersionMismatch = 3,
    /// Admission control refused the connection (budget exhausted). Sent
    /// once, then the connection closes.
    AdmissionDenied = 4,
    /// The bounded in-flight window is full — backpressure, try again.
    Busy = 5,
    /// The server failed internally while executing the request.
    Internal = 6,
    /// A streaming model's ingress queue is full under the `Reject`
    /// backpressure policy. The observation was **not** enqueued, so a
    /// retry (after backoff) is always safe.
    Overloaded = 7,
}

impl ErrorCode {
    /// Canonical name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::NoSuchModel => "no-such-model",
            Self::BadRequest => "bad-request",
            Self::VersionMismatch => "version-mismatch",
            Self::AdmissionDenied => "admission-denied",
            Self::Busy => "busy",
            Self::Internal => "internal",
            Self::Overloaded => "overloaded",
        }
    }

    fn from_wire(code: u16) -> Result<Self, FrameError> {
        match code {
            1 => Ok(Self::NoSuchModel),
            2 => Ok(Self::BadRequest),
            3 => Ok(Self::VersionMismatch),
            4 => Ok(Self::AdmissionDenied),
            5 => Ok(Self::Busy),
            6 => Ok(Self::Internal),
            7 => Ok(Self::Overloaded),
            other => Err(FrameError::BadErrorCode(other)),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fmt_label!();
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to dot-score and predict.
    Score {
        /// The computed value (bit-exact across the wire).
        value: f64,
        /// Snapshot staleness in training iterations (`None` for live
        /// reads and pre-publication fallbacks).
        staleness: Option<u64>,
    },
    /// Answer to fetch-range.
    Values {
        /// First parameter index.
        start: u32,
        /// The parameters, bit-exact.
        values: Vec<f64>,
        /// Snapshot staleness (as in [`Response::Score`]).
        staleness: Option<u64>,
    },
    /// Answer to model-stats.
    Stats(ModelStats),
    /// Answer to submit-observe: the observation **is** in the model's
    /// ingress queue. Until a producer sees this ack the submit is
    /// indeterminate — that asymmetry is why submit-observe is the one
    /// non-idempotent operation.
    Ingested {
        /// Queue depth right after the push (how far behind the trainer
        /// is — the ingest-side analogue of snapshot staleness).
        depth: u64,
    },
    /// Typed failure — the request was refused or failed.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to stats-scrape: the server's telemetry registry rendered as
    /// Prometheus exposition text (parse it back with
    /// `asgd_telemetry::parse` — the format round-trips losslessly).
    ScrapeText {
        /// The exposition body (at most [`MAX_SCRAPE_LEN`] bytes).
        text: String,
    },
    /// The SLO load shedder refused the request: the rolling p99 breached
    /// the objective and this request's priority was below the admission
    /// floor. An explicit frame — shed traffic is never silently dropped.
    Shed {
        /// The refused request's priority.
        priority: Priority,
        /// The rolling p99 estimate that triggered shedding, ns.
        p99_ns: u64,
        /// The configured objective, ns.
        slo_ns: u64,
    },
}

impl Response {
    /// The tag byte this response encodes as.
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            Self::Score { .. } => 1,
            Self::Values { .. } => 2,
            Self::Stats(_) => 3,
            Self::Error { .. } => 4,
            Self::Shed { .. } => 5,
            Self::Ingested { .. } => 6,
            Self::ScrapeText { .. } => 7,
        }
    }

    /// Encodes the response body (no length prefix).
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when a values vector or a name would not
    /// fit the frame caps.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut buf = Vec::with_capacity(16);
        buf.push(PROTOCOL_VERSION);
        buf.push(self.tag());
        match self {
            Self::Score { value, staleness } => {
                put_f64(&mut buf, *value);
                put_opt_u64(&mut buf, *staleness);
            }
            Self::Values {
                start,
                values,
                staleness,
            } => {
                if values.len() > MAX_FETCH_LEN as usize {
                    return Err(FrameError::Oversized {
                        len: values.len(),
                        max: MAX_FETCH_LEN as usize,
                    });
                }
                put_u32(&mut buf, *start);
                put_u32(&mut buf, values.len() as u32);
                for &v in values {
                    put_f64(&mut buf, v);
                }
                put_opt_u64(&mut buf, *staleness);
            }
            Self::Stats(stats) => {
                if stats.shard_updates.len() > MAX_STATS_SHARDS {
                    return Err(FrameError::Oversized {
                        len: stats.shard_updates.len(),
                        max: MAX_STATS_SHARDS,
                    });
                }
                put_u32(&mut buf, stats.id);
                put_str(&mut buf, &stats.name)?;
                put_u64(&mut buf, stats.dim);
                buf.push(match stats.mode {
                    ReadMode::Live => 0,
                    ReadMode::Snapshot => 1,
                });
                put_u64(&mut buf, stats.iterations);
                put_u64(&mut buf, stats.snapshots);
                buf.push(u8::from(stats.finished));
                put_opt_u64(&mut buf, stats.staleness);
                put_u16(&mut buf, stats.shard_updates.len() as u16);
                for &u in &stats.shard_updates {
                    put_u64(&mut buf, u);
                }
            }
            Self::Error { code, message } => {
                put_u16(&mut buf, *code as u16);
                put_str(&mut buf, message)?;
            }
            Self::Shed {
                priority,
                p99_ns,
                slo_ns,
            } => {
                buf.push(*priority as u8);
                put_u64(&mut buf, *p99_ns);
                put_u64(&mut buf, *slo_ns);
            }
            Self::Ingested { depth } => put_u64(&mut buf, *depth),
            Self::ScrapeText { text } => {
                if text.len() > MAX_SCRAPE_LEN {
                    return Err(FrameError::Oversized {
                        len: text.len(),
                        max: MAX_SCRAPE_LEN,
                    });
                }
                put_u32(&mut buf, text.len() as u32);
                buf.extend_from_slice(text.as_bytes());
            }
        }
        Ok(buf)
    }

    /// Decodes a response body.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] for any malformed body.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut cur = Cursor::new(body);
        let version = cur.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let tag = cur.u8()?;
        let response = match tag {
            1 => Response::Score {
                value: cur.f64()?,
                staleness: cur.opt_u64()?,
            },
            2 => {
                let start = cur.u32()?;
                let n = cur.u32()? as usize;
                if n > MAX_FETCH_LEN as usize {
                    return Err(FrameError::Oversized {
                        len: n,
                        max: MAX_FETCH_LEN as usize,
                    });
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(cur.f64()?);
                }
                Response::Values {
                    start,
                    values,
                    staleness: cur.opt_u64()?,
                }
            }
            3 => {
                let id = cur.u32()?;
                let name = cur.str()?;
                let dim = cur.u64()?;
                let mode = match cur.u8()? {
                    0 => ReadMode::Live,
                    1 => ReadMode::Snapshot,
                    other => return Err(FrameError::BadReadMode(other)),
                };
                let iterations = cur.u64()?;
                let snapshots = cur.u64()?;
                let finished = match cur.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(FrameError::BadBool(other)),
                };
                let staleness = cur.opt_u64()?;
                let shards = cur.u16()? as usize;
                if shards > MAX_STATS_SHARDS {
                    return Err(FrameError::Oversized {
                        len: shards,
                        max: MAX_STATS_SHARDS,
                    });
                }
                let mut shard_updates = Vec::with_capacity(shards);
                for _ in 0..shards {
                    shard_updates.push(cur.u64()?);
                }
                Response::Stats(ModelStats {
                    id,
                    name,
                    dim,
                    mode,
                    iterations,
                    snapshots,
                    finished,
                    staleness,
                    shard_updates,
                })
            }
            4 => Response::Error {
                code: ErrorCode::from_wire(cur.u16()?)?,
                message: cur.str()?,
            },
            5 => Response::Shed {
                priority: Priority::from_wire(cur.u8()?)?,
                p99_ns: cur.u64()?,
                slo_ns: cur.u64()?,
            },
            6 => Response::Ingested { depth: cur.u64()? },
            7 => {
                let n = cur.u32()? as usize;
                if n > MAX_SCRAPE_LEN {
                    return Err(FrameError::Oversized {
                        len: n,
                        max: MAX_SCRAPE_LEN,
                    });
                }
                let bytes = cur.take(n)?;
                Response::ScrapeText {
                    text: String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)?,
                }
            }
            other => return Err(FrameError::BadTag(other)),
        };
        cur.finish()?;
        Ok(response)
    }
}

/// Typed decode/encode failure. Malformed bytes are *errors*, never
/// panics — a hostile peer cannot crash the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before the payload did.
    Truncated {
        /// Bytes the decoder needed next.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A length (frame, probe, fetch, values) exceeds its cap.
    Oversized {
        /// The offending length.
        len: usize,
        /// The cap it broke.
        max: usize,
    },
    /// The body decoded fully but bytes were left over.
    TrailingBytes(usize),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response tag.
    BadTag(u8),
    /// Unknown priority byte.
    BadPriority(u8),
    /// Unknown stats selector byte.
    BadSelector(u8),
    /// Unknown read-mode byte.
    BadReadMode(u8),
    /// Unknown error-code value.
    BadErrorCode(u16),
    /// A byte that must be 0 or 1 was neither.
    BadBool(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A string field exceeds the `u16` length prefix.
    StringTooLong(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { need, have } => {
                write!(f, "truncated frame: needed {need} more bytes, had {have}")
            }
            Self::Oversized { len, max } => {
                write!(f, "oversized frame element: {len} exceeds cap {max}")
            }
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            Self::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            Self::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            Self::BadTag(tag) => write!(f, "unknown response tag {tag}"),
            Self::BadPriority(p) => write!(f, "unknown priority byte {p}"),
            Self::BadSelector(s) => write!(f, "unknown stats selector byte {s}"),
            Self::BadReadMode(m) => write!(f, "unknown read-mode byte {m}"),
            Self::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            Self::BadBool(b) => write!(f, "byte {b} where a bool (0/1) was expected"),
            Self::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            Self::StringTooLong(n) => {
                write!(f, "string field of {n} bytes exceeds the u16 length prefix")
            }
        }
    }
}

impl std::error::Error for FrameError {}

// ------------------------------------------------------------- framed IO

/// Writes one `[len][body]` frame.
///
/// # Errors
///
/// `InvalidInput` when the body exceeds [`MAX_FRAME_LEN`]; otherwise
/// whatever the writer returns.
pub fn write_frame(w: &mut impl std::io::Write, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            FrameError::Oversized {
                len: body.len(),
                max: MAX_FRAME_LEN,
            },
        ));
    }
    // One write, not two: a separate 4-byte length write interacts with
    // Nagle + delayed ACK into ~40ms ping-pong stalls on real sockets.
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(body);
    w.write_all(&framed)
}

/// Reads one `[len][body]` frame into `buf` (cleared first).
///
/// # Errors
///
/// `InvalidData` (wrapping [`FrameError::Oversized`]) when the length
/// prefix exceeds `max` — read *before* any body allocation, so a hostile
/// 4 GiB prefix costs nothing; `UnexpectedEof` when the peer closed
/// mid-frame; otherwise whatever the reader returns.
pub fn read_frame(
    r: &mut impl std::io::Read,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<()> {
    let mut len_bytes = [0_u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            FrameError::Oversized { len, max },
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)
}

// --------------------------------------------------------- little-endian

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), FrameError> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(FrameError::StringTooLong(bytes.len()));
    }
    put_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
    Ok(())
}

/// A bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(FrameError::Truncated { need: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(FrameError::BadBool(other)),
        }
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn finish(self) -> Result<(), FrameError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(FrameError::TrailingBytes(left));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<RequestFrame> {
        vec![
            RequestFrame::new(Request::DotScore {
                model: 7,
                probe: vec![(0, 1.5), (9, -0.25), (u32::MAX, f64::MIN_POSITIVE)],
            })
            .priority(Priority::Low),
            RequestFrame::new(Request::DotScore {
                model: 0,
                probe: vec![],
            }),
            RequestFrame::new(Request::Predict { model: u32::MAX }).priority(Priority::High),
            RequestFrame::new(Request::FetchRange {
                model: 3,
                start: 17,
                len: MAX_FETCH_LEN,
            }),
            RequestFrame::new(Request::ModelStats {
                selector: StatsSelector::ById(42),
            }),
            RequestFrame::new(Request::ModelStats {
                selector: StatsSelector::ByName("café-ranker".to_string()),
            })
            .priority(Priority::High),
            RequestFrame::new(Request::SubmitObserve {
                model: 11,
                features: vec![(0, 0.5), (3, -2.25), (u32::MAX, 1e-12)],
                label: -0.75,
            })
            .priority(Priority::High),
            RequestFrame::new(Request::SubmitObserve {
                model: 0,
                features: vec![],
                label: 0.0,
            }),
            RequestFrame::new(Request::StatsScrape),
            RequestFrame::new(Request::StatsScrape).priority(Priority::Low),
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Score {
                value: -0.0,
                staleness: None,
            },
            Response::Score {
                value: f64::NAN,
                staleness: Some(u64::MAX),
            },
            Response::Values {
                start: 5,
                values: vec![1.0, f64::INFINITY, -1e-300],
                staleness: Some(0),
            },
            Response::Values {
                start: 0,
                values: vec![],
                staleness: None,
            },
            Response::Stats(ModelStats {
                id: 9,
                name: "m".to_string(),
                dim: 1 << 40,
                mode: ReadMode::Snapshot,
                iterations: u64::MAX - 1,
                snapshots: 3,
                finished: true,
                staleness: Some(4_096),
                shard_updates: vec![17, 0, u64::MAX, 9],
            }),
            Response::Stats(ModelStats {
                id: 0,
                name: "flat".to_string(),
                dim: 2,
                mode: ReadMode::Live,
                iterations: 0,
                snapshots: 0,
                finished: false,
                staleness: None,
                shard_updates: vec![],
            }),
            Response::Error {
                code: ErrorCode::NoSuchModel,
                message: "no model with id 9".to_string(),
            },
            Response::Shed {
                priority: Priority::Low,
                p99_ns: 2_000_000,
                slo_ns: 1_000_000,
            },
            Response::Ingested { depth: u64::MAX },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "ingress queue full".to_string(),
            },
            Response::ScrapeText {
                text: String::new(),
            },
            Response::ScrapeText {
                text: "# asgd-telemetry coherent=true\n# TYPE asgd_tau counter\n\
                       asgd_tau{model=\"m\",shard=\"0\"} 41\n"
                    .to_string(),
            },
        ]
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        for frame in sample_requests() {
            let body = frame.encode().expect("encodes");
            let back = RequestFrame::decode(&body).expect("decodes");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        for response in sample_responses() {
            let body = response.encode().expect("encodes");
            let back = Response::decode(&body).expect("decodes");
            // NaN breaks PartialEq; compare through the re-encoded bytes,
            // which are bit-exact by construction.
            assert_eq!(back.encode().expect("re-encodes"), body);
        }
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        for frame in sample_requests() {
            let body = frame.encode().expect("encodes");
            for cut in 0..body.len() {
                let err = RequestFrame::decode(&body[..cut]).expect_err("truncation detected");
                assert!(
                    matches!(err, FrameError::Truncated { .. }),
                    "cut at {cut}: {err:?}"
                );
            }
        }
        for response in sample_responses() {
            let body = response.encode().expect("encodes");
            for cut in 0..body.len() {
                assert!(Response::decode(&body[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = RequestFrame::new(Request::Predict { model: 1 })
            .encode()
            .unwrap();
        body.push(0);
        assert_eq!(
            RequestFrame::decode(&body),
            Err(FrameError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_header_bytes_are_typed_errors() {
        let good = RequestFrame::new(Request::Predict { model: 1 })
            .encode()
            .unwrap();
        let mut wrong_version = good.clone();
        wrong_version[0] = 99;
        assert_eq!(
            RequestFrame::decode(&wrong_version),
            Err(FrameError::BadVersion(99))
        );
        let mut wrong_op = good.clone();
        wrong_op[1] = 200;
        assert_eq!(
            RequestFrame::decode(&wrong_op),
            Err(FrameError::BadOpcode(200))
        );
        let mut wrong_priority = good;
        wrong_priority[2] = 9;
        assert_eq!(
            RequestFrame::decode(&wrong_priority),
            Err(FrameError::BadPriority(9))
        );
        assert_eq!(
            Response::decode(&[PROTOCOL_VERSION, 77]).map(|_| ()),
            Err(FrameError::BadTag(77))
        );
    }

    #[test]
    fn caps_are_enforced_on_encode_and_decode() {
        let big_probe = RequestFrame::new(Request::DotScore {
            model: 0,
            probe: vec![(0, 0.0); MAX_PROBE_LEN + 1],
        });
        assert!(matches!(
            big_probe.encode(),
            Err(FrameError::Oversized { .. })
        ));
        let big_fetch = RequestFrame::new(Request::FetchRange {
            model: 0,
            start: 0,
            len: MAX_FETCH_LEN + 1,
        });
        assert!(matches!(
            big_fetch.encode(),
            Err(FrameError::Oversized { .. })
        ));
        let big_observe = RequestFrame::new(Request::SubmitObserve {
            model: 0,
            features: vec![(0, 0.0); MAX_OBSERVE_LEN + 1],
            label: 0.0,
        });
        assert!(matches!(
            big_observe.encode(),
            Err(FrameError::Oversized { .. })
        ));
        // A hand-forged decode with a huge declared probe count is rejected
        // before any allocation.
        let mut forged = vec![PROTOCOL_VERSION, 1, 1];
        forged.extend_from_slice(&0_u32.to_le_bytes());
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            RequestFrame::decode(&forged),
            Err(FrameError::Oversized { .. })
        ));
        // Same for a forged observation count (opcode 5).
        let mut forged = vec![PROTOCOL_VERSION, 5, 1];
        forged.extend_from_slice(&0_u32.to_le_bytes());
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            RequestFrame::decode(&forged),
            Err(FrameError::Oversized { .. })
        ));
        // A scrape body larger than a frame can carry is an encode error.
        let big_scrape = Response::ScrapeText {
            text: "x".repeat(MAX_SCRAPE_LEN + 1),
        };
        assert!(matches!(
            big_scrape.encode(),
            Err(FrameError::Oversized { .. })
        ));
        // A forged shard count in a stats response is rejected before any
        // allocation: forge the fixed prefix of a valid flat stats body,
        // then overwrite the trailing u16 shard count.
        let mut stats = Response::Stats(ModelStats {
            id: 0,
            name: String::new(),
            dim: 0,
            mode: ReadMode::Live,
            iterations: 0,
            snapshots: 0,
            finished: false,
            staleness: None,
            shard_updates: vec![],
        })
        .encode()
        .unwrap();
        let n = stats.len();
        stats[n - 2..].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(&stats),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn framed_io_round_trips_and_rejects_oversized_prefixes() {
        let body = RequestFrame::new(Request::Predict { model: 5 })
            .encode()
            .unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("writes");
        let mut read = Vec::new();
        read_frame(&mut wire.as_slice(), &mut read, MAX_FRAME_LEN).expect("reads");
        assert_eq!(read, body);
        // A forged 4 GiB length prefix fails with InvalidData before any
        // allocation.
        let forged = (u32::MAX).to_le_bytes();
        let err = read_frame(&mut forged.as_slice(), &mut read, MAX_FRAME_LEN)
            .expect_err("oversized rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A truncated wire stream is UnexpectedEof, not a panic.
        let err = read_frame(&mut wire[..6].as_ref(), &mut read, MAX_FRAME_LEN)
            .expect_err("truncated stream");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn labels_and_displays() {
        for p in Priority::all() {
            assert_eq!(p.label().parse::<Priority>().unwrap(), *p);
            assert_eq!(p.to_string(), p.label());
        }
        assert!("bogus".parse::<Priority>().is_err());
        assert_eq!(ErrorCode::Busy.to_string(), "busy");
        let req = Request::FetchRange {
            model: 0,
            start: 0,
            len: 1,
        };
        assert_eq!(req.op_label(), "fetch-range");
        assert!(FrameError::BadUtf8.to_string().contains("UTF-8"));
        assert!(FrameError::Truncated { need: 4, have: 1 }
            .to_string()
            .contains("truncated"));
        assert_eq!(ErrorCode::Overloaded.to_string(), "overloaded");
    }

    #[test]
    fn only_submit_observe_is_non_idempotent() {
        // The retry layer keys off this: every read op must stay replayable
        // and the one write op must not be.
        for frame in sample_requests() {
            let expected = !matches!(frame.request, Request::SubmitObserve { .. });
            assert_eq!(
                frame.request.idempotent(),
                expected,
                "{}",
                frame.request.op_label()
            );
        }
    }

    #[test]
    fn v1_peers_are_refused_with_a_typed_error() {
        // The v2 bump (submit-observe) is a hard break: a frame stamped
        // with the old version byte must decode to BadVersion, never be
        // half-interpreted.
        let mut old = RequestFrame::new(Request::Predict { model: 1 })
            .encode()
            .unwrap();
        old[0] = 1;
        assert_eq!(RequestFrame::decode(&old), Err(FrameError::BadVersion(1)));
        let mut old_resp = Response::Ingested { depth: 3 }.encode().unwrap();
        old_resp[0] = 1;
        assert_eq!(Response::decode(&old_resp), Err(FrameError::BadVersion(1)));
        assert_eq!(PROTOCOL_VERSION, 2);
    }
}
