//! SLO-based load shedding.
//!
//! The server tracks the rolling p99 of *executed* request latencies in an
//! [`SlidingHistogram`] (a count-rotated
//! window, so old overload decays as fresh traffic arrives) and compares
//! it against a latency objective. Tiers are evaluated at the *shed
//! trigger* — the SLO scaled by [`SloPolicy::trigger_ratio`] — so an
//! operator can shed early enough that the declared objective itself
//! still holds (a threshold controller with no headroom regulates the
//! p99 *to* its threshold, which would leave it hovering at the SLO):
//!
//! * p99 ≤ trigger — healthy; every priority is admitted;
//! * trigger < p99 ≤ 2×trigger — degraded; [`Priority::Low`] is shed;
//! * p99 > 2×trigger — overloaded; only [`Priority::High`] is admitted.
//!
//! Shed requests get an explicit [`Response::Shed`](crate::Response::Shed)
//! frame carrying the observed p99 and the objective — never a silent
//! drop — and skip the request's compute entirely, which is what frees
//! capacity for the admitted traffic. Shed requests are *not* recorded in
//! the window (they complete in ~µs; recording them would drag the p99
//! down and oscillate the shedder), so recovery is driven by the rotation
//! of the window as admitted requests complete.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use asgd_metrics::SlidingHistogram;

use crate::protocol::Priority;

/// Recovers a poisoned mutex: every critical section here leaves the
/// window structurally valid, so the data is safe to keep using.
fn lock_recovered<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shedder's latency objective and window geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Target p99, as a duration. `None` disables shedding entirely.
    pub slo: Option<Duration>,
    /// Fraction of the SLO at which shedding engages (the *shed
    /// trigger*). `1.0` sheds only once the objective is already
    /// violated; values below 1 buy headroom so the executed-request
    /// p99 settles *inside* the objective instead of hovering at it.
    /// Values outside `(0, 1]` are treated as `1.0`.
    pub trigger_ratio: f64,
    /// Number of rotation buckets in the rolling window.
    pub window_buckets: usize,
    /// Executed requests per bucket before the window rotates.
    pub bucket_capacity: u64,
    /// Minimum executed requests in the window before the shedder trusts
    /// its p99 estimate (cold-start guard: a handful of slow warm-up
    /// requests must not shed the whole warm-up).
    pub min_samples: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            slo: None,
            trigger_ratio: 1.0,
            window_buckets: 8,
            bucket_capacity: 256,
            min_samples: 64,
        }
    }
}

impl SloPolicy {
    /// A policy with the given p99 objective and default window geometry.
    #[must_use]
    pub fn with_slo(slo: Duration) -> Self {
        Self {
            slo: Some(slo),
            ..Self::default()
        }
    }
}

/// The verdict for one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Execute the request.
    Admit,
    /// Refuse it with a `Shed` frame.
    Shed {
        /// The rolling p99 that triggered shedding, ns.
        p99_ns: u64,
        /// The objective, ns.
        slo_ns: u64,
    },
}

/// Rolling-p99 load shedder shared by every connection thread.
///
/// The hot path ([`LoadShedder::verdict`]) is a single relaxed atomic
/// load of the cached p99 — the histogram mutex is only taken when
/// recording a completed request, and the p99 is re-derived at most once
/// per [`refresh_stride`](SloPolicy::bucket_capacity) recordings.
#[derive(Debug)]
pub struct LoadShedder {
    policy: SloPolicy,
    window: Mutex<SlidingHistogram>,
    /// Cached rolling p99 in ns; 0 = "no estimate yet".
    p99_ns: AtomicU64,
    /// Executed requests recorded since the last p99 refresh.
    since_refresh: AtomicU64,
    /// Refresh the cached p99 every this many recordings.
    refresh_stride: u64,
    shed_total: AtomicU64,
    executed_total: AtomicU64,
}

impl LoadShedder {
    /// A shedder with the given policy.
    #[must_use]
    pub fn new(policy: SloPolicy) -> Self {
        let window = SlidingHistogram::new(policy.window_buckets, policy.bucket_capacity);
        // Re-deriving quantiles is O(buckets × bins); a stride of 1/8 of a
        // bucket keeps the estimate fresh (sub-bucket granularity) while
        // amortising the scan.
        let refresh_stride = (policy.bucket_capacity / 8).max(1);
        Self {
            policy,
            window: Mutex::new(window),
            p99_ns: AtomicU64::new(0),
            since_refresh: AtomicU64::new(0),
            refresh_stride,
            shed_total: AtomicU64::new(0),
            executed_total: AtomicU64::new(0),
        }
    }

    /// The policy this shedder enforces.
    #[must_use]
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Decides whether a request at `priority` is admitted right now.
    pub fn verdict(&self, priority: Priority) -> Verdict {
        let Some(slo) = self.policy.slo else {
            return Verdict::Admit;
        };
        let p99_ns = self.p99_ns.load(Ordering::Relaxed);
        if p99_ns == 0 {
            return Verdict::Admit; // no estimate yet
        }
        let slo_ns = slo.as_nanos().min(u128::from(u64::MAX)) as u64;
        let ratio = self.policy.trigger_ratio;
        let trigger_ns = if ratio.is_finite() && ratio > 0.0 && ratio < 1.0 {
            ((slo_ns as f64 * ratio) as u64).max(1)
        } else {
            slo_ns
        };
        let floor = if p99_ns <= trigger_ns {
            return Verdict::Admit;
        } else if p99_ns <= trigger_ns.saturating_mul(2) {
            Priority::Normal // degraded: shed Low
        } else {
            Priority::High // overloaded: only High survives
        };
        if priority >= floor {
            Verdict::Admit
        } else {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            Verdict::Shed { p99_ns, slo_ns }
        }
    }

    /// Records the latency of one *executed* request and periodically
    /// refreshes the cached p99. Shed requests must not be recorded.
    pub fn record(&self, latency: Duration) {
        self.executed_total.fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut window = lock_recovered(&self.window);
        window.push(ns);
        let n = self.since_refresh.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.refresh_stride {
            self.since_refresh.store(0, Ordering::Relaxed);
            let p99 = if window.len() >= self.policy.min_samples {
                window.quantile(0.99).unwrap_or(0)
            } else {
                0
            };
            self.p99_ns.store(p99, Ordering::Relaxed);
        }
    }

    /// The cached rolling p99 in ns (`None` before enough samples).
    #[must_use]
    pub fn rolling_p99_ns(&self) -> Option<u64> {
        match self.p99_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Requests shed since construction.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Requests executed (recorded) since construction.
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.executed_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn saturate(shedder: &LoadShedder, latency: Duration, n: u64) {
        for _ in 0..n {
            shedder.record(latency);
        }
    }

    #[test]
    fn no_slo_admits_everything() {
        let shedder = LoadShedder::new(SloPolicy::default());
        saturate(&shedder, ms(1_000), 500);
        for &p in Priority::all() {
            assert_eq!(shedder.verdict(p), Verdict::Admit);
        }
        assert_eq!(shedder.shed_total(), 0);
    }

    #[test]
    fn healthy_latencies_admit_everything() {
        let shedder = LoadShedder::new(SloPolicy::with_slo(ms(10)));
        saturate(&shedder, ms(1), 500);
        for &p in Priority::all() {
            assert_eq!(shedder.verdict(p), Verdict::Admit);
        }
    }

    #[test]
    fn degraded_sheds_low_only() {
        let shedder = LoadShedder::new(SloPolicy::with_slo(ms(10)));
        // p99 lands between SLO and 2×SLO.
        saturate(&shedder, ms(15), 500);
        assert!(matches!(
            shedder.verdict(Priority::Low),
            Verdict::Shed { .. }
        ));
        assert_eq!(shedder.verdict(Priority::Normal), Verdict::Admit);
        assert_eq!(shedder.verdict(Priority::High), Verdict::Admit);
        assert!(shedder.shed_total() > 0);
    }

    #[test]
    fn overloaded_admits_only_high() {
        let shedder = LoadShedder::new(SloPolicy::with_slo(ms(10)));
        saturate(&shedder, ms(100), 500);
        let v = shedder.verdict(Priority::Low);
        let Verdict::Shed { p99_ns, slo_ns } = v else {
            panic!("low must be shed, got {v:?}");
        };
        assert!(p99_ns > slo_ns * 2);
        assert!(matches!(
            shedder.verdict(Priority::Normal),
            Verdict::Shed { .. }
        ));
        assert_eq!(shedder.verdict(Priority::High), Verdict::Admit);
    }

    #[test]
    fn trigger_ratio_sheds_before_the_objective_is_violated() {
        let shedder = LoadShedder::new(SloPolicy {
            trigger_ratio: 0.5, // trigger at 5 ms against a 10 ms SLO
            ..SloPolicy::with_slo(ms(10))
        });
        // p99 ~7 ms: inside the SLO, past the trigger — Low is shed with
        // the frame still reporting the declared objective.
        saturate(&shedder, ms(7), 500);
        let v = shedder.verdict(Priority::Low);
        let Verdict::Shed { p99_ns, slo_ns } = v else {
            panic!("low must be shed at the trigger, got {v:?}");
        };
        assert!(p99_ns <= slo_ns, "shed engaged while still inside the SLO");
        assert_eq!(shedder.verdict(Priority::Normal), Verdict::Admit);
        // p99 ~12 ms: past 2×trigger — only High survives.
        saturate(&shedder, ms(12), 2_000);
        assert!(matches!(
            shedder.verdict(Priority::Normal),
            Verdict::Shed { .. }
        ));
        assert_eq!(shedder.verdict(Priority::High), Verdict::Admit);
    }

    #[test]
    fn out_of_range_trigger_ratio_falls_back_to_the_objective() {
        for ratio in [0.0, -1.0, 2.0, f64::NAN] {
            let shedder = LoadShedder::new(SloPolicy {
                trigger_ratio: ratio,
                ..SloPolicy::with_slo(ms(10))
            });
            saturate(&shedder, ms(8), 500); // inside the SLO
            assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
        }
    }

    #[test]
    fn cold_start_never_sheds() {
        let policy = SloPolicy {
            slo: Some(ms(10)),
            min_samples: 64,
            ..SloPolicy::default()
        };
        let shedder = LoadShedder::new(policy);
        // Fewer than min_samples slow requests: estimate not trusted yet.
        saturate(&shedder, ms(500), 40);
        assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
    }

    #[test]
    fn recovery_after_overload_passes() {
        let shedder = LoadShedder::new(SloPolicy {
            slo: Some(ms(10)),
            window_buckets: 4,
            bucket_capacity: 64,
            min_samples: 32,
            ..SloPolicy::default()
        });
        saturate(&shedder, ms(100), 256);
        assert!(matches!(
            shedder.verdict(Priority::Normal),
            Verdict::Shed { .. }
        ));
        // Healthy traffic rotates the overload out of the window.
        saturate(&shedder, ms(1), 256);
        assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
        assert!(shedder.executed_total() >= 512);
    }
}
