//! Dense `f64` vector kernels.
//!
//! The model of the paper is a dense vector `x ∈ R^d`. These free functions are
//! the only vector arithmetic used across the workspace, so invariants such as
//! the norm inequalities exploited by Eq. (9) of the paper
//! (`‖x‖₂ ≤ ‖x‖₁ ≤ √d·‖x‖₂`) can be property-tested once, here.
//!
//! All functions panic if their slice arguments have mismatched lengths; the
//! model dimension `d` is fixed for the lifetime of a run, so a mismatch is a
//! programming error, not a recoverable condition.

/// Returns the Euclidean (`ℓ2`) norm of `x`.
///
/// # Example
///
/// ```
/// assert_eq!(asgd_math::vec::l2_norm(&[3.0, 4.0]), 5.0);
/// ```
#[must_use]
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Returns the squared Euclidean norm of `x`.
///
/// The success region of the paper is `S = {x : ‖x − x*‖² ≤ ε}`, so the squared
/// norm is the quantity compared against `ε` on every iteration.
#[must_use]
pub fn l2_norm_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>()
}

/// Returns the `ℓ1` norm of `x`.
///
/// Used by the staleness argument of §6.2: the distance between the global
/// accumulator `x_t` and a thread's inconsistent view `v_t` is first bounded
/// entry-wise in `ℓ1`.
#[must_use]
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum::<f64>()
}

/// Returns the `ℓ∞` norm of `x`.
#[must_use]
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Returns the dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y ← y + a·x` (the SGD update `x ← x − α·g̃` is `axpy(x, -α, g)`).
///
/// # Panics
///
/// Panics if `y.len() != x.len()`.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// In-place scaling `x ← a·x`.
pub fn scale(x: &mut [f64], a: f64) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Returns the element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Returns the Euclidean distance `‖x − y‖₂`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn l2_dist(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l2_dist: dimension mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Returns the squared Euclidean distance `‖x − y‖₂²`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn l2_dist_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l2_dist_sq: dimension mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
}

/// Accumulates `acc ← acc + x`.
///
/// # Panics
///
/// Panics if `acc.len() != x.len()`.
pub fn add_assign(acc: &mut [f64], x: &[f64]) {
    axpy(acc, 1.0, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn l2_norm_pythagorean() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn norm_sq_matches_norm() {
        let x = [1.5, -2.5, 0.25];
        assert!((l2_norm_sq(&x) - l2_norm(&x).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn l1_and_linf_basic() {
        let x = [1.0, -2.0, 3.0];
        assert_eq!(l1_norm(&x), 6.0);
        assert_eq!(linf_norm(&x), 3.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_is_sgd_step() {
        let mut x = vec![1.0, 1.0];
        axpy(&mut x, -0.5, &[2.0, 4.0]);
        assert_eq!(x, vec![0.0, -1.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut x = vec![2.0, -4.0];
        scale(&mut x, 0.5);
        assert_eq!(x, vec![1.0, -2.0]);
        assert_eq!(sub(&[3.0, 3.0], &[1.0, 2.0]), vec![2.0, 1.0]);
    }

    #[test]
    fn dist_and_dist_sq_agree() {
        let x = [0.0, 0.0];
        let y = [3.0, 4.0];
        assert!((l2_dist(&x, &y) - 5.0).abs() < 1e-12);
        assert!((l2_dist_sq(&x, &y) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = vec![1.0, 2.0];
        add_assign(&mut acc, &[0.5, 0.5]);
        assert_eq!(acc, vec![1.5, 2.5]);
    }

    proptest! {
        /// The norm sandwich `‖x‖₂ ≤ ‖x‖₁ ≤ √d·‖x‖₂` used in Eq. (9) of the
        /// paper to convert the ℓ1 staleness bound into an ℓ2 one.
        #[test]
        fn norm_sandwich(x in proptest::collection::vec(-1e6_f64..1e6, 1..64)) {
            let d = x.len() as f64;
            let l1 = l1_norm(&x);
            let l2 = l2_norm(&x);
            prop_assert!(l2 <= l1 + 1e-9 * l1.abs().max(1.0));
            prop_assert!(l1 <= d.sqrt() * l2 + 1e-9 * l1.abs().max(1.0));
        }

        /// Cauchy–Schwarz: |xᵀy| ≤ ‖x‖‖y‖.
        #[test]
        fn cauchy_schwarz(
            x in proptest::collection::vec(-1e3_f64..1e3, 1..32),
            y in proptest::collection::vec(-1e3_f64..1e3, 1..32),
        ) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            prop_assert!(dot(x, y).abs() <= l2_norm(x) * l2_norm(y) + 1e-6);
        }

        /// axpy then reverse axpy round-trips.
        #[test]
        fn axpy_roundtrip(
            x in proptest::collection::vec(-1e3_f64..1e3, 1..32),
            g in proptest::collection::vec(-1e3_f64..1e3, 1..32),
            a in -10.0_f64..10.0,
        ) {
            let n = x.len().min(g.len());
            let (orig, g) = (&x[..n], &g[..n]);
            let mut x = orig.to_vec();
            axpy(&mut x, a, g);
            axpy(&mut x, -a, g);
            for (xi, oi) in x.iter().zip(orig) {
                prop_assert!((xi - oi).abs() <= 1e-6 * oi.abs().max(1.0));
            }
        }

        /// Triangle inequality for the distance helper.
        #[test]
        fn triangle_inequality(
            x in proptest::collection::vec(-1e3_f64..1e3, 4),
            y in proptest::collection::vec(-1e3_f64..1e3, 4),
            z in proptest::collection::vec(-1e3_f64..1e3, 4),
        ) {
            prop_assert!(l2_dist(&x, &z) <= l2_dist(&x, &y) + l2_dist(&y, &z) + 1e-6);
        }
    }
}
