//! The shared parameter vector `X[d]` for native threads.

use crate::atomic::{AtomicF64, CacheAligned};
use asgd_oracle::ModelView;

/// Memory layout of the shared entries.
///
/// At small `d`, many `AtomicF64`s share one 64-byte cache line, so threads
/// updating *different* coordinates still ping-pong the line between cores —
/// false sharing. The padded layout gives every entry its own line (8× the
/// memory), which pays off exactly when `d` is small and contention high;
/// compact is the right default for large models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelLayout {
    /// Entries packed contiguously (8 per cache line) — the default.
    #[default]
    Compact,
    /// One entry per 64-byte cache line, eliminating false sharing.
    Padded,
}

/// Memory ordering of entry reads and `fetch&add` updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdateOrder {
    /// Sequentially consistent — the shared-memory model assumed in §2 of
    /// the paper, and the default.
    #[default]
    SeqCst,
    /// Relaxed loads and an AcqRel CAS loop: per-entry atomicity and update
    /// conservation are unchanged, the single total order across entries is
    /// given up (which the inconsistent-view analysis tolerates by design).
    Relaxed,
}

/// One entry on its own 64-byte cache line.
type CachePadded = CacheAligned<AtomicF64>;

#[derive(Debug)]
enum Entries {
    Compact(Vec<AtomicF64>),
    Padded(Vec<CachePadded>),
}

/// A `d`-dimensional model shared by all worker threads, with the exact
/// access pattern of Algorithm 1: entry-wise atomic reads (building a
/// possibly inconsistent view) and entry-wise `fetch&add` updates.
///
/// Construction-time options select the [`ModelLayout`] (false-sharing
/// avoidance) and the [`UpdateOrder`] (paper-faithful SeqCst vs relaxed
/// hardware ordering); [`SharedModel::new`] keeps the paper-faithful
/// compact/SeqCst defaults.
#[derive(Debug)]
pub struct SharedModel {
    entries: Entries,
    order: UpdateOrder,
}

impl SharedModel {
    /// Creates a model initialised to `x0` (compact layout, SeqCst order).
    #[must_use]
    pub fn new(x0: &[f64]) -> Self {
        Self::with_options(x0, ModelLayout::Compact, UpdateOrder::SeqCst)
    }

    /// Creates a model initialised to `x0` with an explicit layout and
    /// update ordering.
    #[must_use]
    pub fn with_options(x0: &[f64], layout: ModelLayout, order: UpdateOrder) -> Self {
        let entries = match layout {
            ModelLayout::Compact => {
                Entries::Compact(x0.iter().map(|&v| AtomicF64::new(v)).collect())
            }
            ModelLayout::Padded => Entries::Padded(
                x0.iter()
                    .map(|&v| CacheAligned(AtomicF64::new(v)))
                    .collect(),
            ),
        };
        Self { entries, order }
    }

    /// Creates a zero model of dimension `d` (Algorithm 1's
    /// `X = (0, …, 0)`), without materialising a temporary `vec![0.0; d]`.
    #[must_use]
    pub fn zeros(d: usize) -> Self {
        Self::zeros_with(d, ModelLayout::Compact, UpdateOrder::SeqCst)
    }

    /// Zero model with explicit layout and ordering options.
    #[must_use]
    pub fn zeros_with(d: usize, layout: ModelLayout, order: UpdateOrder) -> Self {
        let entries = match layout {
            ModelLayout::Compact => Entries::Compact((0..d).map(|_| AtomicF64::new(0.0)).collect()),
            ModelLayout::Padded => {
                Entries::Padded((0..d).map(|_| CacheAligned(AtomicF64::new(0.0))).collect())
            }
        };
        Self { entries, order }
    }

    /// The entry layout this model was built with.
    #[must_use]
    pub fn layout(&self) -> ModelLayout {
        match self.entries {
            Entries::Compact(_) => ModelLayout::Compact,
            Entries::Padded(_) => ModelLayout::Padded,
        }
    }

    /// The update ordering this model was built with.
    #[must_use]
    pub fn order(&self) -> UpdateOrder {
        self.order
    }

    fn entry(&self, j: usize) -> &AtomicF64 {
        match &self.entries {
            Entries::Compact(v) => &v[j],
            Entries::Padded(v) => &v[j].0,
        }
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        match &self.entries {
            Entries::Compact(v) => v.len(),
            Entries::Padded(v) => v.len(),
        }
    }

    /// Atomically reads entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[must_use]
    pub fn read(&self, j: usize) -> f64 {
        let e = self.entry(j);
        match self.order {
            UpdateOrder::SeqCst => e.load(),
            UpdateOrder::Relaxed => e.load_relaxed(),
        }
    }

    /// Reads the whole model entry-by-entry into `view` — the inconsistent
    /// scan of Algorithm 1 line 4 (other threads may update between entry
    /// reads; that is the point).
    ///
    /// # Panics
    ///
    /// Panics if `view.len() != d`.
    pub fn read_view(&self, view: &mut [f64]) {
        assert_eq!(view.len(), self.dimension(), "view dimension mismatch");
        for (j, v) in view.iter_mut().enumerate() {
            *v = self.read(j);
        }
    }

    /// Atomic `fetch&add` on entry `j`, returning the prior value.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn fetch_add(&self, j: usize, delta: f64) -> f64 {
        let e = self.entry(j);
        match self.order {
            UpdateOrder::SeqCst => e.fetch_add(delta),
            UpdateOrder::Relaxed => e.fetch_add_relaxed(delta),
        }
    }

    /// Atomically overwrites entry `j` (used only by epoch initialisation,
    /// never by SGD iterations).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn write(&self, j: usize, value: f64) {
        self.entry(j).store(value);
    }

    /// Snapshots the model into a fresh vector (entry-wise atomic reads; only
    /// consistent when no writers are active).
    #[must_use]
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.dimension()).map(|j| self.read(j)).collect()
    }
}

/// Per-entry reads for sparse oracles: each [`ModelView::entry`] call is one
/// atomic load of the live shared model — exactly the O(Δ) access pattern
/// the sparse fast path exists for.
impl ModelView for SharedModel {
    fn dimension(&self) -> usize {
        self.dimension()
    }

    fn entry(&self, j: usize) -> f64 {
        self.read(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn construction_and_reads() {
        let m = SharedModel::new(&[1.0, -2.0]);
        assert_eq!(m.dimension(), 2);
        assert_eq!(m.read(0), 1.0);
        assert_eq!(m.read(1), -2.0);
        assert_eq!(m.layout(), ModelLayout::Compact);
        assert_eq!(m.order(), UpdateOrder::SeqCst);
        let z = SharedModel::zeros(3);
        assert_eq!(z.snapshot(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn view_and_updates() {
        let m = SharedModel::new(&[0.0, 0.0]);
        assert_eq!(m.fetch_add(0, 2.5), 0.0);
        m.write(1, 7.0);
        let mut view = vec![0.0; 2];
        m.read_view(&mut view);
        assert_eq!(view, vec![2.5, 7.0]);
    }

    #[test]
    #[should_panic(expected = "view dimension mismatch")]
    fn view_size_checked() {
        let m = SharedModel::zeros(2);
        let mut view = vec![0.0; 3];
        m.read_view(&mut view);
    }

    #[test]
    fn all_option_combinations_behave_identically_single_threaded() {
        for layout in [ModelLayout::Compact, ModelLayout::Padded] {
            for order in [UpdateOrder::SeqCst, UpdateOrder::Relaxed] {
                let m = SharedModel::with_options(&[1.0, 2.0, 3.0], layout, order);
                assert_eq!(m.layout(), layout);
                assert_eq!(m.order(), order);
                assert_eq!(m.fetch_add(1, 0.5), 2.0);
                m.write(2, -1.0);
                assert_eq!(m.snapshot(), vec![1.0, 2.5, -1.0]);
                let z = SharedModel::zeros_with(4, layout, order);
                assert_eq!(z.snapshot(), vec![0.0; 4]);
            }
        }
    }

    #[test]
    fn padded_entries_occupy_distinct_cache_lines() {
        assert_eq!(std::mem::align_of::<CachePadded>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded>(), 64);
    }

    #[test]
    fn model_view_reads_the_live_entries() {
        let m = SharedModel::new(&[3.0, -4.0]);
        let view: &dyn asgd_oracle::ModelView = &m;
        assert_eq!(view.dimension(), 2);
        assert_eq!(view.entry(1), -4.0);
        m.fetch_add(1, 1.0);
        assert_eq!(view.entry(1), -3.0, "reads are live, not a snapshot");
    }

    #[test]
    fn concurrent_updates_never_lost() {
        for layout in [ModelLayout::Compact, ModelLayout::Padded] {
            for order in [UpdateOrder::SeqCst, UpdateOrder::Relaxed] {
                let m = Arc::new(SharedModel::zeros_with(4, layout, order));
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let m = Arc::clone(&m);
                        s.spawn(move || {
                            for j in 0..4 {
                                for _ in 0..5_000 {
                                    m.fetch_add(j, 1.0);
                                }
                            }
                        });
                    }
                });
                assert_eq!(
                    m.snapshot(),
                    vec![20_000.0; 4],
                    "{layout:?}/{order:?}: updates lost"
                );
            }
        }
    }
}
