//! Streaming ingress: a bounded observation queue and the
//! [`StreamingOracle`] that turns live labeled data into stochastic
//! gradients.
//!
//! Everything else in this crate samples from a distribution fixed at
//! construction; this module closes the loop instead — served clients (or
//! any producer) push labeled [`Observation`]s into a bounded MPMC
//! [`IngressQueue`], and a [`StreamingOracle`] consumes them as the
//! training run's gradient source. This is exactly the regime analyzed by
//! the asynchronous-SGD literature the paper builds on: gradients computed
//! on asynchronously-arriving, possibly stale samples.
//!
//! Design decisions, each explicit:
//!
//! * **Bounded, with a declared backpressure policy.** A full queue either
//!   blocks the producer ([`BackpressurePolicy::Block`]), evicts the
//!   oldest observation ([`BackpressurePolicy::DropOldest`]), or refuses
//!   the push with a typed error ([`BackpressurePolicy::Reject`]). Nothing
//!   is ever dropped or refused silently: every outcome lands in the
//!   queue's [`QueueCounters`].
//! * **The consumer never blocks.** [`StreamingOracle::sample_gradient`]
//!   uses a non-blocking pop and falls back to a configurable *prior*
//!   oracle when starved, so trainer threads never stall on an empty
//!   queue — the run keeps optimizing the prior objective until data
//!   arrives.
//! * **Determinism is preserved.** Popping an observation consumes **no**
//!   RNG draws; only the starved fallback path does. Two runs consuming
//!   the same observation sequence from the same start point therefore
//!   produce bit-identical trajectories (the workspace's sequential-
//!   equivalence oracle extends to the ingest path; see
//!   `tests/determinism.rs`).
//!
//! An observation `(a, y)` yields the least-squares stochastic gradient
//! `g = (⟨a, x⟩ − y)·a`, supported on `a`'s support — the online
//! counterpart of [`LinearRegression`](crate::LinearRegression)'s
//! per-example gradient.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use asgd_metrics::queue::QueueCounters;
use rand::RngCore;

use crate::constants::Constants;
use crate::oracle::GradientOracle;

/// One labeled example from the stream: a sparse feature vector and its
/// target value.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Sparse features as `(index, weight)` pairs.
    pub features: Vec<(u32, f64)>,
    /// The labeled target `y`.
    pub label: f64,
}

impl Observation {
    /// A new observation.
    #[must_use]
    pub fn new(features: Vec<(u32, f64)>, label: f64) -> Self {
        Self { features, label }
    }

    /// True when every feature index is below `dim` (the bounds check the
    /// wire path performs before enqueueing).
    #[must_use]
    pub fn fits(&self, dim: usize) -> bool {
        self.features.iter().all(|&(j, _)| (j as usize) < dim)
    }
}

/// What a producer experiences when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// The push blocks until the consumer makes room (lossless; producers
    /// slow to the training rate).
    Block,
    /// The oldest queued observation is evicted to admit the new one
    /// (freshest-data-wins; drops are counted).
    DropOldest,
    /// The push fails with [`IngressError::Full`] (the producer decides;
    /// refusals are counted).
    Reject,
}

impl BackpressurePolicy {
    /// Canonical lowercase label (CLI flags, JSON rows).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Block => "block",
            Self::DropOldest => "drop-oldest",
            Self::Reject => "reject",
        }
    }
}

impl std::fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackpressurePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(Self::Block),
            "drop-oldest" | "dropoldest" | "drop" => Ok(Self::DropOldest),
            "reject" => Ok(Self::Reject),
            other => Err(format!(
                "unknown backpressure policy `{other}` (known: block, drop-oldest, reject)"
            )),
        }
    }
}

/// Typed ingress failures. Every variant is a *policy outcome*, not a bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngressError {
    /// The queue is full and the policy is [`BackpressurePolicy::Reject`].
    Full {
        /// The queue's capacity at the time of the refusal.
        capacity: usize,
    },
    /// A blocking push outlived its deadline without space appearing.
    Timeout,
    /// The queue was closed (its model is shutting down).
    Closed,
}

impl std::fmt::Display for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Full { capacity } => {
                write!(f, "ingress queue full (capacity {capacity}), push rejected")
            }
            Self::Timeout => write!(f, "ingress push timed out waiting for queue space"),
            Self::Closed => write!(f, "ingress queue closed"),
        }
    }
}

impl std::error::Error for IngressError {}

/// Queue interior: the buffer plus the monotone push sequence used to
/// compute per-pop consumer lag.
#[derive(Debug)]
struct QueueState {
    items: VecDeque<(u64, Observation)>,
    next_seq: u64,
    closed: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
    counters: Arc<QueueCounters>,
}

/// A bounded MPMC observation queue with an explicit backpressure policy.
///
/// Cloning the handle shares the queue: producers (socket connections,
/// simulated fleets) and consumers ([`StreamingOracle`] inside trainer
/// threads) each hold a clone. All counters live in an
/// [`asgd_metrics::QueueCounters`] shared through
/// [`IngressQueue::counters`].
#[derive(Debug, Clone)]
pub struct IngressQueue {
    shared: Arc<Shared>,
}

impl IngressQueue {
    /// A new queue with `capacity` slots (clamped to ≥ 1) under `policy`.
    #[must_use]
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState {
                    items: VecDeque::new(),
                    next_seq: 0,
                    closed: false,
                }),
                not_full: Condvar::new(),
                capacity: capacity.max(1),
                policy,
                counters: Arc::new(QueueCounters::new()),
            }),
        }
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The queue's backpressure policy.
    #[must_use]
    pub fn policy(&self) -> BackpressurePolicy {
        self.shared.policy
    }

    /// The shared counters (depth, drops, rejects, starvation, lag).
    #[must_use]
    pub fn counters(&self) -> &Arc<QueueCounters> {
        &self.shared.counters
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when the queue holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`IngressQueue::close`] ran.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // Queue state is plain data; a panicking holder leaves it
        // consistent, so recover rather than poison-cascade.
        self.shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pushes one observation under the queue's policy. A `Block` push
    /// waits indefinitely; use [`IngressQueue::push_timeout`] from threads
    /// that must not wedge (e.g. socket connections).
    ///
    /// # Errors
    ///
    /// [`IngressError::Full`] under `Reject` with a full queue;
    /// [`IngressError::Closed`] after [`IngressQueue::close`].
    pub fn push(&self, obs: Observation) -> Result<(), IngressError> {
        self.push_deadline(obs, None)
    }

    /// [`IngressQueue::push`] with an upper bound on how long a `Block`
    /// push may wait.
    ///
    /// # Errors
    ///
    /// As [`IngressQueue::push`], plus [`IngressError::Timeout`] when the
    /// deadline passes with the queue still full.
    pub fn push_timeout(&self, obs: Observation, timeout: Duration) -> Result<(), IngressError> {
        self.push_deadline(obs, Some(timeout))
    }

    fn push_deadline(
        &self,
        obs: Observation,
        timeout: Option<Duration>,
    ) -> Result<(), IngressError> {
        let mut state = self.lock();
        if state.closed {
            return Err(IngressError::Closed);
        }
        if state.items.len() >= self.shared.capacity {
            match self.shared.policy {
                BackpressurePolicy::Block => {
                    let deadline = timeout.map(|t| std::time::Instant::now() + t);
                    while state.items.len() >= self.shared.capacity && !state.closed {
                        state = match deadline {
                            None => self
                                .shared
                                .not_full
                                .wait(state)
                                .unwrap_or_else(std::sync::PoisonError::into_inner),
                            Some(deadline) => {
                                let now = std::time::Instant::now();
                                if now >= deadline {
                                    return Err(IngressError::Timeout);
                                }
                                self.shared
                                    .not_full
                                    .wait_timeout(state, deadline - now)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .0
                            }
                        };
                    }
                    if state.closed {
                        return Err(IngressError::Closed);
                    }
                }
                BackpressurePolicy::DropOldest => {
                    state.items.pop_front();
                    self.shared.counters.record_drop();
                }
                BackpressurePolicy::Reject => {
                    self.shared.counters.record_reject();
                    return Err(IngressError::Full {
                        capacity: self.shared.capacity,
                    });
                }
            }
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.items.push_back((seq, obs));
        self.shared.counters.record_push();
        Ok(())
    }

    /// Non-blocking pop. `None` (a *starved* pop, counted) when the queue
    /// is empty — the consumer falls back to its prior oracle.
    #[must_use]
    pub fn try_pop(&self) -> Option<Observation> {
        let mut state = self.lock();
        match state.items.pop_front() {
            Some((seq, obs)) => {
                // Consumer lag: observations pushed after the consumed one
                // — the queue-side analogue of the paper's delay τ.
                let lag = (state.next_seq - 1).saturating_sub(seq);
                self.shared.counters.record_pop(lag);
                self.shared.not_full.notify_one();
                Some(obs)
            }
            None => {
                self.shared.counters.record_starved();
                None
            }
        }
    }

    /// Closes the queue: queued observations stay poppable, further pushes
    /// fail with [`IngressError::Closed`], and blocked pushers wake.
    pub fn close(&self) {
        self.lock().closed = true;
        self.shared.not_full.notify_all();
    }
}

/// A [`GradientOracle`] fed by an [`IngressQueue`] of live observations,
/// with a prior oracle as the starvation fallback.
///
/// Each [`StreamingOracle::sample_gradient`] call pops one observation
/// `(a, y)` and returns the least-squares gradient `(⟨a, x⟩ − y)·a`
/// (consuming no RNG draws); when the queue is starved it delegates to the
/// prior instead, so trainer threads never stall. The analytic surface —
/// [`objective`](GradientOracle::objective),
/// [`minimizer`](GradientOracle::minimizer),
/// [`constants`](GradientOracle::constants) — is the *prior's*: under
/// drift the stream's true minimizer is known only to the generator, and
/// recovery is measured against that ground truth (see
/// `asgd-ingest::recovery`), never against this oracle's own report.
///
/// Feature indices at or above the model dimension are ignored (the wire
/// path bounds-checks before enqueueing; direct producers should use
/// [`Observation::fits`]).
pub struct StreamingOracle {
    prior: Arc<dyn GradientOracle>,
    queue: IngressQueue,
    consumed: AtomicU64,
    fallbacks: AtomicU64,
}

impl std::fmt::Debug for StreamingOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingOracle")
            .field("dimension", &self.prior.dimension())
            .field("prior", &self.prior.name())
            .field("policy", &self.queue.policy())
            .field("consumed", &self.consumed())
            .field("fallbacks", &self.fallbacks())
            .finish()
    }
}

impl StreamingOracle {
    /// A streaming oracle consuming `queue`, starving back to `prior`.
    #[must_use]
    pub fn new(prior: Arc<dyn GradientOracle>, queue: IngressQueue) -> Self {
        Self {
            prior,
            queue,
            consumed: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// The ingress queue this oracle consumes (clone it to produce).
    #[must_use]
    pub fn queue(&self) -> &IngressQueue {
        &self.queue
    }

    /// The prior (starvation-fallback) oracle.
    #[must_use]
    pub fn prior(&self) -> &Arc<dyn GradientOracle> {
        &self.prior
    }

    /// Gradients computed from consumed observations so far.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Gradients answered by the prior because the queue was starved.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }
}

impl GradientOracle for StreamingOracle {
    fn dimension(&self) -> usize {
        self.prior.dimension()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        let d = self.prior.dimension();
        assert_eq!(x.len(), d, "model dimension mismatch");
        assert_eq!(out.len(), d, "gradient dimension mismatch");
        match self.queue.try_pop() {
            Some(obs) => {
                let mut residual = -obs.label;
                for &(j, w) in &obs.features {
                    if let Some(&xj) = x.get(j as usize) {
                        residual += w * xj;
                    }
                }
                out.fill(0.0);
                for &(j, w) in &obs.features {
                    if let Some(slot) = out.get_mut(j as usize) {
                        *slot += residual * w;
                    }
                }
                self.consumed.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.prior.sample_gradient(x, rng, out);
            }
        }
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        self.prior.full_gradient(x, out);
    }

    fn objective(&self, x: &[f64]) -> f64 {
        self.prior.objective(x)
    }

    fn minimizer(&self) -> &[f64] {
        self.prior.minimizer()
    }

    fn constants(&self, radius: f64) -> Constants {
        self.prior.constants(radius)
    }

    fn name(&self) -> &str {
        "streaming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::NoisyQuadratic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(features: Vec<(u32, f64)>, label: f64) -> Observation {
        Observation::new(features, label)
    }

    #[test]
    fn block_policy_is_lossless_under_a_slow_consumer() {
        let q = IngressQueue::new(2, BackpressurePolicy::Block);
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    q.push(obs(vec![(0, f64::from(i))], 0.0)).expect("pushes");
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < 10 {
            if let Some(o) = q.try_pop() {
                seen.push(o.features[0].1 as i32);
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().expect("producer clean");
        assert_eq!(seen, (0..10).collect::<Vec<_>>(), "in order, none lost");
        let s = q.counters().snapshot();
        assert_eq!((s.pushed, s.popped, s.dropped, s.rejected), (10, 10, 0, 0));
    }

    #[test]
    fn drop_oldest_evicts_from_the_front_and_counts() {
        let q = IngressQueue::new(2, BackpressurePolicy::DropOldest);
        for i in 0..5 {
            q.push(obs(vec![], f64::from(i))).expect("never refuses");
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.counters().dropped(), 3);
        assert_eq!(q.try_pop().expect("has items").label, 3.0);
        assert_eq!(q.try_pop().expect("has items").label, 4.0);
    }

    #[test]
    fn reject_refuses_with_a_typed_error() {
        let q = IngressQueue::new(1, BackpressurePolicy::Reject);
        q.push(obs(vec![], 0.0)).expect("first fits");
        let err = q.push(obs(vec![], 1.0)).expect_err("second refused");
        assert_eq!(err, IngressError::Full { capacity: 1 });
        assert_eq!(q.counters().rejected(), 1);
        assert_eq!(q.len(), 1, "refused push left the queue untouched");
    }

    #[test]
    fn close_wakes_blocked_pushers_and_fails_new_pushes() {
        let q = IngressQueue::new(1, BackpressurePolicy::Block);
        q.push(obs(vec![], 0.0)).expect("fits");
        let blocked = {
            let q = q.clone();
            std::thread::spawn(move || q.push(obs(vec![], 1.0)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().expect("joins"), Err(IngressError::Closed));
        assert_eq!(q.push(obs(vec![], 2.0)), Err(IngressError::Closed));
        assert!(q.is_closed());
        // Queued observations survive the close.
        assert!(q.try_pop().is_some());
    }

    #[test]
    fn push_timeout_bounds_a_blocking_push() {
        let q = IngressQueue::new(1, BackpressurePolicy::Block);
        q.push(obs(vec![], 0.0)).expect("fits");
        let err = q
            .push_timeout(obs(vec![], 1.0), Duration::from_millis(30))
            .expect_err("no space ever appears");
        assert_eq!(err, IngressError::Timeout);
    }

    #[test]
    fn consumer_lag_counts_pushes_after_the_consumed_observation() {
        let q = IngressQueue::new(8, BackpressurePolicy::Block);
        for i in 0..4 {
            q.push(obs(vec![], f64::from(i))).expect("fits");
        }
        let _ = q.try_pop(); // obs 0, 3 pushed after it
        let _ = q.try_pop(); // obs 1, 2 pushed after it
        let s = q.counters().snapshot();
        assert_eq!(s.lag_max, 3);
        assert_eq!(s.lag_sum, 5);
    }

    #[test]
    fn streaming_gradient_is_the_least_squares_residual_times_features() {
        let prior: Arc<dyn GradientOracle> = Arc::new(NoisyQuadratic::new(4, 0.0).unwrap());
        let oracle = StreamingOracle::new(prior, IngressQueue::new(8, BackpressurePolicy::Block));
        oracle
            .queue()
            .push(obs(vec![(0, 2.0), (3, -1.0)], 1.0))
            .expect("fits");
        let x = [1.0, 5.0, 5.0, 2.0];
        let mut g = vec![0.0; 4];
        oracle.sample_gradient(&x, &mut StdRng::seed_from_u64(0), &mut g);
        // residual = 2·1 + (−1)·2 − 1 = −1; g = residual · a.
        assert_eq!(g, vec![-2.0, 0.0, 0.0, 1.0]);
        assert_eq!(oracle.consumed(), 1);
        assert_eq!(oracle.fallbacks(), 0);
    }

    #[test]
    fn starved_oracle_falls_back_to_the_prior_bit_for_bit() {
        let prior = Arc::new(NoisyQuadratic::new(3, 0.5).unwrap());
        let oracle = StreamingOracle::new(
            Arc::clone(&prior) as Arc<dyn GradientOracle>,
            IngressQueue::new(4, BackpressurePolicy::Block),
        );
        let x = [1.0, -2.0, 0.5];
        let mut from_prior = vec![0.0; 3];
        prior.sample_gradient(&x, &mut StdRng::seed_from_u64(7), &mut from_prior);
        let mut from_stream = vec![0.0; 3];
        oracle.sample_gradient(&x, &mut StdRng::seed_from_u64(7), &mut from_stream);
        for (a, b) in from_prior.iter().zip(&from_stream) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(oracle.fallbacks(), 1);
        assert_eq!(oracle.queue().counters().starved(), 1);
    }

    #[test]
    fn popping_consumes_no_rng_draws() {
        // Determinism contract: an observation-backed gradient must leave
        // the RNG stream untouched, so streamed trajectories replay.
        let prior: Arc<dyn GradientOracle> = Arc::new(NoisyQuadratic::new(2, 1.0).unwrap());
        let oracle = StreamingOracle::new(prior, IngressQueue::new(4, BackpressurePolicy::Block));
        oracle.queue().push(obs(vec![(0, 1.0)], 0.0)).expect("fits");
        let mut rng = StdRng::seed_from_u64(42);
        let mut probe = StdRng::seed_from_u64(42);
        let mut g = vec![0.0; 2];
        oracle.sample_gradient(&[1.0, 1.0], &mut rng, &mut g);
        assert_eq!(rng.next_u64(), probe.next_u64(), "stream untouched");
    }

    #[test]
    fn analytic_surface_delegates_to_the_prior() {
        let prior: Arc<dyn GradientOracle> = Arc::new(NoisyQuadratic::new(2, 0.0).unwrap());
        let oracle = StreamingOracle::new(
            Arc::clone(&prior),
            IngressQueue::new(4, BackpressurePolicy::DropOldest),
        );
        assert_eq!(oracle.dimension(), 2);
        assert_eq!(oracle.minimizer(), prior.minimizer());
        assert_eq!(oracle.objective(&[1.0, 1.0]), prior.objective(&[1.0, 1.0]));
        assert_eq!(oracle.constants(1.0).c, prior.constants(1.0).c);
        assert_eq!(oracle.name(), "streaming");
        assert!(oracle.max_support().is_none(), "dense path stays correct");
        let dbg = format!("{oracle:?}");
        assert!(dbg.contains("streaming") || dbg.contains("StreamingOracle"));
    }

    #[test]
    fn out_of_range_feature_indices_are_ignored() {
        let prior: Arc<dyn GradientOracle> = Arc::new(NoisyQuadratic::new(2, 0.0).unwrap());
        let oracle = StreamingOracle::new(prior, IngressQueue::new(4, BackpressurePolicy::Block));
        let bad = obs(vec![(0, 1.0), (9, 100.0)], 0.0);
        assert!(!bad.fits(2));
        assert!(bad.fits(10));
        oracle.queue().push(bad).expect("queue takes anything");
        let mut g = vec![0.0; 2];
        oracle.sample_gradient(&[1.0, 0.0], &mut StdRng::seed_from_u64(0), &mut g);
        assert_eq!(g, vec![1.0, 0.0], "out-of-range entries contribute nothing");
    }
}
