//! Close the loop: continual learning from a live query stream, with
//! mid-run drift and measured recovery.
//!
//! ```text
//! cargo run --release --example ingest_drift
//! ```
//!
//! Hosts a streaming hogwild trainer behind the TCP front-end, runs a
//! heterogeneous producer fleet (fast and slow clients) pushing labeled
//! observations through the wire protocol's submit-observe opcode into the
//! model's bounded ingress queue, and flips the ground truth's sign
//! halfway through the run. A recovery monitor polls `‖x − θ*‖²` against
//! the *current* truth the whole time, so the printout shows the distance
//! jump at the drift instant and the time the trainer took to close the
//! gap from live traffic alone.
//!
//! The prior is the `flat` oracle: a starved gradient step holds position
//! exactly, so the served model is shaped by the stream — when the world
//! moves, only new observations can move the model back.

use asyncsgd::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 8;

fn main() {
    let spec = IngestSpec {
        train: RunSpec::new(OracleSpec::new("flat", DIM), BackendKind::Hogwild)
            .threads(2)
            .iterations(u64::MAX / 4)
            .learning_rate(0.05)
            .x0(vec![0.0; DIM])
            .seed(7),
        capacity: 64,
        policy: BackpressurePolicy::DropOldest,
        producers: heterogeneous_fleet(4, Duration::from_micros(200), 4),
        label_noise: 0.01,
        theta0: vec![0.8; DIM],
        drift: Some(DriftSpec::negate_after(0.6)),
        duration_secs: 1.4,
        recover_frac: 0.9,
        sample_interval: Duration::from_millis(2),
        seed: 0xD21F7,
    };
    println!(
        "streaming {} producers into a capacity-{} `{}` queue for {:.1}s; θ* negates at t=0.6s",
        spec.producers.len(),
        spec.capacity,
        spec.policy.label(),
        spec.duration_secs,
    );

    let observer: Arc<dyn RunObserver> = Arc::new(|event: &RunEvent| {
        if let RunEvent::DriftInjected {
            iteration,
            elapsed_secs,
        } = event
        {
            println!("  drift fired at t={elapsed_secs:.3}s ({iteration} training iterations in)");
        }
    });
    let report = spec.run(Some(observer)).expect("ingest run completes");

    println!(
        "fleet: {} observations acknowledged, {} refused/failed",
        report.observations_sent, report.send_failures,
    );
    println!(
        "queue: pushed {}, consumed {}, dropped {}, rejected {}, lag mean {:.1} / max {}",
        report.pushed,
        report.consumed,
        report.dropped,
        report.rejected,
        report.lag_mean,
        report.lag_max,
    );
    let drift = report.drift.as_ref().expect("drift was scheduled");
    println!(
        "drift `{}`: ‖x−θ*‖² {:.2e} before → {:.2e} after the flip",
        drift.kind, report.baseline_dist_sq, report.drift_dist_sq,
    );
    match report.time_to_recover_secs {
        Some(ttr) => println!(
            "recovered: closed 90% of the gap in {:.1} ms of live traffic (final ‖x−θ*‖² {:.2e})",
            ttr * 1e3,
            report.final_dist_sq,
        ),
        None => println!("did not recover within the window — lengthen the run or raise α"),
    }
    println!(
        "trainer ran {} iterations in {:.2}s wall — clean exit",
        report.train_iterations, report.wall_time_secs,
    );
}
