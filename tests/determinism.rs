//! Determinism and replay: the simulator is a scientific instrument — equal
//! seeds must reproduce executions exactly, recorded schedules must
//! replay to identical machines, and a 1-thread streaming hogwild run
//! consuming a fixed observation sequence must be bit-identical to a
//! sequential run consuming the same sequence.

use asyncsgd::core::lockfree::{EpochSgdConfig, EpochSgdProcess};
use asyncsgd::prelude::*;
use asyncsgd::shmem::sched::{RecordingScheduler, ReplayScheduler};
use asyncsgd::shmem::Engine;
use std::sync::Arc;

fn build_engine(
    oracle: &Arc<NoisyQuadratic>,
    scheduler: impl Scheduler + 'static,
    seed: u64,
) -> Engine {
    Engine::builder()
        .memory(Memory::with_model(&[1.0, -1.0], 1))
        .process(EpochSgdProcess::new(
            Arc::clone(oracle),
            EpochSgdConfig::simple(0.05, 60),
        ))
        .process(EpochSgdProcess::new(
            Arc::clone(oracle),
            EpochSgdConfig::simple(0.05, 60),
        ))
        .scheduler(scheduler)
        .trace(TraceLevel::Events)
        .seed(seed)
        .build()
}

#[test]
fn recorded_schedule_replays_to_identical_execution() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.6).expect("valid"));
    let rec = RecordingScheduler::new(RandomScheduler::new(1234));
    let log = rec.log();
    let original = build_engine(&oracle, rec, 42).run();
    let replayed = build_engine(&oracle, ReplayScheduler::from_log(&log), 42).run();
    assert_eq!(original.fingerprint, replayed.fingerprint);
    assert_eq!(original.memory, replayed.memory);
    assert_eq!(original.steps, replayed.steps);
}

#[test]
fn fingerprint_is_stable_across_runs_and_sensitive_to_everything() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.6).expect("valid"));
    let base = build_engine(&oracle, RandomScheduler::new(7), 42)
        .run()
        .fingerprint;
    // Same everything → same fingerprint.
    assert_eq!(
        base,
        build_engine(&oracle, RandomScheduler::new(7), 42)
            .run()
            .fingerprint
    );
    // Different engine seed (coin streams) → different.
    assert_ne!(
        base,
        build_engine(&oracle, RandomScheduler::new(7), 43)
            .run()
            .fingerprint
    );
    // Different scheduler randomness → different.
    assert_ne!(
        base,
        build_engine(&oracle, RandomScheduler::new(8), 42)
            .run()
            .fingerprint
    );
}

#[test]
fn adversarial_runs_are_reproducible_too() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.4).expect("valid"));
    let run = |seed: u64| {
        LockFreeSgd::builder(Arc::clone(&oracle))
            .threads(3)
            .iterations(150)
            .learning_rate(0.05)
            .scheduler(BoundedDelayAdversary::new(6))
            .seed(seed)
            .run()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.execution.fingerprint, b.execution.fingerprint);
    assert_eq!(a.final_model, b.final_model);
    assert_eq!(
        a.execution.contention.tau_max(),
        b.execution.contention.tau_max()
    );
}

#[test]
fn full_sgd_simulated_is_deterministic() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.8).expect("valid"));
    let go = || {
        asyncsgd::core::full_sgd::run_simulated(
            Arc::clone(&oracle),
            asyncsgd::core::full_sgd::FullSgdConfig {
                alpha0: 0.2,
                epoch_iterations: 40,
                halving_epochs: 2,
            },
            3,
            &[1.0, 1.0],
            RandomScheduler::new(11),
            13,
            None,
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.execution.fingerprint, b.execution.fingerprint);
    assert_eq!(a.r, b.r);
}

#[test]
fn streaming_one_thread_hogwild_is_bit_identical_to_sequential() {
    // The workspace's sequential-equivalence oracle extended to the stream
    // tier: two identical ingress queues preloaded with the same fixed
    // observation sequence, one consumed by the sequential backend, one by
    // 1-thread hogwild. The prior is flat (a starved step holds position
    // exactly: x - α·0 is bit-identity), so however the fallback steps
    // interleave with the stream, the trajectory is determined by the
    // observation sequence alone — and the two backends must land on
    // bit-identical models.
    let dim = 6;
    let observations: Vec<Observation> = (0..48_u32)
        .map(|k| {
            let j = k % dim as u32;
            let value = 1.0 + f64::from(k % 7) * 0.125;
            let label = 0.75 - f64::from(k % 5) * 0.25;
            Observation::new(vec![(j, value), ((j + 2) % dim as u32, -0.5)], label)
        })
        .collect();
    let preloaded = || {
        let queue = IngressQueue::new(observations.len(), BackpressurePolicy::Block);
        for obs in &observations {
            queue.push(obs.clone()).expect("preloads within capacity");
        }
        // Closed: queued observations stay poppable, so the trainer drains
        // exactly this sequence and then starves into the flat prior.
        queue.close();
        Arc::new(StreamingOracle::new(
            Arc::new(Flat::new(dim).expect("valid prior")),
            queue,
        ))
    };
    // More iterations than observations: the surplus steps are starved
    // no-ops and must not perturb the equivalence.
    let spec = RunSpec::new(OracleSpec::new("flat", dim), BackendKind::Sequential)
        .threads(1)
        .iterations(observations.len() as u64 + 64)
        .learning_rate(0.05)
        .x0(vec![0.2; dim])
        .seed(9);

    let seq_oracle = preloaded();
    let sequential = run_spec_session(
        &spec,
        &SessionCtx::default().with_oracle(seq_oracle.clone()),
    )
    .expect("sequential streaming run");
    let hog_oracle = preloaded();
    let hogwild = run_spec_session(
        &spec.clone().backend(BackendKind::Hogwild),
        &SessionCtx::default().with_oracle(hog_oracle.clone()),
    )
    .expect("hogwild streaming run");

    // Both drained the whole sequence (and starved for the surplus).
    for oracle in [&seq_oracle, &hog_oracle] {
        assert_eq!(oracle.consumed(), observations.len() as u64);
        assert_eq!(oracle.fallbacks(), 64);
    }
    assert_eq!(sequential.final_model.len(), dim);
    for (j, (s, h)) in sequential
        .final_model
        .iter()
        .zip(&hogwild.final_model)
        .enumerate()
    {
        assert_eq!(
            s.to_bits(),
            h.to_bits(),
            "x[{j}] diverges between sequential and 1-thread streaming hogwild: {s} vs {h}"
        );
    }
    // The stream moved the model: this is not vacuous zero-vs-zero.
    assert!(
        sequential.final_model.iter().any(|v| *v != 0.2),
        "observations never reached the trainer"
    );
}
