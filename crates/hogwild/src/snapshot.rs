//! Snapshot publication and live reader handles for model serving.
//!
//! The paper's central claim is that the shared iterate stays *useful while
//! training is still mutating it*: inference may read `X` concurrently with
//! the lock-free writers, under exactly the inconsistent-view semantics the
//! adversary is allowed (§2). This module gives external readers two ways
//! into a running executor:
//!
//! * **live reads** through [`ModelReader`] — per-entry atomic loads of the
//!   executing [`ParamStore`] (flat or sharded), racing the trainers entry
//!   by entry (inconsistent across entries, exactly like a worker's own
//!   view scan);
//! * **coherent snapshots** through [`SnapshotCell`] — an epoch-versioned
//!   double buffer the executor publishes into every
//!   [`ServeHook::publish_stride`] claims; a reader always obtains one
//!   internally consistent vector (for a single trainer thread, an *exact*
//!   trajectory point `x_c`), tagged with the claim index it was taken at.
//!   The tag's age at read time is the *staleness* the serving tiers report
//!   — per-query in `ServeReport`, and as the
//!   `asgd_model_snapshot_staleness` gauge and `asgd_net_serve_staleness`
//!   histogram in the process-wide telemetry registry (`asgd-telemetry`)
//!   served over the wire by the stats-scrape opcode.
//!
//! The cell is a wait-free-for-writers, lock-free-for-readers seqlock over
//! two buffers, built from safe atomics only: publishers bit-store `f64`s
//! into the buffer the current version does *not* expose, then release the
//! next version; readers validate after copying that no publisher has
//! re-entered their buffer (two publishes ahead) and retry otherwise.
//! Publication is pure observation — it never touches the model, the claim
//! counter, or any RNG stream, so an attached serving layer cannot perturb a
//! run's trajectory.
//!
//! The publish/read protocol is model-checked in `asgd-chaos`
//! (`SnapshotModel`): every schedule within a preemption bound is explored
//! for torn snapshots, version regressions, and unbounded reader retries,
//! and a deliberately weakened publish fence is shown to tear — evidence
//! the announce-before-fill ordering below is load-bearing.

use crate::shard::ParamStore;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One published, internally consistent model snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Publication version (1-based; strictly increasing per cell).
    pub version: u64,
    /// Training progress the snapshot was taken at, **monotone across
    /// versions** (the cell clamps a stalled publisher's tag up to the
    /// previously published one). With one trainer thread this is exactly
    /// the number of updates applied; with several it is the global claim
    /// count at the moment the copy started (in-flight writers may land
    /// mid-copy — the *copy* is coherent, the training point it names is
    /// approximate, as the paper's inconsistent views are, overstating
    /// completed updates by at most the thread count).
    pub iteration: u64,
    /// The snapshot vector.
    pub values: Vec<f64>,
}

/// Epoch-versioned double-buffered snapshot storage.
///
/// Writers publish at most one at a time (a CAS writer latch makes losers
/// skip rather than wait — publication from a training hot loop must never
/// block); readers copy without locking and retry only if two publications
/// completed during their copy.
#[derive(Debug)]
pub struct SnapshotCell {
    /// Last fully published version; `0` means "nothing published yet".
    /// Version `k` lives in buffer `k % 2`.
    seq: AtomicU64,
    /// Version currently (or last) being written. Readers use it to detect
    /// a publisher re-entering the buffer they are copying.
    wseq: AtomicU64,
    /// Publisher exclusivity latch.
    writer: AtomicBool,
    /// The two value buffers (f64 bit patterns).
    bufs: [Box<[AtomicU64]>; 2],
    /// Claim index each buffer's snapshot was taken at.
    iters: [AtomicU64; 2],
}

impl SnapshotCell {
    /// An empty cell for models of dimension `d`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        let buf = || (0..d).map(|_| AtomicU64::new(0)).collect::<Box<[_]>>();
        Self {
            seq: AtomicU64::new(0),
            wseq: AtomicU64::new(0),
            writer: AtomicBool::new(false),
            bufs: [buf(), buf()],
            iters: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Model dimension the cell stores.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.bufs[0].len()
    }

    /// Latest published version (`0` before the first publication).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// True once at least one snapshot has been published.
    #[must_use]
    pub fn has_snapshot(&self) -> bool {
        self.version() != 0
    }

    /// Publishes the model's current state as the next version, tagged with
    /// `iteration` (clamped up to the previous version's tag, so published
    /// tags never regress even when a stalled publisher wins the latch
    /// late), unless another publisher is mid-publication (then the call is
    /// skipped and `None` returned — the next stride boundary will publish
    /// a fresher state anyway). Returns `(version, stored tag)` on success.
    ///
    /// # Panics
    ///
    /// Panics if the model's dimension differs from the cell's.
    pub fn try_publish(&self, model: &ParamStore, iteration: u64) -> Option<(u64, u64)> {
        self.try_publish_notify(model, iteration, |_, _| {})
    }

    /// Like [`SnapshotCell::try_publish`], invoking `notify` with the
    /// published `(version, tag)` **before releasing the writer latch** —
    /// notifications therefore observe versions in strictly increasing
    /// order even when racing publishers alternate (a publisher preempted
    /// between publishing and notifying would otherwise let a later version
    /// notify first). While `notify` runs, concurrent publishers skip
    /// (they never block), so keep it fast.
    ///
    /// # Panics
    ///
    /// Panics if the model's dimension differs from the cell's.
    pub fn try_publish_notify(
        &self,
        model: &ParamStore,
        iteration: u64,
        notify: impl FnOnce(u64, u64),
    ) -> Option<(u64, u64)> {
        assert_eq!(
            model.dimension(),
            self.dimension(),
            "snapshot dimension mismatch"
        );
        if self
            .writer
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let version = self.seq.load(Ordering::Relaxed) + 1;
        // Monotone tags: under the latch the currently exposed buffer is
        // stable, so its tag is safe to read directly.
        let prev_tag = if version >= 2 {
            self.iters[((version - 1) % 2) as usize].load(Ordering::Relaxed)
        } else {
            0
        };
        let tag = iteration.max(prev_tag);
        // Seqlock write protocol: announce the write target first, fence so
        // any reader that observes one of our buffer stores also observes
        // `wseq >= version` after its own acquire fence, then fill the
        // buffer the current version does not expose.
        self.wseq.store(version, Ordering::Relaxed);
        fence(Ordering::Release);
        let buf = &self.bufs[(version % 2) as usize];
        for (j, slot) in buf.iter().enumerate() {
            slot.store(model.read(j).to_bits(), Ordering::Relaxed);
        }
        self.iters[(version % 2) as usize].store(tag, Ordering::Relaxed);
        // Release: every buffer store above happens-before a reader's
        // acquire load of the new version.
        self.seq.store(version, Ordering::Release);
        notify(version, tag);
        self.writer.store(false, Ordering::Release);
        Some((version, tag))
    }

    /// Copies the latest snapshot into `out` (resized to the model
    /// dimension) and returns its `(version, iteration)` tag, or `None`
    /// before the first publication. Lock-free: retries only if two
    /// publications completed while copying.
    pub fn read_into(&self, out: &mut Vec<f64>) -> Option<(u64, u64)> {
        loop {
            let version = self.seq.load(Ordering::Acquire);
            if version == 0 {
                return None;
            }
            let buf = &self.bufs[(version % 2) as usize];
            out.clear();
            out.extend(
                buf.iter()
                    .map(|slot| f64::from_bits(slot.load(Ordering::Relaxed))),
            );
            let iteration = self.iters[(version % 2) as usize].load(Ordering::Relaxed);
            // Seqlock read validation (see `try_publish`): if any load above
            // observed a store from publication `version + 2k`, the fence
            // pairing guarantees this `wseq` load sees it and we retry.
            fence(Ordering::Acquire);
            if self.wseq.load(Ordering::Relaxed) < version + 2 {
                return Some((version, iteration));
            }
        }
    }

    /// The latest snapshot's `(version, iteration)` tag without copying the
    /// vector — an O(1) staleness probe (`None` before the first
    /// publication). Validated like [`SnapshotCell::read_into`].
    #[must_use]
    pub fn latest_tag(&self) -> Option<(u64, u64)> {
        loop {
            let version = self.seq.load(Ordering::Acquire);
            if version == 0 {
                return None;
            }
            let iteration = self.iters[(version % 2) as usize].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if self.wseq.load(Ordering::Relaxed) < version + 2 {
                return Some((version, iteration));
            }
        }
    }

    /// Copies the latest snapshot into a fresh [`ModelSnapshot`] (`None`
    /// before the first publication).
    #[must_use]
    pub fn read(&self) -> Option<ModelSnapshot> {
        let mut values = Vec::new();
        let (version, iteration) = self.read_into(&mut values)?;
        Some(ModelSnapshot {
            version,
            iteration,
            values,
        })
    }
}

/// A cloneable handle for reading a (possibly still training) run's model:
/// live per-entry loads, coherent published snapshots, and the training
/// progress counter. Obtained from a [`ServeHook`] once the executor
/// attaches; stays fully usable after the run finishes (the final state is
/// published as the last snapshot, and live reads then see the quiescent
/// final model exactly).
#[derive(Debug, Clone)]
pub struct ModelReader {
    model: Arc<ParamStore>,
    cell: Arc<SnapshotCell>,
    claims: Arc<AtomicU64>,
    budget: u64,
}

impl ModelReader {
    /// Assembles a reader. Executors call this when attaching to a
    /// [`ServeHook`]; services receive the result.
    #[must_use]
    pub fn new(
        model: Arc<ParamStore>,
        cell: Arc<SnapshotCell>,
        claims: Arc<AtomicU64>,
        budget: u64,
    ) -> Self {
        Self {
            model,
            cell,
            claims,
            budget,
        }
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.model.dimension()
    }

    /// Live atomic read of entry `j` — races concurrent trainers, exactly
    /// like one entry of a worker's view scan.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[must_use]
    pub fn read_entry(&self, j: usize) -> f64 {
        self.model.read(j)
    }

    /// Live entry-by-entry scan into `out` — the inconsistent view of
    /// Algorithm 1 line 4, taken by a reader instead of a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the model dimension.
    pub fn read_live(&self, out: &mut [f64]) {
        self.model.read_view(out);
    }

    /// The live shared store, for [`asgd_oracle::ModelView`]-based
    /// per-entry access (e.g. sparse scoring against the training state).
    #[must_use]
    pub fn model(&self) -> &ParamStore {
        &self.model
    }

    /// Shard count of the underlying store (1 for the flat store).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.model.shard_count()
    }

    /// Reads the per-shard applied-update counters as an instantaneous
    /// cross-shard vector (double-collect validated — see
    /// `ShardedModel::coherent_update_counts`): `None` for a flat store,
    /// otherwise `Some(coherent)` with `out` holding one count per shard.
    /// These are the measured per-range update rates τ a delay-adaptive
    /// consumer can difference between calls.
    pub fn shard_updates(&self, out: &mut Vec<u64>) -> Option<bool> {
        self.model.sharded().map(|m| m.coherent_update_counts(out))
    }

    /// Copies the latest coherent snapshot into `out`, returning its
    /// `(version, iteration)` tag (`None` before the first publication).
    /// Callers that cache by version get O(1) freshness checks via
    /// [`ModelReader::snapshot_version`].
    pub fn snapshot_into(&self, out: &mut Vec<f64>) -> Option<(u64, u64)> {
        self.cell.read_into(out)
    }

    /// The latest coherent snapshot (`None` before the first publication).
    #[must_use]
    pub fn snapshot(&self) -> Option<ModelSnapshot> {
        self.cell.read()
    }

    /// Latest published snapshot version (`0` before the first).
    #[must_use]
    pub fn snapshot_version(&self) -> u64 {
        self.cell.version()
    }

    /// The latest snapshot's `(version, iteration)` tag — an O(1) staleness
    /// probe (`None` before the first publication).
    #[must_use]
    pub fn snapshot_tag(&self) -> Option<(u64, u64)> {
        self.cell.latest_tag()
    }

    /// Training iterations claimed so far, clamped to the run's budget (the
    /// claim counter overshoots by up to one claim per worker at the end of
    /// a run). The staleness of a snapshot taken at iteration `i` is
    /// `iterations() - i`.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.claims.load(Ordering::SeqCst).min(self.budget)
    }

    /// The run's total iteration budget `T`.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Callback invoked after each snapshot publication with
/// `(version, iteration)`.
pub type PublishListener = Box<dyn Fn(u64, u64) + Send + Sync>;

/// The serving attachment point threaded into a native executor through
/// [`RunControl::serve`](crate::RunControl).
///
/// One hook serves one run: the executor calls [`ServeHook::attach`] with a
/// [`ModelReader`] before its workers start and publishes snapshots every
/// [`ServeHook::publish_stride`] claims (plus a final publication of the
/// quiescent model after the workers join — also on cancellation, so the
/// last snapshot always reflects the reported final state). The serving
/// side blocks on [`ServeHook::wait_reader`] and reads from then on.
pub struct ServeHook {
    publish_stride: u64,
    reader: Mutex<Option<ModelReader>>,
    ready: Condvar,
    listener: Mutex<Option<PublishListener>>,
}

impl std::fmt::Debug for ServeHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHook")
            .field("publish_stride", &self.publish_stride)
            .field("attached", &self.reader().is_some())
            .finish_non_exhaustive()
    }
}

/// Locks a mutex, recovering the inner value if a previous holder
/// panicked. The data guarded across the serving stack (a reader slot, a
/// listener, a cached report) has no invariants a panicking holder could
/// break, and serving must keep working even if one listener panicked —
/// exposed so downstream serving layers apply the same policy without
/// re-implementing it.
pub fn lock_recovered<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ServeHook {
    /// A hook publishing every `publish_stride` claims (clamped to ≥ 1).
    #[must_use]
    pub fn new(publish_stride: u64) -> Self {
        Self {
            publish_stride: publish_stride.max(1),
            reader: Mutex::new(None),
            ready: Condvar::new(),
            listener: Mutex::new(None),
        }
    }

    /// Claim-index stride between snapshot publications.
    #[must_use]
    pub fn publish_stride(&self) -> u64 {
        self.publish_stride
    }

    /// True if `claim` is a publication point.
    #[must_use]
    pub fn publishes_at(&self, claim: u64) -> bool {
        claim.is_multiple_of(self.publish_stride)
    }

    /// Installs (replaces) the publication listener. The driver uses this to
    /// forward publications as session events.
    pub fn set_listener(&self, listener: PublishListener) {
        *lock_recovered(&self.listener) = Some(listener);
    }

    /// Executor side: exposes the run's reader and wakes waiting services.
    pub fn attach(&self, reader: ModelReader) {
        *lock_recovered(&self.reader) = Some(reader);
        self.ready.notify_all();
    }

    /// The attached reader, if the executor has started (cloned — readers
    /// are handles).
    #[must_use]
    pub fn reader(&self) -> Option<ModelReader> {
        lock_recovered(&self.reader).clone()
    }

    /// Blocks until the executor attaches (or `timeout` elapses).
    #[must_use]
    pub fn wait_reader(&self, timeout: Duration) -> Option<ModelReader> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_recovered(&self.reader);
        loop {
            if let Some(reader) = &*slot {
                return Some(reader.clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, _) = self
                .ready
                .wait_timeout(slot, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Executor side: notifies the listener (if any) that `version` was
    /// published at claim `iteration`.
    pub fn notify_published(&self, version: u64, iteration: u64) {
        if let Some(listener) = &*lock_recovered(&self.listener) {
            listener(version, iteration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(values: &[f64]) -> Arc<ParamStore> {
        Arc::new(ParamStore::Flat(crate::model::SharedModel::new(values)))
    }

    #[test]
    fn empty_cell_has_no_snapshot() {
        let cell = SnapshotCell::new(3);
        assert_eq!(cell.dimension(), 3);
        assert_eq!(cell.version(), 0);
        assert!(!cell.has_snapshot());
        assert_eq!(cell.read(), None);
        assert_eq!(cell.read_into(&mut Vec::new()), None);
    }

    #[test]
    fn publish_and_read_round_trip() {
        let cell = SnapshotCell::new(2);
        let m = model(&[1.5, -2.5]);
        assert_eq!(cell.try_publish(&m, 7), Some((1, 7)));
        let snap = cell.read().expect("published");
        assert_eq!(snap.version, 1);
        assert_eq!(snap.iteration, 7);
        assert_eq!(snap.values, vec![1.5, -2.5]);
        // A second publication lands in the other buffer and supersedes.
        m.write(0, 9.0);
        assert_eq!(cell.try_publish(&m, 8), Some((2, 8)));
        let snap = cell.read().expect("published");
        assert_eq!((snap.version, snap.iteration), (2, 8));
        assert_eq!(snap.values, vec![9.0, -2.5]);
        assert_eq!(cell.latest_tag(), Some((2, 8)));
    }

    #[test]
    fn published_tags_never_regress() {
        // A publisher that stalled between reading its progress and winning
        // the latch must not move the published iteration backwards.
        let cell = SnapshotCell::new(1);
        let m = model(&[0.5]);
        assert_eq!(cell.try_publish(&m, 100), Some((1, 100)));
        assert_eq!(
            cell.try_publish(&m, 40),
            Some((2, 100)),
            "stale tag clamps up to the previous one"
        );
        assert_eq!(cell.try_publish(&m, 140), Some((3, 140)));
        assert_eq!(cell.read().map(|s| s.iteration), Some(140));
    }

    #[test]
    #[should_panic(expected = "snapshot dimension mismatch")]
    fn dimension_mismatch_is_rejected() {
        let cell = SnapshotCell::new(2);
        let m = model(&[1.0, 2.0, 3.0]);
        let _ = cell.try_publish(&m, 0);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_snapshot() {
        // Publisher alternates between two recognisable vectors; readers
        // must only ever see one of them, never a mix.
        let d = 64;
        let cell = Arc::new(SnapshotCell::new(d));
        let a = model(&vec![1.0; d]);
        let b = model(&vec![-1.0; d]);
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let writer_cell = Arc::clone(&cell);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                for i in 0..20_000_u64 {
                    let m = if i % 2 == 0 { &a } else { &b };
                    let _ = writer_cell.try_publish(m, i);
                }
                writer_stop.store(true, Ordering::SeqCst);
            });
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut buf = Vec::new();
                    let mut seen = 0_u64;
                    let mut last_version = 0;
                    while !stop.load(Ordering::SeqCst) || seen == 0 {
                        let Some((version, iteration)) = cell.read_into(&mut buf) else {
                            continue;
                        };
                        assert!(version >= last_version, "versions are monotone");
                        last_version = version;
                        let first = buf[0];
                        assert!(first == 1.0 || first == -1.0);
                        assert!(
                            buf.iter().all(|&v| v == first),
                            "torn snapshot at version {version} (iteration {iteration})"
                        );
                        seen += 1;
                    }
                });
            }
        });
    }

    #[test]
    fn reader_handle_reads_live_and_snapshots() {
        let m = model(&[2.0, 4.0]);
        let cell = Arc::new(SnapshotCell::new(2));
        let claims = Arc::new(AtomicU64::new(0));
        let reader = ModelReader::new(Arc::clone(&m), Arc::clone(&cell), Arc::clone(&claims), 100);
        assert_eq!(reader.dimension(), 2);
        assert_eq!(reader.read_entry(1), 4.0);
        let mut live = vec![0.0; 2];
        reader.read_live(&mut live);
        assert_eq!(live, vec![2.0, 4.0]);
        assert_eq!(reader.snapshot(), None);
        assert_eq!(reader.snapshot_version(), 0);
        // Live reads track the model; snapshots only move on publication.
        m.fetch_add(0, 1.0);
        claims.fetch_add(5, Ordering::SeqCst);
        assert_eq!(reader.read_entry(0), 3.0);
        assert_eq!(reader.iterations(), 5);
        let _ = cell.try_publish(&m, 5);
        let snap = reader.snapshot().expect("published");
        assert_eq!(snap.values, vec![3.0, 4.0]);
        assert_eq!(reader.snapshot_version(), 1);
        // The claim counter clamps to the budget.
        claims.store(10_000, Ordering::SeqCst);
        assert_eq!(reader.iterations(), 100);
        assert_eq!(reader.budget(), 100);
        // The model is reachable for ModelView-style access.
        assert_eq!(asgd_oracle::ModelView::entry(reader.model(), 1), 4.0);
    }

    #[test]
    fn reader_exposes_shard_progress_on_sharded_stores() {
        use crate::model::UpdateOrder;
        use crate::shard::ShardedModel;
        let flat = model(&[1.0, 2.0]);
        let flat_reader = ModelReader::new(
            Arc::clone(&flat),
            Arc::new(SnapshotCell::new(2)),
            Arc::new(AtomicU64::new(0)),
            10,
        );
        assert_eq!(flat_reader.shard_count(), 1);
        assert_eq!(flat_reader.shard_updates(&mut Vec::new()), None);

        let sharded = Arc::new(ParamStore::Sharded(ShardedModel::with_options(
            &[0.0; 8],
            4,
            UpdateOrder::SeqCst,
        )));
        sharded.fetch_add(0, 1.0);
        sharded.fetch_add(7, 1.0);
        let reader = ModelReader::new(
            Arc::clone(&sharded),
            Arc::new(SnapshotCell::new(8)),
            Arc::new(AtomicU64::new(0)),
            10,
        );
        assert_eq!(reader.shard_count(), 4);
        let mut counts = Vec::new();
        assert_eq!(reader.shard_updates(&mut counts), Some(true), "quiescent");
        assert_eq!(counts, vec![1, 0, 0, 1]);
    }

    #[test]
    fn hook_attach_wakes_waiters_and_notifies_listener() {
        let hook = Arc::new(ServeHook::new(0));
        assert_eq!(hook.publish_stride(), 1, "stride clamps to 1");
        assert!(hook.publishes_at(0) && hook.publishes_at(5));
        assert!(ServeHook::new(4).publishes_at(8));
        assert!(!ServeHook::new(4).publishes_at(6));
        assert!(hook.reader().is_none());
        let waiter = Arc::clone(&hook);
        let handle = std::thread::spawn(move || {
            waiter
                .wait_reader(Duration::from_secs(10))
                .expect("attached")
                .dimension()
        });
        let published = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&published);
        hook.set_listener(Box::new(move |version, iteration| {
            sink.lock().unwrap().push((version, iteration));
        }));
        let m = model(&[0.0; 3]);
        let cell = Arc::new(SnapshotCell::new(3));
        hook.attach(ModelReader::new(
            Arc::clone(&m),
            Arc::clone(&cell),
            Arc::new(AtomicU64::new(0)),
            10,
        ));
        assert_eq!(handle.join().unwrap(), 3);
        let (version, tag) = cell.try_publish(&m, 4).expect("no contention");
        hook.notify_published(version, tag);
        assert_eq!(*published.lock().unwrap(), vec![(1, 4)]);
        assert!(format!("{hook:?}").contains("attached: true"));
    }

    #[test]
    fn wait_reader_times_out_cleanly() {
        let hook = ServeHook::new(8);
        assert!(hook.wait_reader(Duration::from_millis(10)).is_none());
    }
}
