//! Prometheus text exposition: rendering a [`MetricsSnapshot`] and parsing
//! one back.
//!
//! The renderer emits the subset of the text format scrapers understand —
//! `# TYPE` comments, one sample per line, histogram `_bucket{le=…}` /
//! `_sum` / `_count` series — plus one leading comment carrying the
//! snapshot's coherence flag. The parser inverts it exactly: for every
//! snapshot, `parse(render(s)) == s` (a registry-wide property test), so a
//! scrape is a lossless transport of the registry state, not a lossy
//! pretty-print. `f64` gauges round-trip through Rust's shortest-exact
//! `Display` / `parse` pair.

use crate::registry::{HistogramSnapshot, MetricsSnapshot};

/// Renders a snapshot in Prometheus text exposition format.
#[must_use]
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("# asgd-telemetry coherent={}\n", snap.coherent));
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE {} counter\n{name} {v}\n", base_name(name)));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("# TYPE {} gauge\n{name} {v}\n", base_name(name)));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("# TYPE {} histogram\n", base_name(name)));
        for &(le, cum) in &h.buckets {
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// The metric name with any label block stripped (what `# TYPE` lines name).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// A typed exposition-parse failure, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exposition parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses exposition text produced by [`render`] back into a snapshot.
///
/// # Errors
///
/// [`ParseError`] on any line that is neither a comment nor a well-formed
/// sample, on out-of-order histogram series, and on unparseable numbers.
pub fn parse(text: &str) -> Result<MetricsSnapshot, ParseError> {
    let mut snap = MetricsSnapshot::default();
    // name → declared type, from # TYPE lines.
    let mut types = std::collections::BTreeMap::new();
    // Histogram under assembly: (full name, state).
    let mut open_hist: Option<(String, HistogramSnapshot)> = None;
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_string(),
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# asgd-telemetry coherent=") {
            snap.coherent = rest.parse().map_err(|_| err(lineno, "bad coherent flag"))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next(), it.next());
            let (Some(name), Some(kind)) = (name, kind) else {
                return Err(err(lineno, "malformed TYPE comment"));
            };
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        // A sample: everything before the last space is the name (labels may
        // embed spaces only inside quotes, which our names never do).
        let Some(split_at) = line.rfind(' ') else {
            return Err(err(lineno, "sample line without a value"));
        };
        let (name, value) = (line[..split_at].trim_end(), line[split_at + 1..].trim());
        let series_kind = |name: &str| types.get(base_name(name)).map(String::as_str);
        // Histogram series are recognised by suffix against a declared
        // histogram base name.
        if let Some((base, le)) = bucket_series(name) {
            if series_kind(base) != Some("histogram") {
                return Err(err(lineno, "bucket series without a histogram TYPE"));
            }
            let cum: u64 = value.parse().map_err(|_| err(lineno, "bad bucket count"))?;
            if !matches!(&open_hist, Some((open, _)) if open == base) {
                finish_hist(&mut snap, &mut open_hist);
                open_hist = Some((base.to_string(), HistogramSnapshot::default()));
            }
            let (_, hist) = open_hist.as_mut().expect("just ensured open");
            match le {
                None => hist.count = cum, // the +Inf bucket is the count
                Some(le) => hist.buckets.push((le, cum)),
            }
            continue;
        }
        if let Some(base) = name
            .strip_suffix("_sum")
            .filter(|b| series_kind(b) == Some("histogram"))
        {
            let Some((open, h)) = &mut open_hist else {
                return Err(err(lineno, "_sum before its buckets"));
            };
            if open != base {
                return Err(err(lineno, "_sum for a different histogram"));
            }
            h.sum = value
                .parse()
                .map_err(|_| err(lineno, "bad histogram sum"))?;
            continue;
        }
        if let Some(base) = name
            .strip_suffix("_count")
            .filter(|b| series_kind(b) == Some("histogram"))
        {
            let Some((open, h)) = &mut open_hist else {
                return Err(err(lineno, "_count before its buckets"));
            };
            if open != base {
                return Err(err(lineno, "_count for a different histogram"));
            }
            h.count = value
                .parse()
                .map_err(|_| err(lineno, "bad histogram count"))?;
            finish_hist(&mut snap, &mut open_hist);
            continue;
        }
        match series_kind(name) {
            Some("counter") => {
                let v = value
                    .parse()
                    .map_err(|_| err(lineno, "bad counter value"))?;
                snap.counters.push((name.to_string(), v));
            }
            Some("gauge") => {
                let v = value.parse().map_err(|_| err(lineno, "bad gauge value"))?;
                snap.gauges.push((name.to_string(), v));
            }
            Some(_) | None => return Err(err(lineno, "sample without a known TYPE")),
        }
    }
    finish_hist(&mut snap, &mut open_hist);
    Ok(snap)
}

/// Splits a `_bucket{le="…"}` series into its base name and bound
/// (`None` = the `+Inf` bucket). Returns `None` for non-bucket series.
fn bucket_series(name: &str) -> Option<(&str, Option<u64>)> {
    let (base, rest) = name.split_once("_bucket{le=\"")?;
    let le = rest.strip_suffix("\"}")?;
    if le == "+Inf" {
        return Some((base, None));
    }
    le.parse::<u64>().ok().map(|b| (base, Some(b)))
}

fn finish_hist(snap: &mut MetricsSnapshot, open: &mut Option<(String, HistogramSnapshot)>) {
    if let Some((name, h)) = open.take() {
        snap.histograms.push((name, h));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            coherent: true,
            counters: vec![
                ("asgd_net_accepted_total".to_string(), 12),
                (
                    "asgd_shard_updates{model=\"m\",shard=\"0\"}".to_string(),
                    900,
                ),
            ],
            gauges: vec![
                ("asgd_ingest_queue_depth{model=\"m\"}".to_string(), 3.0),
                ("asgd_net_shed_tier".to_string(), 1.5),
            ],
            histograms: vec![(
                "asgd_serve_latency_ns".to_string(),
                HistogramSnapshot {
                    buckets: vec![(1024, 2), (4096, 5)],
                    count: 7,
                    sum: 12345,
                },
            )],
        }
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let text = render(&sample_snapshot());
        assert!(text.starts_with("# asgd-telemetry coherent=true\n"));
        assert!(text.contains("# TYPE asgd_net_accepted_total counter"));
        assert!(text.contains("asgd_net_accepted_total 12"));
        assert!(text.contains("# TYPE asgd_shard_updates counter"));
        assert!(text.contains("asgd_shard_updates{model=\"m\",shard=\"0\"} 900"));
        assert!(text.contains("asgd_serve_latency_ns_bucket{le=\"1024\"} 2"));
        assert!(text.contains("asgd_serve_latency_ns_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("asgd_serve_latency_ns_sum 12345"));
        assert!(text.contains("asgd_serve_latency_ns_count 7"));
        assert!(text.contains("asgd_net_shed_tier 1.5"));
    }

    #[test]
    fn parse_inverts_render() {
        let snap = sample_snapshot();
        assert_eq!(parse(&render(&snap)).expect("parses"), snap);
        let incoherent = MetricsSnapshot {
            coherent: false,
            ..sample_snapshot()
        };
        assert_eq!(parse(&render(&incoherent)).unwrap(), incoherent);
        assert_eq!(
            parse(&render(&MetricsSnapshot::default())).unwrap(),
            MetricsSnapshot::default()
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("no_type_declared 4\n").is_err());
        assert!(parse("# TYPE x counter\nx not_a_number\n").is_err());
        assert!(
            parse("# TYPE h histogram\nh_sum 3\n").is_err(),
            "_sum before buckets"
        );
        assert!(parse("# TYPE x counter\nx\n").is_err(), "no value");
        // Unknown comments are fine.
        assert_eq!(
            parse("# HELP x whatever\n").unwrap(),
            MetricsSnapshot::default()
        );
    }
}
