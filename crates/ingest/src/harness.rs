//! The end-to-end ingest harness: a streaming model served over a real
//! socket, a heterogeneous producer fleet feeding it labeled observations
//! through the wire protocol's submit-observe opcode, scheduled drift,
//! and a recovery monitor measuring how fast the trainer follows.
//!
//! Everything runs in-process but nothing is short-circuited: producers
//! speak length-prefixed frames over TCP to a real [`NetServer`], the
//! server routes into the model's bounded
//! [`IngressQueue`](asgd_oracle::IngressQueue), and the
//! hogwild trainer consumes from the queue through its
//! [`StreamingOracle`](asgd_oracle::StreamingOracle) while serving live
//! reads — the full loop the paper's delay model is stretched across.

use crate::drift::{DriftSpec, DriftTrigger, GroundTruth};
use crate::producers::{ObservationGen, ProducerSpec};
use crate::recovery::RecoveryMonitor;
use crate::report::{DriftOutcome, IngestReport};
use asgd_driver::{RunEvent, RunObserver, RunSpec};
use asgd_math::rng::SeedSequence;
use asgd_net::{NetConfig, NetServer, Priority, RetryPolicy, RetryingClient};
use asgd_oracle::BackpressurePolicy;
use asgd_serve::{ModelRegistry, ReadMode, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Name the harness registers its streaming model under.
pub const MODEL_NAME: &str = "stream";

/// One ingest experiment: the trainer, the queue, the fleet, the drift.
#[derive(Debug, Clone)]
pub struct IngestSpec {
    /// The training run hosting the streaming oracle. Its oracle spec is
    /// the *prior* (fallback under starvation); give it enough iterations
    /// to outlast `duration_secs` — the harness cancels it at teardown.
    pub train: RunSpec,
    /// Ingress queue capacity.
    pub capacity: usize,
    /// Backpressure policy for the ingress queue.
    pub policy: BackpressurePolicy,
    /// The producer fleet (one thread per spec).
    pub producers: Vec<ProducerSpec>,
    /// Uniform label noise amplitude for generated observations.
    pub label_noise: f64,
    /// The initial ground-truth minimizer θ* (its length is the model
    /// dimension and must match the train spec's oracle dimension).
    pub theta0: Vec<f64>,
    /// The scheduled drift, if any.
    pub drift: Option<DriftSpec>,
    /// How long the fleet runs.
    pub duration_secs: f64,
    /// Fraction of the drift-induced distance gap that must close for the
    /// run to count as recovered (see
    /// [`RecoveryLog::time_to_recover`](crate::RecoveryLog::time_to_recover)).
    pub recover_frac: f64,
    /// Recovery-monitor sampling interval.
    pub sample_interval: Duration,
    /// Master seed; each producer derives a child seed.
    pub seed: u64,
}

/// What an ingest run can fail with before producing a report.
#[derive(Debug)]
pub enum IngestError {
    /// Creating or tearing down the hosted model failed.
    Serve(ServeError),
    /// Binding or running the TCP front-end failed.
    Io(std::io::Error),
    /// The spec is internally inconsistent (e.g. θ* dimension mismatch).
    InvalidSpec(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Serve(e) => write!(f, "serve error: {e}"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::InvalidSpec(msg) => write!(f, "invalid ingest spec: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<ServeError> for IngestError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The record of the drift having actually fired.
#[derive(Debug, Clone, Copy)]
struct DriftFired {
    at_secs: f64,
    at_iteration: u64,
}

impl IngestSpec {
    /// Runs the experiment end to end and reports.
    ///
    /// `observer` (when given) receives [`RunEvent::DriftInjected`] at the
    /// moment the ground truth moves — the ingest tier originates this
    /// event; training backends never do.
    ///
    /// # Errors
    ///
    /// [`IngestError`] when the spec is inconsistent, the model cannot be
    /// hosted, or the TCP front-end cannot bind.
    pub fn run(&self, observer: Option<Arc<dyn RunObserver>>) -> Result<IngestReport, IngestError> {
        let dim = self.train.oracle.dim;
        if self.theta0.len() != dim {
            return Err(IngestError::InvalidSpec(format!(
                "theta0 has dimension {}, train oracle wants {dim}",
                self.theta0.len()
            )));
        }
        if self.producers.is_empty() {
            return Err(IngestError::InvalidSpec("no producers".to_string()));
        }

        let ground = Arc::new(GroundTruth::new(self.theta0.clone()));
        let registry = Arc::new(ModelRegistry::new());
        let id = registry.create_streaming(
            MODEL_NAME,
            &self.train,
            ReadMode::Live,
            128,
            self.capacity,
            self.policy,
        )?;
        let entry = registry.lookup(id)?;
        let reader = entry.service().reader();
        let counters = Arc::clone(
            entry
                .ingress()
                .expect("streaming model has an ingress queue")
                .counters(),
        );

        let server = NetServer::serve(Arc::clone(&registry), NetConfig::default())?;
        let addr = server.local_addr();

        // One clock for everything: drift timestamps and recovery samples
        // must be comparable to sub-interval precision.
        let epoch = Instant::now();
        let monitor =
            RecoveryMonitor::spawn(reader.clone(), Arc::clone(&ground), self.sample_interval);

        let acked = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let drift_armed = Arc::new(AtomicBool::new(self.drift.is_some()));
        let drift_fired: Arc<Mutex<Option<DriftFired>>> = Arc::new(Mutex::new(None));
        let seeds = SeedSequence::new(self.seed);
        let deadline = Duration::from_secs_f64(self.duration_secs.max(0.0));

        let mut fleet = Vec::with_capacity(self.producers.len());
        for (i, producer) in self.producers.iter().enumerate() {
            let producer = *producer;
            let generator =
                ObservationGen::new(Arc::clone(&ground), producer.sparsity, self.label_noise);
            let mut rng = StdRng::seed_from_u64(seeds.child_seed(i as u64 + 1));
            let model = id.0;
            let acked = Arc::clone(&acked);
            let failures = Arc::clone(&failures);
            let stop = Arc::clone(&stop);
            let drift_armed = Arc::clone(&drift_armed);
            let drift_fired = Arc::clone(&drift_fired);
            let drift = self.drift.clone();
            let observer = observer.clone();
            let ground = Arc::clone(&ground);
            let reader = reader.clone();
            let handle = std::thread::Builder::new()
                .name(format!("asgd-ingest-producer-{i}"))
                .spawn(move || {
                    let mut client = match RetryingClient::new(addr, RetryPolicy::default()) {
                        Ok(c) => c.timeout(Duration::from_secs(2)),
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    while !stop.load(Ordering::Relaxed) && epoch.elapsed() < deadline {
                        // Any producer may win the race to fire the drift;
                        // the CAS guarantees exactly one does.
                        if let Some(spec) = &drift {
                            let due = match spec.trigger {
                                DriftTrigger::AtObservation(n) => {
                                    acked.load(Ordering::Relaxed) >= n
                                }
                                DriftTrigger::AfterElapsed(secs) => {
                                    epoch.elapsed().as_secs_f64() >= secs
                                }
                            };
                            if due
                                && drift_armed
                                    .compare_exchange(
                                        true,
                                        false,
                                        Ordering::AcqRel,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                ground.apply(&spec.kind);
                                let fired = DriftFired {
                                    at_secs: epoch.elapsed().as_secs_f64(),
                                    at_iteration: reader.iterations(),
                                };
                                *drift_fired.lock().unwrap_or_else(|e| e.into_inner()) =
                                    Some(fired);
                                if let Some(obs) = &observer {
                                    obs.on_event(&RunEvent::DriftInjected {
                                        iteration: fired.at_iteration,
                                        elapsed_secs: fired.at_secs,
                                    });
                                }
                            }
                        }
                        let obs = generator.next(&mut rng);
                        match client.submit_observe(
                            model,
                            &obs.features,
                            obs.label,
                            Priority::Normal,
                        ) {
                            Ok(_depth) => {
                                acked.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                                // Refusals (Overloaded under Reject, shed)
                                // are expected under pressure; back off a
                                // touch so the loop is not pure spin.
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        }
                        let pause = producer.delay.sample(&mut rng);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                    }
                })
                .expect("spawn producer");
            fleet.push(handle);
        }

        // Let the fleet run its course, then tear down outermost-first:
        // producers, the socket front-end, the monitor, and finally the
        // hosted model (which cancels the trainer and closes the queue).
        for handle in fleet {
            let _ = handle.join();
        }
        stop.store(true, Ordering::Relaxed);
        let wall_time_secs = epoch.elapsed().as_secs_f64();
        server.stop();
        let log = monitor.stop();
        let train_iterations = reader.iterations();
        let stats = counters.snapshot();
        let _ = registry.drop_model(MODEL_NAME);

        let fired = *drift_fired.lock().unwrap_or_else(|e| e.into_inner());
        let (baseline, jump, ttr, drift_out) = match (&self.drift, fired) {
            (Some(spec), Some(fired)) => {
                let baseline = log
                    .samples
                    .iter()
                    .take_while(|s| s.elapsed_secs < fired.at_secs)
                    .last()
                    .map_or(0.0, |s| s.dist_sq);
                let jump = log
                    .samples
                    .iter()
                    .find(|s| s.elapsed_secs >= fired.at_secs)
                    .map_or(0.0, |s| s.dist_sq);
                (
                    baseline,
                    jump,
                    log.time_to_recover(fired.at_secs, self.recover_frac),
                    Some(DriftOutcome {
                        kind: spec.kind.label().to_string(),
                        at_secs: fired.at_secs,
                        at_iteration: fired.at_iteration,
                    }),
                )
            }
            _ => (0.0, 0.0, None, None),
        };
        let final_dist_sq = log.samples.last().map_or(f64::NAN, |s| s.dist_sq);

        Ok(IngestReport {
            producers: self.producers.len(),
            policy: self.policy.label().to_string(),
            capacity: self.capacity,
            observations_sent: acked.load(Ordering::Relaxed),
            send_failures: failures.load(Ordering::Relaxed),
            pushed: stats.pushed,
            consumed: stats.popped,
            dropped: stats.dropped,
            rejected: stats.rejected,
            starved: stats.starved,
            lag_mean: stats.lag_mean(),
            lag_max: stats.lag_max,
            drift: drift_out,
            baseline_dist_sq: baseline,
            drift_dist_sq: jump,
            time_to_recover_secs: ttr,
            final_dist_sq,
            train_iterations,
            wall_time_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producers::heterogeneous_fleet;
    use asgd_driver::BackendKind;
    use asgd_oracle::OracleSpec;

    fn spec(policy: BackpressurePolicy, drift: Option<DriftSpec>) -> IngestSpec {
        let dim = 8;
        IngestSpec {
            // Flat prior: starved steps hold position, so the model is
            // shaped by the live stream alone (see `asgd_oracle::Flat`).
            train: RunSpec::new(OracleSpec::new("flat", dim), BackendKind::Hogwild)
                .threads(2)
                .iterations(u64::MAX / 4)
                .learning_rate(0.05)
                .x0(vec![0.0; dim])
                .seed(11),
            capacity: 64,
            policy,
            producers: heterogeneous_fleet(2, Duration::from_micros(200), 4),
            label_noise: 0.0,
            theta0: vec![0.8; dim],
            drift: Some(drift.unwrap_or_else(|| DriftSpec::negate_after(0.3))),
            duration_secs: 0.9,
            recover_frac: 0.5,
            sample_interval: Duration::from_millis(2),
            seed: 42,
        }
    }

    #[test]
    fn a_drifted_run_recovers_over_the_live_socket() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let observer: Arc<dyn RunObserver> = Arc::new(move |e: &RunEvent| {
            if let RunEvent::DriftInjected { elapsed_secs, .. } = e {
                sink.lock().unwrap().push(*elapsed_secs);
            }
        });
        let report = spec(BackpressurePolicy::DropOldest, None)
            .run(Some(observer))
            .expect("runs");
        assert_eq!(report.producers, 2);
        assert_eq!(report.policy, "drop-oldest");
        assert!(report.observations_sent > 0, "fleet delivered nothing");
        assert!(report.pushed > 0);
        assert!(report.consumed > 0, "trainer never consumed the stream");
        let drift = report.drift.as_ref().expect("drift fired");
        assert_eq!(drift.kind, "negate");
        assert!(drift.at_secs >= 0.3);
        // The flip must be visible (distance jumps past baseline) and the
        // trainer must close at least half the gap within the run.
        assert!(
            report.drift_dist_sq > report.baseline_dist_sq,
            "drift produced no visible jump: {} -> {}",
            report.baseline_dist_sq,
            report.drift_dist_sq
        );
        let ttr = report
            .time_to_recover_secs
            .expect("recovered within the run");
        assert!(ttr >= 0.0 && ttr < report.wall_time_secs);
        assert_eq!(events.lock().unwrap().len(), 1, "drift fires exactly once");
        // Round-trips like every other committed report.
        let back = IngestReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn mismatched_theta_dimension_is_refused() {
        let mut bad = spec(BackpressurePolicy::Block, None);
        bad.theta0 = vec![1.0; 3];
        match bad.run(None) {
            Err(IngestError::InvalidSpec(msg)) => assert!(msg.contains("dimension")),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }
}
