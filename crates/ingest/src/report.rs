//! The ingest experiment report: what the fleet sent, what the queue did
//! with it, and how fast the trainer recovered from drift.
//!
//! Serializes through the driver's dependency-free JSON codec with an
//! exact round-trip (`to_json` → [`IngestReport::from_json`] → equal),
//! matching the repo-wide report convention so bench artifacts can be
//! committed and re-checked.

use asgd_driver::json::{self, Value};
use asgd_driver::report::{field, field_f64, field_str, field_u64, DecodeError};

/// The drift event as it actually happened (vs. the scheduled spec).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftOutcome {
    /// What moved (canonical [`DriftKind::label`](crate::DriftKind::label)).
    pub kind: String,
    /// Seconds into the run when it fired.
    pub at_secs: f64,
    /// Training iterations reflected when it fired.
    pub at_iteration: u64,
}

/// One ingest run, end to end: fleet → wire → queue → trainer → recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Producers in the fleet.
    pub producers: usize,
    /// Backpressure policy label (`block`, `drop-oldest`, `reject`).
    pub policy: String,
    /// Ingress queue capacity.
    pub capacity: usize,
    /// Observations acknowledged by the server across the fleet.
    pub observations_sent: u64,
    /// Submit calls that ended in a client-side error (refused, shed,
    /// or indeterminate transport failure — never silently retried).
    pub send_failures: u64,
    /// Observations accepted into the queue.
    pub pushed: u64,
    /// Observations consumed by the trainer.
    pub consumed: u64,
    /// Observations evicted under `drop-oldest`.
    pub dropped: u64,
    /// Observations refused under `reject` / full `block` timeouts.
    pub rejected: u64,
    /// Pops that found the queue empty (prior-fallback gradient steps).
    pub starved: u64,
    /// Mean queue depth seen by consumed observations (the delay τ
    /// analogue of the stream tier).
    pub lag_mean: f64,
    /// Maximum queue depth seen by a consumed observation.
    pub lag_max: u64,
    /// The drift that fired, if any.
    pub drift: Option<DriftOutcome>,
    /// `‖x − θ*‖²` just before drift (last pre-drift recovery sample).
    pub baseline_dist_sq: f64,
    /// `‖x − θ*‖²` just after drift (first post-drift recovery sample).
    pub drift_dist_sq: f64,
    /// Seconds from drift to the first sample back inside the success
    /// region (`None`: never recovered within the run).
    pub time_to_recover_secs: Option<f64>,
    /// `‖x − θ*‖²` at teardown.
    pub final_dist_sq: f64,
    /// Training iterations completed by teardown.
    pub train_iterations: u64,
    /// Wall-clock seconds the fleet ran.
    pub wall_time_secs: f64,
}

impl IngestReport {
    /// The report as a JSON value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("producers", Value::U64(self.producers as u64)),
            ("policy", Value::Str(self.policy.clone())),
            ("capacity", Value::U64(self.capacity as u64)),
            ("observations_sent", Value::U64(self.observations_sent)),
            ("send_failures", Value::U64(self.send_failures)),
            ("pushed", Value::U64(self.pushed)),
            ("consumed", Value::U64(self.consumed)),
            ("dropped", Value::U64(self.dropped)),
            ("rejected", Value::U64(self.rejected)),
            ("starved", Value::U64(self.starved)),
            ("lag_mean", Value::f64(self.lag_mean)),
            ("lag_max", Value::U64(self.lag_max)),
            (
                "drift",
                Value::opt(self.drift.as_ref().map(|d| {
                    Value::obj([
                        ("kind", Value::Str(d.kind.clone())),
                        ("at_secs", Value::f64(d.at_secs)),
                        ("at_iteration", Value::U64(d.at_iteration)),
                    ])
                })),
            ),
            ("baseline_dist_sq", Value::f64(self.baseline_dist_sq)),
            ("drift_dist_sq", Value::f64(self.drift_dist_sq)),
            (
                "time_to_recover_secs",
                Value::opt(self.time_to_recover_secs.map(Value::f64)),
            ),
            ("final_dist_sq", Value::f64(self.final_dist_sq)),
            ("train_iterations", Value::U64(self.train_iterations)),
            ("wall_time_secs", Value::f64(self.wall_time_secs)),
        ])
    }

    /// Compact single-line JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a report back from its JSON value.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Field`] on missing or mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, DecodeError> {
        let drift = match field(v, "drift")? {
            Value::Null => None,
            d => Some(DriftOutcome {
                kind: field_str(d, "kind")?,
                at_secs: field_f64(d, "at_secs")?,
                at_iteration: field_u64(d, "at_iteration")?,
            }),
        };
        let ttr = match field(v, "time_to_recover_secs")? {
            Value::Null => None,
            t => Some(t.as_f64().ok_or(DecodeError::Field {
                field: "time_to_recover_secs",
                expected: "expected number",
            })?),
        };
        Ok(Self {
            producers: field_u64(v, "producers")? as usize,
            policy: field_str(v, "policy")?,
            capacity: field_u64(v, "capacity")? as usize,
            observations_sent: field_u64(v, "observations_sent")?,
            send_failures: field_u64(v, "send_failures")?,
            pushed: field_u64(v, "pushed")?,
            consumed: field_u64(v, "consumed")?,
            dropped: field_u64(v, "dropped")?,
            rejected: field_u64(v, "rejected")?,
            starved: field_u64(v, "starved")?,
            lag_mean: field_f64(v, "lag_mean")?,
            lag_max: field_u64(v, "lag_max")?,
            drift,
            baseline_dist_sq: field_f64(v, "baseline_dist_sq")?,
            drift_dist_sq: field_f64(v, "drift_dist_sq")?,
            time_to_recover_secs: ttr,
            final_dist_sq: field_f64(v, "final_dist_sq")?,
            train_iterations: field_u64(v, "train_iterations")?,
            wall_time_secs: field_f64(v, "wall_time_secs")?,
        })
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed JSON or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        Self::from_value(&json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(drifted: bool) -> IngestReport {
        IngestReport {
            producers: 4,
            policy: "drop-oldest".to_string(),
            capacity: 256,
            observations_sent: 10_000,
            send_failures: 12,
            pushed: 10_000,
            consumed: 9_200,
            dropped: 800,
            rejected: 0,
            starved: 123_456,
            lag_mean: 17.25,
            lag_max: 256,
            drift: drifted.then(|| DriftOutcome {
                kind: "negate".to_string(),
                at_secs: 0.5,
                at_iteration: 1_000_000,
            }),
            baseline_dist_sq: 0.002,
            drift_dist_sq: 0.31,
            time_to_recover_secs: drifted.then_some(0.0625),
            final_dist_sq: 0.0015,
            train_iterations: 4_200_000,
            wall_time_secs: 1.5,
        }
    }

    #[test]
    fn reports_round_trip_exactly() {
        for drifted in [true, false] {
            let report = sample(drifted);
            let back = IngestReport::from_json(&report.to_json()).expect("parses");
            assert_eq!(back, report);
        }
    }

    #[test]
    fn missing_fields_are_typed_errors() {
        assert!(IngestReport::from_json("{}").is_err());
        assert!(IngestReport::from_json("not json").is_err());
        // A present-but-mistyped optional field is an error, not None.
        let mut v = sample(true).to_value();
        if let Value::Obj(fields) = &mut v {
            fields.insert(
                "time_to_recover_secs".to_string(),
                Value::Str("soon".to_string()),
            );
        }
        assert!(IngestReport::from_value(&v).is_err());
    }
}
