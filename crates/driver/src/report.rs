//! [`RunReport`] — the unified outcome of a run on any backend.

use crate::json::{self, Value};

/// One strided trajectory sample: the observed squared distance to the
/// optimum after `index` updates, with the wall-clock offset at which it was
/// taken. Collected into [`RunReport::trajectory`] when the spec requests it
/// (`RunSpec::trajectory_every`) and streamed live to any attached
/// [`RunObserver`](crate::RunObserver).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrajectorySample {
    /// Number of updates reflected in the measured state: the claim index on
    /// native backends, the ordered iteration count on simulated/sequential
    /// ones.
    pub index: u64,
    /// `‖x_index − x*‖²` at the sample point.
    pub dist_sq: f64,
    /// Seconds since the run started when the sample was taken (the one
    /// wall-clock-dependent field; everything else is deterministic on
    /// deterministic backends).
    pub elapsed_secs: f64,
}

impl TrajectorySample {
    fn to_value(&self) -> Value {
        Value::obj([
            ("index", Value::U64(self.index)),
            ("dist_sq", Value::f64(self.dist_sq)),
            ("elapsed_secs", Value::f64(self.elapsed_secs)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            index: field_u64(v, "index")?,
            dist_sq: field_f64(v, "dist_sq")?,
            elapsed_secs: field_f64(v, "elapsed_secs")?,
        })
    }
}

/// Contention statistics of a simulated execution, summarised for reports.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContentionSummary {
    /// Ordered iterations executed.
    pub iterations: u64,
    /// Iterations that started but never completed (crashes/step cap).
    pub incomplete: u64,
    /// Maximum interval contention `τ_max`.
    pub tau_max: u64,
    /// Average interval contention `τ_avg` (≤ 2n by Gibson–Gramoli).
    pub tau_avg: f64,
    /// Maximum view staleness.
    pub staleness_max: u64,
    /// Whether `τ_avg ≤ 2n` held on this execution.
    pub gibson_gramoli_holds: bool,
    /// Whether the Lemma 6.4 window bound held on this execution.
    pub lemma_6_4_holds: bool,
}

impl ContentionSummary {
    /// Summarises a full contention report.
    #[must_use]
    pub fn from_report(report: &asgd_shmem::ContentionReport) -> Self {
        Self {
            iterations: report.iterations(),
            incomplete: report.incomplete(),
            tau_max: report.tau_max(),
            tau_avg: report.tau_avg(),
            staleness_max: report.staleness_max(),
            gibson_gramoli_holds: report.gibson_gramoli_holds(),
            lemma_6_4_holds: report.lemma_6_4().holds,
        }
    }

    fn to_value(&self) -> Value {
        Value::obj([
            ("iterations", Value::U64(self.iterations)),
            ("incomplete", Value::U64(self.incomplete)),
            ("tau_max", Value::U64(self.tau_max)),
            ("tau_avg", Value::f64(self.tau_avg)),
            ("staleness_max", Value::U64(self.staleness_max)),
            (
                "gibson_gramoli_holds",
                Value::Bool(self.gibson_gramoli_holds),
            ),
            ("lemma_6_4_holds", Value::Bool(self.lemma_6_4_holds)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            iterations: field_u64(v, "iterations")?,
            incomplete: field_u64(v, "incomplete")?,
            tau_max: field_u64(v, "tau_max")?,
            tau_avg: field_f64(v, "tau_avg")?,
            staleness_max: field_u64(v, "staleness_max")?,
            gibson_gramoli_holds: field_bool(v, "gibson_gramoli_holds")?,
            lemma_6_4_holds: field_bool(v, "lemma_6_4_holds")?,
        })
    }
}

/// The unified outcome of executing a [`RunSpec`](crate::RunSpec): every
/// backend produces this one shape, so experiments compare execution models
/// field by field and dump machine-readable summaries.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunReport {
    /// Backend name (see `BackendKind::name`).
    pub backend: String,
    /// Oracle kind the run used.
    pub oracle: String,
    /// Thread count the spec requested.
    pub threads: usize,
    /// Total iterations executed.
    pub iterations: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// First (1-based) iteration inside the success region, if tracking was
    /// enabled and the region was reached. Simulated backends measure the
    /// paper's ordered accumulator process; native backends report the first
    /// claim whose freshly read view qualified (their observable proxy).
    pub hit_iteration: Option<u64>,
    /// Minimum `‖x_t − x*‖²` along the tracked trajectory, when available.
    pub min_dist_sq: Option<f64>,
    /// `‖X_final − x*‖²`.
    pub final_dist_sq: f64,
    /// Final model.
    pub final_model: Vec<f64>,
    /// Wall-clock seconds of the run's parallel/iteration section.
    pub wall_time_secs: f64,
    /// Simulator steps fired (simulated backends only).
    pub steps: Option<u64>,
    /// Deterministic execution fingerprint (simulated backends only).
    pub fingerprint: Option<u64>,
    /// Why the run stopped, when the backend distinguishes reasons.
    pub stop: Option<String>,
    /// Contention statistics (simulated backends only).
    pub contention: Option<ContentionSummary>,
    /// Updates dropped by the epoch guard (guarded-epoch backend only).
    pub stale_rejected: Option<u64>,
    /// Whether the run took the O(Δ) sparse gradient path (`None` for
    /// backends without the dense/sparse distinction, e.g. sequential).
    pub sparse_path: Option<bool>,
    /// Realised parameter-store shard count (`None` for flat stores and for
    /// backends without arenas — simulated, sequential, locked).
    pub shards: Option<u64>,
    /// Strided trajectory samples, ordered by index — present when the spec
    /// enabled collection (`RunSpec::trajectory_every`).
    pub trajectory: Option<Vec<TrajectorySample>>,
}

impl RunReport {
    /// Iteration throughput in iterations per second.
    #[must_use]
    pub fn iterations_per_sec(&self) -> f64 {
        if self.wall_time_secs <= 0.0 {
            f64::INFINITY
        } else {
            self.iterations as f64 / self.wall_time_secs
        }
    }

    /// Converts into the JSON value tree.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.clone())),
            ("oracle", Value::Str(self.oracle.clone())),
            ("threads", Value::U64(self.threads as u64)),
            ("iterations", Value::U64(self.iterations)),
            ("seed", Value::U64(self.seed)),
            (
                "hit_iteration",
                Value::opt(self.hit_iteration.map(Value::U64)),
            ),
            ("min_dist_sq", Value::opt(self.min_dist_sq.map(Value::f64))),
            ("final_dist_sq", Value::f64(self.final_dist_sq)),
            (
                "final_model",
                Value::Arr(self.final_model.iter().map(|&v| Value::f64(v)).collect()),
            ),
            ("wall_time_secs", Value::f64(self.wall_time_secs)),
            ("steps", Value::opt(self.steps.map(Value::U64))),
            ("fingerprint", Value::opt(self.fingerprint.map(Value::U64))),
            ("stop", Value::opt(self.stop.clone().map(Value::Str))),
            (
                "contention",
                Value::opt(self.contention.as_ref().map(ContentionSummary::to_value)),
            ),
            (
                "stale_rejected",
                Value::opt(self.stale_rejected.map(Value::U64)),
            ),
            ("sparse_path", Value::opt(self.sparse_path.map(Value::Bool))),
            ("shards", Value::opt(self.shards.map(Value::U64))),
            (
                "trajectory",
                Value::opt(self.trajectory.as_ref().map(|samples| {
                    Value::Arr(samples.iter().map(TrajectorySample::to_value).collect())
                })),
            ),
        ])
    }

    /// Serialises to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serialises to pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed JSON or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Decodes from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Field`] on missing/mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            backend: field_str(v, "backend")?,
            oracle: field_str(v, "oracle")?,
            threads: field_u64(v, "threads")? as usize,
            iterations: field_u64(v, "iterations")?,
            seed: field_u64(v, "seed")?,
            hit_iteration: opt_field(v, "hit_iteration", |f| f.as_u64().ok_or("expected integer"))?,
            min_dist_sq: opt_field(v, "min_dist_sq", |f| f.as_f64().ok_or("expected number"))?,
            final_dist_sq: field_f64(v, "final_dist_sq")?,
            final_model: v
                .get("final_model")
                .and_then(Value::as_arr)
                .ok_or_else(|| DecodeError::field("final_model", "expected array"))?
                .iter()
                .map(|item| {
                    item.as_f64()
                        .ok_or_else(|| DecodeError::field("final_model", "expected numbers"))
                })
                .collect::<Result<_, _>>()?,
            wall_time_secs: field_f64(v, "wall_time_secs")?,
            steps: opt_field(v, "steps", |f| f.as_u64().ok_or("expected integer"))?,
            fingerprint: opt_field(v, "fingerprint", |f| f.as_u64().ok_or("expected integer"))?,
            stop: opt_field(v, "stop", |f| {
                f.as_str().map(str::to_string).ok_or("expected string")
            })?,
            contention: opt_field(v, "contention", |f| {
                ContentionSummary::from_value(f).map_err(|_| "invalid contention summary")
            })?,
            stale_rejected: opt_field(v, "stale_rejected", |f| {
                f.as_u64().ok_or("expected integer")
            })?,
            sparse_path: opt_field(v, "sparse_path", |f| f.as_bool().ok_or("expected bool"))?,
            shards: opt_field(v, "shards", |f| f.as_u64().ok_or("expected integer"))?,
            trajectory: match v.get("trajectory") {
                None => None,
                Some(item) if item.is_null() => None,
                Some(item) => Some(
                    item.as_arr()
                        .ok_or_else(|| DecodeError::field("trajectory", "expected array"))?
                        .iter()
                        .map(TrajectorySample::from_value)
                        .collect::<Result<_, _>>()?,
                ),
            },
        })
    }
}

/// Error decoding a [`RunReport`] from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The text is not valid JSON.
    Parse(json::ParseError),
    /// A field is missing or has the wrong type.
    Field {
        /// Field name.
        field: &'static str,
        /// What was expected.
        expected: &'static str,
    },
}

impl DecodeError {
    pub(crate) fn field(field: &'static str, expected: &'static str) -> Self {
        Self::Field { field, expected }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => e.fmt(f),
            Self::Field { field, expected } => {
                write!(f, "report field `{field}`: {expected}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<json::ParseError> for DecodeError {
    fn from(e: json::ParseError) -> Self {
        Self::Parse(e)
    }
}

/// Required-field lookup for report codecs in the `asgd_driver::json`
/// style. Public so downstream report types (e.g. `asgd-serve`'s
/// `ServeReport`) decode with the same helpers and error shape.
///
/// # Errors
///
/// Returns [`DecodeError::Field`] when `name` is absent.
pub fn field<'v>(v: &'v Value, name: &'static str) -> Result<&'v Value, DecodeError> {
    v.get(name).ok_or(DecodeError::Field {
        field: name,
        expected: "missing",
    })
}

/// Required `u64` field (see [`field`]).
///
/// # Errors
///
/// Returns [`DecodeError::Field`] when absent or not a non-negative
/// integer.
pub fn field_u64(v: &Value, name: &'static str) -> Result<u64, DecodeError> {
    field(v, name)?
        .as_u64()
        .ok_or_else(|| DecodeError::field(name, "expected integer"))
}

/// Required `f64` field (integers widen; see [`field`]).
///
/// # Errors
///
/// Returns [`DecodeError::Field`] when absent or not a number.
pub fn field_f64(v: &Value, name: &'static str) -> Result<f64, DecodeError> {
    field(v, name)?
        .as_f64()
        .ok_or_else(|| DecodeError::field(name, "expected number"))
}

/// Required `bool` field (see [`field`]).
///
/// # Errors
///
/// Returns [`DecodeError::Field`] when absent or not a bool.
pub fn field_bool(v: &Value, name: &'static str) -> Result<bool, DecodeError> {
    field(v, name)?
        .as_bool()
        .ok_or_else(|| DecodeError::field(name, "expected bool"))
}

/// Required string field (see [`field`]).
///
/// # Errors
///
/// Returns [`DecodeError::Field`] when absent or not a string.
pub fn field_str(v: &Value, name: &'static str) -> Result<String, DecodeError> {
    field(v, name)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| DecodeError::field(name, "expected string"))
}

/// Optional field: absent or `null` decode to `None`; a present value must
/// decode through `f`.
pub(crate) fn opt_field<T>(
    v: &Value,
    name: &'static str,
    f: impl FnOnce(&Value) -> Result<T, &'static str>,
) -> Result<Option<T>, DecodeError> {
    match v.get(name) {
        None => Ok(None),
        Some(item) if item.is_null() => Ok(None),
        Some(item) => f(item).map(Some).map_err(|expected| DecodeError::Field {
            field: name,
            expected,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            backend: "simulated-lockfree".to_string(),
            oracle: "noisy-quadratic".to_string(),
            threads: 3,
            iterations: 500,
            seed: 42,
            hit_iteration: Some(77),
            min_dist_sq: Some(0.012),
            final_dist_sq: 0.03,
            final_model: vec![0.1, -0.2, 0.05],
            wall_time_secs: 0.25,
            steps: Some(4123),
            fingerprint: Some(u64::MAX - 5),
            stop: Some("all-done".to_string()),
            contention: Some(ContentionSummary {
                iterations: 500,
                incomplete: 0,
                tau_max: 9,
                tau_avg: 2.5,
                staleness_max: 4,
                gibson_gramoli_holds: true,
                lemma_6_4_holds: true,
            }),
            stale_rejected: None,
            sparse_path: Some(false),
            shards: Some(8),
            trajectory: Some(vec![
                TrajectorySample {
                    index: 0,
                    dist_sq: 4.41,
                    elapsed_secs: 0.0,
                },
                TrajectorySample {
                    index: 128,
                    dist_sq: 0.5 + f64::EPSILON,
                    elapsed_secs: 0.125,
                },
            ]),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        let back = RunReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn round_trip_with_all_options_absent() {
        let report = RunReport {
            hit_iteration: None,
            min_dist_sq: None,
            steps: None,
            fingerprint: None,
            stop: None,
            contention: None,
            stale_rejected: None,
            sparse_path: None,
            shards: None,
            trajectory: None,
            ..sample()
        };
        assert_eq!(RunReport::from_json(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn empty_trajectory_stays_distinct_from_absent() {
        let report = RunReport {
            trajectory: Some(Vec::new()),
            ..sample()
        };
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.trajectory, Some(Vec::new()));
    }

    #[test]
    fn malformed_trajectory_is_rejected_by_field_name() {
        let mut text = sample().to_json();
        text = text.replace(
            "\"trajectory\":[",
            "\"trajectory\":[{\"index\":1,\"elapsed_secs\":0.0},",
        );
        let err = RunReport::from_json(&text).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("dist_sq"), "{err}");
    }

    #[test]
    fn fingerprint_survives_exactly() {
        let report = RunReport {
            fingerprint: Some(u64::MAX),
            ..sample()
        };
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.fingerprint, Some(u64::MAX), "no f64 mangling");
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let err = RunReport::from_json("{}").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("backend"), "{err}");
        assert!(RunReport::from_json("not json").is_err());
    }

    #[test]
    fn throughput_helper() {
        let mut r = sample();
        assert!((r.iterations_per_sec() - 2000.0).abs() < 1e-9);
        r.wall_time_secs = 0.0;
        assert!(r.iterations_per_sec().is_infinite());
    }
}
