//! Continual learning from the live query stream for `asyncsgd`.
//!
//! This crate closes the serving loop: instead of training on a frozen
//! synthetic workload while clients only *read* the model, producers push
//! labeled observations over the wire protocol's submit-observe opcode,
//! the server routes them into the model's bounded
//! [`IngressQueue`](asgd_oracle::IngressQueue), and the hogwild trainer
//! consumes them through a
//! [`StreamingOracle`](asgd_oracle::StreamingOracle) — training and
//! serving run concurrently on the same shared memory, and the data
//! itself now arrives asynchronously. The queue's consumer lag is the
//! stream-side analogue of the paper's delay parameter τ.
//!
//! What lives here:
//!
//! * [`drift`] — scheduled ground-truth shifts ([`DriftSpec`]): the world
//!   the stream is drawn from moves mid-run, by observation count or
//!   wall-clock trigger.
//! * [`producers`] — heterogeneous producer fleets ([`ProducerSpec`],
//!   [`heterogeneous_fleet`]): per-producer inter-observation delay
//!   distributions, the ingest mirror of the worker-speed distributions
//!   in asynchronous-SGD simulations.
//! * [`recovery`] — the [`RecoveryMonitor`] and the time-to-recover
//!   metric: how long after drift until the live model is back inside
//!   the (self-normalizing) success region.
//! * [`harness`] — [`IngestSpec::run`]: the end-to-end experiment over a
//!   real TCP socket, drift injection surfaced as
//!   [`RunEvent::DriftInjected`](asgd_driver::RunEvent), teardown-safe.
//! * [`report`] — [`IngestReport`], JSON round-trippable like every other
//!   committed bench artifact.
//!
//! # Example
//!
//! ```no_run
//! use asgd_driver::{BackendKind, RunSpec};
//! use asgd_ingest::{DriftSpec, IngestSpec, heterogeneous_fleet};
//! use asgd_oracle::{BackpressurePolicy, OracleSpec};
//! use std::time::Duration;
//!
//! let dim = 16;
//! let spec = IngestSpec {
//!     train: RunSpec::new(OracleSpec::new("flat", dim), BackendKind::Hogwild)
//!         .threads(2)
//!         .iterations(u64::MAX / 4)
//!         .learning_rate(0.05)
//!         .x0(vec![0.0; dim])
//!         .seed(7),
//!     capacity: 256,
//!     policy: BackpressurePolicy::DropOldest,
//!     producers: heterogeneous_fleet(4, Duration::from_micros(200), 4),
//!     label_noise: 0.01,
//!     theta0: vec![0.8; dim],
//!     drift: Some(DriftSpec::negate_after(0.5)),
//!     duration_secs: 1.5,
//!     recover_frac: 0.5,
//!     sample_interval: Duration::from_millis(2),
//!     seed: 42,
//! };
//! let report = spec.run(None).expect("ingest run");
//! println!("{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod harness;
pub mod producers;
pub mod recovery;
pub mod report;

pub use drift::{DriftKind, DriftSpec, DriftTrigger, GroundTruth};
pub use harness::{IngestError, IngestSpec, MODEL_NAME};
pub use producers::{heterogeneous_fleet, DelayDist, ObservationGen, ProducerSpec};
pub use recovery::{RecoveryLog, RecoveryMonitor, RecoverySample};
pub use report::{DriftOutcome, IngestReport};
