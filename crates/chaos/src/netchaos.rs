//! The fault-injection campaign for the net tier: a served workload under
//! injected connection churn, scored for *wrong answers*.
//!
//! The campaign trains a small deterministic model to quiescence, reads
//! the final parameters once, then fires a fleet of
//! [`RetryingClient`]s at a [`NetServer`] whose connections (and the
//! clients' own) run through [`FaultyStream`](asgd_net::FaultyStream)
//! fault injection — partial writes, short reads, delays, and mid-frame
//! disconnects, all seeded. Every response is checked **bit-for-bit**
//! against the locally computed expectation (the wire protocol carries
//! `f64`s as IEEE-754 bit patterns, and every request is an idempotent
//! read of a quiescent model, so there is exactly one right answer).
//!
//! The acceptance bar is asymmetric on purpose: a request may end in a
//! typed error after the retry budget ([`NetChaosReport::gave_up`]) — the
//! network is allowed to be bad — but a *wrong* answer
//! ([`NetChaosReport::wrong`]) is a protocol or retry-layer bug, and a
//! campaign passes only at zero. [`NetChaosReport::retries`] and
//! [`NetChaosReport::reconnects`] are the evidence that the campaign
//! actually exercised churn rather than passing vacuously.

use std::sync::Arc;
use std::time::{Duration, Instant};

use asgd_driver::{BackendKind, RunSpec};
use asgd_net::{FaultPlan, NetConfig, NetServer, Priority, RetryPolicy, RetryingClient};
use asgd_oracle::OracleSpec;
use asgd_serve::{ModelRegistry, ReadMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded chaos campaign over the serving-net stack.
#[derive(Debug, Clone)]
pub struct NetChaosSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Model dimension of the served run.
    pub dim: usize,
    /// Campaign seed: derives every fault sequence and probe.
    pub seed: u64,
    /// Fault plan injected on every admitted server connection.
    pub server_fault: FaultPlan,
    /// Fault plan injected on every client connection.
    pub client_fault: FaultPlan,
    /// Client retry policy.
    pub policy: RetryPolicy,
    /// Per-call IO timeout for the clients.
    pub timeout: Duration,
}

impl NetChaosSpec {
    /// A default campaign: 4 clients × 48 requests over a 32-dim model,
    /// chaotic fault plans on both sides of every connection.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            clients: 4,
            requests_per_client: 48,
            dim: 32,
            seed,
            server_fault: FaultPlan::chaotic(seed),
            client_fault: FaultPlan::chaotic(seed ^ 0x636c_6965_6e74),
            policy: RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                jitter: 0.5,
            },
            timeout: Duration::from_secs(2),
        }
    }
}

/// What a campaign observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetChaosReport {
    /// Requests issued in total.
    pub requests: u64,
    /// Responses that matched the expectation bit-for-bit.
    pub exact: u64,
    /// Responses that arrived but carried the wrong bits — must be zero.
    pub wrong: u64,
    /// Requests that ended in a typed error after the retry budget.
    pub gave_up: u64,
    /// Retries performed across all clients (churn evidence).
    pub retries: u64,
    /// Reconnections performed across all clients (churn evidence).
    pub reconnects: u64,
}

impl NetChaosReport {
    /// True when every answered request carried exactly the right bits.
    #[must_use]
    pub fn zero_wrong(&self) -> bool {
        self.wrong == 0
    }

    fn absorb(&mut self, other: &NetChaosReport) {
        self.requests += other.requests;
        self.exact += other.exact;
        self.wrong += other.wrong;
        self.gave_up += other.gave_up;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
    }
}

/// Why a campaign could not run to completion (distinct from a campaign
/// that ran and found wrong answers — that is a failing *report*).
#[derive(Debug)]
pub enum NetChaosError {
    /// Binding or configuring the server failed.
    Io(std::io::Error),
    /// Creating or training the served model failed.
    Serve(String),
    /// The served model did not reach quiescence in time.
    TrainingTimeout,
}

impl std::fmt::Display for NetChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "server setup: {e}"),
            Self::Serve(e) => write!(f, "model setup: {e}"),
            Self::TrainingTimeout => write!(f, "served model never finished training"),
        }
    }
}

impl std::error::Error for NetChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetChaosError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A short deterministic training run whose final model the campaign
/// checks against (mirrors the servable spec of `tests/net.rs`).
fn servable(dim: usize, seed: u64) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", dim).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(6_000)
    .learning_rate(0.4 / dim as f64)
    .x0(vec![1.0; dim])
    .seed(seed)
}

/// Runs the campaign: returns the aggregated report. A report with
/// `wrong > 0` is the failure the campaign exists to catch.
///
/// # Errors
///
/// [`NetChaosError`] when the harness itself (server bind, model
/// creation, training) fails — not when the network chaos does its job.
pub fn run_net_chaos(spec: &NetChaosSpec) -> Result<NetChaosReport, NetChaosError> {
    let registry = Arc::new(ModelRegistry::new());
    let model_id = registry
        .create("chaos", &servable(spec.dim, spec.seed), ReadMode::Live, 500)
        .map_err(|e| NetChaosError::Serve(e.to_string()))?;

    // Quiesce: the model must be finished before traffic starts, so every
    // request has exactly one right answer.
    let entry = registry
        .lookup(model_id)
        .map_err(|e| NetChaosError::Serve(e.to_string()))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    while !entry.stats().finished {
        if Instant::now() > deadline {
            return Err(NetChaosError::TrainingTimeout);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut expected = vec![0.0_f64; spec.dim];
    entry.service().reader().read_live(&mut expected);
    let expected = Arc::new(expected);

    let config = NetConfig::default()
        .max_connections(spec.clients * 4 + 8)
        .fault(spec.server_fault)
        .write_timeout(spec.timeout);
    let server = NetServer::serve(Arc::clone(&registry), config)?;
    let addr = server.local_addr();

    let mut report = NetChaosReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|c| {
                let expected = Arc::clone(&expected);
                scope.spawn(move || client_run(c, spec, addr, model_id.0, &expected))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => report.absorb(&part),
                Err(_) => report.wrong += 1, // a panicked client is a failure
            }
        }
    });
    server.stop();
    registry.shutdown();
    Ok(report)
}

/// One client's share of the campaign.
fn client_run(
    index: usize,
    spec: &NetChaosSpec,
    addr: std::net::SocketAddr,
    model: u32,
    expected: &[f64],
) -> NetChaosReport {
    let mut report = NetChaosReport::default();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ (index as u64).wrapping_mul(0x9e37));
    let mut client = match RetryingClient::new(addr, spec.policy) {
        Ok(client) => client,
        Err(_) => {
            // Loopback failed to resolve: count the whole share as given up.
            report.requests = spec.requests_per_client as u64;
            report.gave_up = report.requests;
            return report;
        }
    };
    client = client
        .timeout(spec.timeout)
        .fault(spec.client_fault.child(index as u64));
    let dim = expected.len();
    for _ in 0..spec.requests_per_client {
        report.requests += 1;
        match rng.gen_range(0..3_u32) {
            0 => {
                // Sparse probe, scored locally in the same fold order the
                // server uses.
                let len = rng.gen_range(1..4.min(dim) + 1);
                let probe: Vec<(u32, f64)> = (0..len)
                    .map(|_| {
                        let idx = rng.gen_range(0..dim) as u32;
                        let weight = f64::from(rng.gen_range(-8..9_i32)) * 0.25;
                        (idx, weight)
                    })
                    .collect();
                let mut want = 0.0_f64;
                for &(idx, weight) in &probe {
                    want += weight * expected[idx as usize];
                }
                match client.dot_score(model, &probe, Priority::High) {
                    Ok((value, _)) if value.to_bits() == want.to_bits() => report.exact += 1,
                    Ok((value, _)) => {
                        eprintln!("chaos: dot_score {value} != expected {want}");
                        report.wrong += 1;
                    }
                    Err(_) => report.gave_up += 1,
                }
            }
            1 => {
                let start = rng.gen_range(0..dim);
                let len = rng.gen_range(1..(dim - start).min(8) + 1);
                let want = &expected[start..start + len];
                match client.fetch_range(model, start as u32, len as u32, Priority::High) {
                    Ok((values, _))
                        if values.len() == want.len()
                            && values
                                .iter()
                                .zip(want)
                                .all(|(a, b)| a.to_bits() == b.to_bits()) =>
                    {
                        report.exact += 1;
                    }
                    Ok((values, _)) => {
                        eprintln!("chaos: fetch_range {values:?} != expected {want:?}");
                        report.wrong += 1;
                    }
                    Err(_) => report.gave_up += 1,
                }
            }
            _ => match client.stats_by_id(model) {
                Ok(stats) if stats.id == model && stats.name == "chaos" && stats.finished => {
                    report.exact += 1;
                }
                Ok(stats) => {
                    eprintln!("chaos: stats mismatch {stats:?}");
                    report.wrong += 1;
                }
                Err(_) => report.gave_up += 1,
            },
        }
    }
    report.retries = client.retries();
    report.reconnects = client.reconnects();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_faultless_campaign_is_all_exact() {
        let mut spec = NetChaosSpec::new(11);
        spec.clients = 2;
        spec.requests_per_client = 12;
        spec.dim = 8;
        spec.server_fault = FaultPlan::passthrough();
        spec.client_fault = FaultPlan::passthrough();
        let report = run_net_chaos(&spec).expect("harness runs");
        assert_eq!(report.requests, 24);
        assert_eq!(report.exact, 24, "{report:?}");
        assert!(report.zero_wrong());
        assert_eq!(report.gave_up, 0);
    }
}
