//! CLI regenerating every paper-claim table.
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- all
//! cargo run -p asgd-bench --release --bin experiments -- t51 t65
//! cargo run -p asgd-bench --release --bin experiments -- --quick all
//! ```
//!
//! Tables are printed to stdout and written as CSV under
//! `target/experiments/`.

use asgd_bench::{experiment_ids, run_experiment};
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.is_empty() {
        eprintln!("usage: experiments [--quick] <id…|all>");
        eprintln!("known experiments: {}", experiment_ids().join(", "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiment_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target").join("experiments");
    for id in ids {
        let started = std::time::Instant::now();
        let output = run_experiment(id, quick);
        print!("{}", output.render());
        for (i, table) in output.tables.iter().enumerate() {
            let name = if output.tables.len() == 1 {
                output.id.clone()
            } else {
                format!("{}_{i}", output.id)
            };
            match table.write_csv(&out_dir, &name) {
                Ok(path) => println!("[csv] {}", path.display()),
                Err(e) => eprintln!("[csv] failed to write {name}: {e}"),
            }
        }
        println!(
            "[done] {id} in {:.1}s{}\n",
            started.elapsed().as_secs_f64(),
            if quick { " (quick mode)" } else { "" }
        );
    }
}
