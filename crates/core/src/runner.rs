//! One-call harness for simulated lock-free SGD experiments.
//!
//! Wires together an oracle, `n` [`EpochSgdProcess`]es, a scheduler, the
//! engine and a [`HittingMonitor`], and returns everything an experiment
//! needs: hitting time, distances, contention statistics and the raw
//! execution report.
//!
//! **Note:** for new code, prefer the unified driver API (`asgd-driver`'s
//! `RunSpec` / `run_spec`), which runs the same specification on this
//! simulated backend and on every other execution model with one unified
//! report. This builder remains as the simulated backend's engine-level
//! entry point (the driver wraps it via [`LockFreeSgd::try_run`]).

use crate::lockfree::{EpochSgdConfig, EpochSgdProcess};
use crate::monitor::HittingMonitor;
use asgd_oracle::GradientOracle;
use asgd_shmem::engine::{Engine, ExecutionReport};
use asgd_shmem::memory::Memory;
use asgd_shmem::sched::Scheduler;
use asgd_shmem::trace::TraceLevel;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Strided trajectory sampler: `(t, ‖x_t − x*‖²)` over the §6.1 ordered
/// accumulator sequence.
type ProgressFn = Box<dyn FnMut(u64, f64)>;

/// Builder for a simulated lock-free SGD run (Algorithm 1 on `n` threads).
///
/// See the crate-level example. The oracle type must be `Clone` because each
/// simulated thread owns a handle (use `Arc<…>` for heavyweight oracles).
pub struct LockFreeSgd<O> {
    oracle: O,
    threads: usize,
    iterations: u64,
    alpha: f64,
    x0: Option<Vec<f64>>,
    eps: Option<f64>,
    scheduler: Option<Box<dyn Scheduler>>,
    seed: u64,
    max_steps: Option<u64>,
    trace: TraceLevel,
    sparse: bool,
    stop_flag: Option<Arc<AtomicBool>>,
    progress: Option<(u64, ProgressFn)>,
}

/// Error constructing a simulated lock-free run from its builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerError {
    /// No scheduler was configured ([`LockFreeSgd::scheduler`] is required).
    MissingScheduler,
    /// The configured initial point does not match the oracle's dimension.
    DimensionMismatch {
        /// The oracle's dimension `d`.
        expected: usize,
        /// The initial point's length.
        got: usize,
    },
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingScheduler => write!(f, "a scheduler is required"),
            Self::DimensionMismatch { expected, got } => write!(
                f,
                "initial point dimension mismatch: oracle has d = {expected}, x0 has {got}"
            ),
        }
    }
}

impl std::error::Error for RunnerError {}

/// Outcome of a simulated lock-free SGD run.
#[derive(Debug)]
pub struct LockFreeRun {
    /// Whether the processes declared O(Δ) sparse ops (sparse mode was
    /// requested *and* the oracle has the two-phase decomposition).
    pub used_sparse: bool,
    /// First (1-based) ordered iteration `t` whose accumulator state `x_t`
    /// entered the success region (`None` if never, or if no region was set).
    pub hit_iteration: Option<u64>,
    /// Minimum `‖x_t − x*‖²` over the ordered prefix (only meaningful when a
    /// success region was configured; otherwise the final distance).
    pub min_dist_sq: f64,
    /// Final shared model.
    pub final_model: Vec<f64>,
    /// `‖X_final − x*‖²`.
    pub final_dist_sq: f64,
    /// The underlying execution report (contention, trace, fingerprint…).
    pub execution: ExecutionReport,
}

impl<O: GradientOracle + Clone + 'static> LockFreeSgd<O> {
    /// Starts a builder with defaults: 2 threads, `T = 1000`, `α = 0.1`,
    /// `x₀ = 0`, no success region, seed 0, no step cap, no trace.
    #[must_use]
    pub fn builder(oracle: O) -> Self {
        Self {
            oracle,
            threads: 2,
            iterations: 1000,
            alpha: 0.1,
            x0: None,
            eps: None,
            scheduler: None,
            seed: 0,
            max_steps: None,
            trace: TraceLevel::Off,
            sparse: false,
            stop_flag: None,
            progress: None,
        }
    }

    /// Installs a cooperative stop flag, checked by the engine before every
    /// simulated step: once raised, the run ends with
    /// [`asgd_shmem::StopReason::Cancelled`].
    #[must_use]
    pub fn stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }

    /// Installs a strided trajectory sampler on the §6.1 ordered accumulator
    /// sequence: `f(t, ‖x_t − x*‖²)` fires for `t = 0` (`x₀`) and every
    /// ordered iteration count `t` that is a multiple of `stride` (clamped
    /// to ≥ 1). Pure observation via the engine event stream — attaching it
    /// does not change the execution.
    #[must_use]
    pub fn progress(mut self, stride: u64, f: impl FnMut(u64, f64) + 'static) -> Self {
        self.progress = Some((stride.max(1), Box::new(f)));
        self
    }

    /// Requests the O(Δ) sparse op pattern (effective only for oracles with
    /// the two-phase sparse decomposition; others stay dense). Off by
    /// default — the dense scan is the paper-faithful op sequence.
    #[must_use]
    pub fn sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }

    /// Number of simulated threads `n ≥ 1`.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one thread required");
        self.threads = n;
        self
    }

    /// Total iteration budget `T` (shared claim counter).
    #[must_use]
    pub fn iterations(mut self, t: u64) -> Self {
        self.iterations = t;
        self
    }

    /// Learning rate `α > 0`.
    #[must_use]
    pub fn learning_rate(mut self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// Initial model `x₀` (default: origin).
    #[must_use]
    pub fn initial_point(mut self, x0: Vec<f64>) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Enables hitting-time monitoring with threshold `ε` on `‖x_t − x*‖²`.
    #[must_use]
    pub fn success_radius_sq(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// The scheduler / adversary (required).
    #[must_use]
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.scheduler = Some(Box::new(s));
        self
    }

    /// Master seed for per-thread coin streams.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of simulation steps (needed with adversaries that can
    /// starve threads forever).
    #[must_use]
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Requests event tracing (e.g. for Figure-1 grids).
    #[must_use]
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Runs the simulation, panicking on configuration errors.
    ///
    /// Kept as the ergonomic entry point for tests and examples; fallible
    /// callers (the unified driver in particular) use
    /// [`LockFreeSgd::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if no scheduler was provided or the initial point has the wrong
    /// dimension.
    #[must_use]
    pub fn run(self) -> LockFreeRun {
        match self.try_run() {
            Ok(run) => run,
            Err(e @ RunnerError::MissingScheduler) => panic!("{e}"),
            Err(e @ RunnerError::DimensionMismatch { .. }) => panic!("{e}"),
        }
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::MissingScheduler`] if no scheduler was
    /// configured, or [`RunnerError::DimensionMismatch`] if the initial
    /// point's length differs from the oracle's dimension.
    pub fn try_run(self) -> Result<LockFreeRun, RunnerError> {
        let d = self.oracle.dimension();
        let x0 = self.x0.unwrap_or_else(|| vec![0.0; d]);
        if x0.len() != d {
            return Err(RunnerError::DimensionMismatch {
                expected: d,
                got: x0.len(),
            });
        }
        let scheduler = self.scheduler.ok_or(RunnerError::MissingScheduler)?;

        let mut builder = Engine::builder()
            .memory(Memory::with_model(&x0, 1))
            .scheduler(scheduler)
            .seed(self.seed)
            .trace(self.trace);
        if let Some(steps) = self.max_steps {
            builder = builder.max_steps(steps);
        }
        if let Some(flag) = self.stop_flag {
            builder = builder.stop_flag(flag);
        }
        // Sparse mode only changes the op pattern when the oracle actually
        // has the two-phase decomposition; probe once with a throwaway RNG
        // so the report states what really happened.
        let used_sparse = self.sparse && {
            use rand::SeedableRng as _;
            let mut probe = rand::rngs::StdRng::seed_from_u64(0);
            self.oracle.sample_support(&mut probe, &mut Vec::new())
        };
        for _ in 0..self.threads {
            builder = builder.process(EpochSgdProcess::new(
                self.oracle.clone(),
                EpochSgdConfig::simple(self.alpha, self.iterations).sparse(self.sparse),
            ));
        }

        // One monitor serves both hitting-time tracking (a real `eps`) and
        // trajectory sampling (an attached progress callback); with sampling
        // only, it folds against an unreachable `∞` radius and its hit data
        // is discarded below.
        let mut progress = self.progress;
        if let Some((_, f)) = &mut progress {
            // The sampler sees x₀ (zero updates applied) first, matching the
            // native executors' claim-0 sample.
            f(0, asgd_math::vec::l2_dist_sq(&x0, self.oracle.minimizer()));
        }
        let monitor = if self.eps.is_some() || progress.is_some() {
            let mut m = HittingMonitor::new(
                self.threads,
                x0.clone(),
                self.oracle.minimizer().to_vec(),
                self.eps.unwrap_or(f64::INFINITY),
            );
            if let Some((stride, f)) = progress {
                m = m.on_sample(stride, f);
            }
            Some(m.shared())
        } else {
            None
        };
        if let Some(m) = &monitor {
            let handle = std::rc::Rc::clone(m);
            builder = builder.observer(move |ev| handle.borrow_mut().observe(ev));
        }

        let execution = builder.build().run();
        let final_model = execution.memory.floats()[..d].to_vec();
        let final_dist_sq = asgd_math::vec::l2_dist_sq(&final_model, self.oracle.minimizer());
        let (hit_iteration, min_dist_sq) = match (&monitor, self.eps) {
            (Some(m), Some(_)) => {
                let m = m.borrow();
                (m.hit_iteration(), m.min_dist_sq())
            }
            _ => (None, final_dist_sq),
        };
        Ok(LockFreeRun {
            used_sparse,
            hit_iteration,
            min_dist_sq,
            final_model,
            final_dist_sq,
            execution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::{NoisyQuadratic, SparseQuadratic};
    use asgd_shmem::sched::{
        BoundedDelayAdversary, RandomScheduler, SerialScheduler, StepRoundRobin,
    };
    use asgd_shmem::StopReason;
    use std::sync::Arc;

    #[test]
    fn converges_under_benign_schedulers() {
        let oracle = Arc::new(NoisyQuadratic::new(3, 0.1).unwrap());
        for (name, sched) in [
            (
                "serial",
                Box::new(SerialScheduler::new()) as Box<dyn Scheduler>,
            ),
            ("rr", Box::new(StepRoundRobin::new())),
            ("random", Box::new(RandomScheduler::new(1))),
        ] {
            let run = LockFreeSgd::builder(Arc::clone(&oracle))
                .threads(3)
                .iterations(2000)
                .learning_rate(0.05)
                .initial_point(vec![2.0, -2.0, 1.0])
                .success_radius_sq(0.05)
                .scheduler(sched)
                .seed(13)
                .run();
            assert!(
                run.hit_iteration.is_some(),
                "{name}: min dist² {}",
                run.min_dist_sq
            );
            assert_eq!(run.execution.stop, StopReason::AllDone);
        }
    }

    #[test]
    fn converges_under_bounded_delay_adversary() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        let run = LockFreeSgd::builder(oracle)
            .threads(4)
            .iterations(4000)
            .learning_rate(0.02) // small α to withstand the adversary
            .initial_point(vec![1.5, -1.5])
            .success_radius_sq(0.05)
            .scheduler(BoundedDelayAdversary::new(8))
            .seed(19)
            .run();
        assert!(
            run.hit_iteration.is_some(),
            "adversarial run failed: min dist² {}",
            run.min_dist_sq
        );
        assert!(
            run.execution.contention.tau_max() >= 8,
            "adversary should manufacture contention ≥ its budget, got {}",
            run.execution.contention.tau_max()
        );
    }

    #[test]
    fn sparse_gradients_work_in_lockfree_mode() {
        // The single-nonzero-entry regime of [10]: still converges here.
        let oracle = Arc::new(SparseQuadratic::uniform(4, 1.0, 0.05).unwrap());
        let run = LockFreeSgd::builder(oracle)
            .threads(2)
            .iterations(6000)
            .learning_rate(0.05)
            .initial_point(vec![1.0, -1.0, 0.5, -0.5])
            .success_radius_sq(0.05)
            .scheduler(RandomScheduler::new(4))
            .seed(21)
            .run();
        assert!(run.hit_iteration.is_some(), "min dist² {}", run.min_dist_sq);
    }

    #[test]
    fn fingerprints_reproduce_with_same_seed() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.3).unwrap());
        let fp = |seed| {
            LockFreeSgd::builder(Arc::clone(&oracle))
                .threads(2)
                .iterations(100)
                .learning_rate(0.1)
                .scheduler(RandomScheduler::new(5))
                .seed(seed)
                .run()
                .execution
                .fingerprint
        };
        assert_eq!(fp(1), fp(1));
        assert_ne!(fp(1), fp(2));
    }

    #[test]
    fn max_steps_caps_adversarial_runs() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        let run = LockFreeSgd::builder(oracle)
            .threads(2)
            .iterations(u64::MAX / 2) // effectively unbounded work
            .learning_rate(0.1)
            .scheduler(StepRoundRobin::new())
            .max_steps(500)
            .seed(2)
            .run();
        assert_eq!(run.execution.stop, StopReason::StepBudgetExhausted);
        assert_eq!(run.execution.steps, 500);
    }

    #[test]
    #[should_panic(expected = "scheduler is required")]
    fn missing_scheduler_panics() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let _ = LockFreeSgd::builder(oracle).run();
    }

    #[test]
    fn try_run_reports_configuration_errors() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.0).unwrap());
        let err = LockFreeSgd::builder(Arc::clone(&oracle))
            .try_run()
            .unwrap_err();
        assert_eq!(err, RunnerError::MissingScheduler);
        assert!(err.to_string().contains("scheduler is required"));

        let err = LockFreeSgd::builder(Arc::clone(&oracle))
            .initial_point(vec![1.0])
            .scheduler(SerialScheduler::new())
            .try_run()
            .unwrap_err();
        assert_eq!(
            err,
            RunnerError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );

        let run = LockFreeSgd::builder(oracle)
            .iterations(10)
            .scheduler(SerialScheduler::new())
            .try_run()
            .expect("valid configuration runs");
        assert_eq!(run.execution.stop, StopReason::AllDone);
    }
}
