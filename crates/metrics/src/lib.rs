//! Experiment plumbing: repeated trials, probability estimation, histograms
//! and table/CSV rendering.
//!
//! The paper's guarantees are *probabilistic* (bounds on `P(F_T)`), so the
//! experiment harness estimates failure probabilities over many independent
//! seeded trials and reports Wilson confidence intervals next to the
//! theoretical bounds. This crate provides those estimators plus the
//! fixed-width tables and CSV files every experiment emits.
//!
//! # Example
//!
//! ```
//! use asgd_metrics::trials::estimate_probability;
//!
//! // A "failure" occurs when the seed is even — P = 0.5.
//! let est = estimate_probability(200, 42, |seed| seed % 2 == 0);
//! assert!(est.interval.lower < 0.5 && 0.5 < est.interval.upper);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod queue;
pub mod table;
pub mod trials;
pub mod window;

pub use histogram::{Histogram, Percentiles};
pub use queue::{QueueCounters, QueueStats};
pub use table::Table;
pub use trials::{estimate_probability, trial_stats, ProbabilityEstimate};
pub use window::SlidingHistogram;
