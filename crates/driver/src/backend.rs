//! The [`Backend`] trait and its seven implementations.
//!
//! Each backend interprets one [`RunSpec`] on a different execution model
//! and produces the same [`RunReport`], so experiments swap execution models
//! by changing one enum value.

use crate::error::DriverError;
use crate::report::{ContentionSummary, RunReport};
use crate::spec::{BackendKind, ModelLayoutSpec, RunSpec, SparsePathSpec, UpdateOrderSpec};
use asgd_core::full_sgd::{run_simulated, FullSgdConfig};
use asgd_core::runner::LockFreeSgd;
use asgd_core::sequential::SequentialSgd;
use asgd_hogwild::{
    ExecTuning, GuardedEpochSgd, GuardedEpochSgdConfig, Hogwild, HogwildConfig, LockedSgd,
    ModelLayout, NativeFullSgd, NativeFullSgdConfig, SparsePolicy, UpdateOrder,
};
use asgd_math::rng::SeedSequence;
use asgd_oracle::GradientOracle;
use asgd_shmem::StopReason;
use std::sync::Arc;
use std::time::Instant;

/// Maps the spec-level tuning knobs onto the native executors' [`ExecTuning`].
fn native_tuning(spec: &RunSpec) -> ExecTuning {
    ExecTuning {
        layout: match spec.layout {
            ModelLayoutSpec::Compact => ModelLayout::Compact,
            ModelLayoutSpec::Padded => ModelLayout::Padded,
        },
        order: match spec.order {
            UpdateOrderSpec::SeqCst => UpdateOrder::SeqCst,
            UpdateOrderSpec::Relaxed => UpdateOrder::Relaxed,
        },
        sparse: match spec.sparse {
            SparsePathSpec::Auto => SparsePolicy::Auto,
            SparsePathSpec::Dense => SparsePolicy::ForceDense,
            SparsePathSpec::Sparse => SparsePolicy::ForceSparse,
        },
        ..ExecTuning::default()
    }
}

/// An execution model that can run a [`RunSpec`].
pub trait Backend {
    /// Which [`BackendKind`] this backend implements.
    fn kind(&self) -> BackendKind;

    /// Canonical name (mirrors [`BackendKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Executes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] when the spec cannot be built or is not
    /// executable on this backend.
    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError>;
}

/// Returns the backend implementing `kind`.
#[must_use]
pub fn backend(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Sequential => Box::new(SequentialBackend),
        BackendKind::SimulatedLockFree => Box::new(SimulatedLockFreeBackend),
        BackendKind::SimulatedFullSgd => Box::new(SimulatedFullSgdBackend),
        BackendKind::Hogwild => Box::new(HogwildBackend),
        BackendKind::Locked => Box::new(LockedBackend),
        BackendKind::GuardedEpoch => Box::new(GuardedEpochBackend),
        BackendKind::NativeFullSgd => Box::new(NativeFullSgdBackend),
    }
}

/// Executes `spec` on the backend it selects — the driver's front door.
///
/// # Errors
///
/// Returns [`DriverError::Oracle`] when the oracle spec cannot be built,
/// [`DriverError::InvalidSpec`] for configurations the backend cannot
/// execute, and [`DriverError::Runner`] when the simulator rejects the run.
pub fn run_spec(spec: &RunSpec) -> Result<RunReport, DriverError> {
    validate(spec)?;
    backend(spec.backend).run(spec)
}

/// Like [`run_spec`] restricted to the simulated lock-free backend, but also
/// returning the full engine-level [`asgd_core::runner::LockFreeRun`]
/// (execution report, raw contention records) for experiments that audit
/// more than the summary — e.g. the Lemma 6.2/6.4 contention experiments.
///
/// # Errors
///
/// Same conditions as [`run_spec`].
pub fn run_simulated_lockfree_detailed(
    spec: &RunSpec,
) -> Result<(RunReport, asgd_core::runner::LockFreeRun), DriverError> {
    validate(spec)?;
    SimulatedLockFreeBackend::run_detailed(spec)
}

fn validate(spec: &RunSpec) -> Result<(), DriverError> {
    if spec.threads == 0 {
        return Err(DriverError::InvalidSpec(
            "at least one thread required".to_string(),
        ));
    }
    let alpha = spec.step.initial_alpha();
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(DriverError::InvalidSpec(format!(
            "learning rate must be positive and finite, got {alpha}"
        )));
    }
    // The scheduler only drives the simulated backends; check that its
    // thread references exist there, so misconfigurations surface as errors
    // instead of panics inside the adversary.
    if matches!(
        spec.backend,
        BackendKind::SimulatedLockFree | BackendKind::SimulatedFullSgd
    ) {
        if let crate::spec::SchedulerSpec::StaleGradient { runner, victim, .. } = spec.scheduler {
            if runner == victim {
                return Err(DriverError::InvalidSpec(format!(
                    "stale-gradient scheduler needs distinct threads, got runner = victim = \
                     {runner}"
                )));
            }
            let highest = runner.max(victim);
            if highest >= spec.threads {
                return Err(DriverError::InvalidSpec(format!(
                    "stale-gradient scheduler references thread {highest}, but the spec runs \
                     only {} threads",
                    spec.threads
                )));
            }
        }
    }
    Ok(())
}

/// Builds the oracle and resolves the initial point, checking dimensions.
fn oracle_and_x0(spec: &RunSpec) -> Result<(Arc<dyn GradientOracle>, Vec<f64>), DriverError> {
    let oracle = spec.oracle.build()?;
    let d = oracle.dimension();
    let x0 = match &spec.x0 {
        Some(x0) if x0.len() != d => {
            return Err(DriverError::InvalidSpec(format!(
                "x0 has dimension {}, oracle `{}` has {d}",
                x0.len(),
                spec.oracle.kind
            )));
        }
        Some(x0) => x0.clone(),
        None => vec![0.0; d],
    };
    Ok((oracle, x0))
}

/// Splits the total iteration budget across Algorithm-2 epochs.
///
/// Epochs share the budget equally; a non-divisible budget is floored, and
/// every epoch backend executes (and reports) the same
/// `per_epoch × epochs` total, so cross-backend head-to-heads stay
/// equal-budget.
fn epoch_split(spec: &RunSpec) -> Result<(u64, usize), DriverError> {
    let epochs = spec.step.halving_epochs() + 1;
    let per_epoch = spec.iterations / epochs as u64;
    if per_epoch == 0 {
        return Err(DriverError::InvalidSpec(format!(
            "iteration budget {} cannot cover {epochs} epochs",
            spec.iterations
        )));
    }
    Ok((per_epoch, epochs))
}

fn stop_label(stop: StopReason) -> String {
    match stop {
        StopReason::AllDone => "all-done".to_string(),
        StopReason::StepBudgetExhausted => "step-budget-exhausted".to_string(),
    }
}

struct SequentialBackend;

impl Backend for SequentialBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sequential
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        let alpha = spec.step.constant_alpha(self.kind())?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        // Thread 0's coin stream of the concurrent backends, so one spec
        // yields bit-identical trajectories here, on the simulated serial
        // schedule, and on single-threaded Hogwild.
        let seed = SeedSequence::new(spec.seed).child_seed(0);
        let mut runner = SequentialSgd::new(&oracle)
            .learning_rate(alpha)
            .iterations(spec.iterations)
            .initial_point(x0)
            .seed(seed);
        if let Some(eps) = spec.success_radius_sq {
            runner = runner.success_radius_sq(eps);
        }
        let started = Instant::now();
        let report = runner.run();
        let wall = started.elapsed().as_secs_f64();
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: report.hit_iteration,
            min_dist_sq: Some(report.min_dist_sq),
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_x,
            wall_time_secs: wall,
            steps: None,
            fingerprint: None,
            stop: None,
            contention: None,
            stale_rejected: None,
            sparse_path: None,
        })
    }
}

struct SimulatedLockFreeBackend;

impl SimulatedLockFreeBackend {
    fn run_detailed(
        spec: &RunSpec,
    ) -> Result<(RunReport, asgd_core::runner::LockFreeRun), DriverError> {
        let alpha = spec.step.constant_alpha(BackendKind::SimulatedLockFree)?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        let mut builder = LockFreeSgd::builder(oracle)
            .threads(spec.threads)
            .iterations(spec.iterations)
            .learning_rate(alpha)
            .initial_point(x0)
            .scheduler(spec.scheduler.build())
            .seed(spec.seed)
            // The dense op scan is the paper-faithful sequence; sparse ops
            // are an explicit opt-in for the simulator.
            .sparse(matches!(spec.sparse, SparsePathSpec::Sparse));
        if let Some(eps) = spec.success_radius_sq {
            builder = builder.success_radius_sq(eps);
        }
        if let Some(steps) = spec.max_steps {
            builder = builder.max_steps(steps);
        }
        let started = Instant::now();
        let run = builder.try_run()?;
        let wall = started.elapsed().as_secs_f64();
        let report = RunReport {
            backend: BackendKind::SimulatedLockFree.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: run.execution.contention.iterations(),
            seed: spec.seed,
            hit_iteration: run.hit_iteration,
            min_dist_sq: spec.success_radius_sq.map(|_| run.min_dist_sq),
            final_dist_sq: run.final_dist_sq,
            final_model: run.final_model.clone(),
            wall_time_secs: wall,
            steps: Some(run.execution.steps),
            fingerprint: Some(run.execution.fingerprint),
            stop: Some(stop_label(run.execution.stop)),
            contention: Some(ContentionSummary::from_report(&run.execution.contention)),
            stale_rejected: None,
            sparse_path: Some(run.used_sparse),
        };
        Ok((report, run))
    }
}

impl Backend for SimulatedLockFreeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimulatedLockFree
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        Self::run_detailed(spec).map(|(report, _)| report)
    }
}

struct SimulatedFullSgdBackend;

impl Backend for SimulatedFullSgdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimulatedFullSgd
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        let (per_epoch, epochs) = epoch_split(spec)?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        let cfg = FullSgdConfig {
            alpha0: spec.step.initial_alpha(),
            epoch_iterations: per_epoch,
            halving_epochs: epochs - 1,
        };
        let started = Instant::now();
        let report = run_simulated(
            oracle,
            cfg,
            spec.threads,
            &x0,
            spec.scheduler.build(),
            spec.seed,
            spec.max_steps,
        );
        let wall = started.elapsed().as_secs_f64();
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: per_epoch * epochs as u64,
            seed: spec.seed,
            hit_iteration: None,
            min_dist_sq: None,
            final_dist_sq: report.dist_to_opt * report.dist_to_opt,
            final_model: report.r,
            wall_time_secs: wall,
            steps: Some(report.execution.steps),
            fingerprint: Some(report.execution.fingerprint),
            stop: Some(stop_label(report.execution.stop)),
            contention: Some(ContentionSummary::from_report(&report.execution.contention)),
            stale_rejected: None,
            sparse_path: None,
        })
    }
}

struct HogwildBackend;

impl Backend for HogwildBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hogwild
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        let alpha = spec.step.constant_alpha(self.kind())?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: spec.threads,
                iterations: spec.iterations,
                alpha,
                seed: spec.seed,
                success_radius_sq: spec.success_radius_sq,
            },
        )
        .tuning(native_tuning(spec))
        .run(&x0);
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: report.first_success_claim,
            min_dist_sq: None,
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_model,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: None,
            contention: None,
            stale_rejected: None,
            sparse_path: Some(report.used_sparse),
        })
    }
}

struct LockedBackend;

impl Backend for LockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Locked
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        let alpha = spec.step.constant_alpha(self.kind())?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        let report = LockedSgd::new(oracle, spec.threads, spec.iterations, alpha, spec.seed)
            .tuning(native_tuning(spec))
            .run(&x0);
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: None,
            min_dist_sq: None,
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_model,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: None,
            contention: None,
            stale_rejected: None,
            sparse_path: Some(report.used_sparse),
        })
    }
}

struct GuardedEpochBackend;

impl Backend for GuardedEpochBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::GuardedEpoch
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        // Same floored per-epoch budget as the other epoch backends, so one
        // spec compares equal iteration counts everywhere (the executor
        // itself can distribute remainders, but the driver keeps backends
        // aligned).
        let (per_epoch, epochs) = epoch_split(spec)?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        let report = GuardedEpochSgd::new(
            oracle,
            GuardedEpochSgdConfig {
                threads: spec.threads,
                iterations: per_epoch * epochs as u64,
                alpha0: spec.step.initial_alpha(),
                halving_epochs: spec.step.halving_epochs(),
                seed: spec.seed,
                success_radius_sq: spec.success_radius_sq,
            },
        )
        .tuning(native_tuning(spec))
        .run(&x0);
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: report.first_success_claim,
            min_dist_sq: None,
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_model,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: None,
            contention: None,
            stale_rejected: Some(report.stale_rejected),
            sparse_path: Some(report.used_sparse),
        })
    }
}

struct NativeFullSgdBackend;

impl Backend for NativeFullSgdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::NativeFullSgd
    }

    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        let (per_epoch, epochs) = epoch_split(spec)?;
        let (oracle, x0) = oracle_and_x0(spec)?;
        let report = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: spec.step.initial_alpha(),
                epoch_iterations: per_epoch,
                halving_epochs: epochs - 1,
                threads: spec.threads,
                seed: spec.seed,
            },
        )
        .tuning(native_tuning(spec))
        .run(&x0);
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: per_epoch * epochs as u64,
            seed: spec.seed,
            hit_iteration: None,
            min_dist_sq: None,
            final_dist_sq: report.dist_to_opt * report.dist_to_opt,
            final_model: report.r,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: None,
            contention: None,
            stale_rejected: None,
            sparse_path: Some(report.used_sparse),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SchedulerSpec, StepSize};
    use asgd_oracle::OracleSpec;

    fn base_spec() -> RunSpec {
        RunSpec::new(
            OracleSpec::new("noisy-quadratic", 2).sigma(0.1),
            BackendKind::SimulatedLockFree,
        )
        .threads(2)
        .iterations(400)
        .learning_rate(0.05)
        .x0(vec![1.0, -1.0])
        .success_radius_sq(0.05)
        .seed(11)
        .scheduler(SchedulerSpec::Random { seed: 3 })
    }

    #[test]
    fn every_backend_reports_its_kind() {
        for &kind in BackendKind::all() {
            assert_eq!(backend(kind).kind(), kind);
            assert_eq!(backend(kind).name(), kind.name());
        }
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let spec = base_spec().threads(0);
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let mut spec = base_spec();
        spec.step = StepSize::Constant { alpha: -0.5 };
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let spec = base_spec().x0(vec![1.0]);
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let mut spec = base_spec();
        spec.oracle.kind = "no-such-oracle".to_string();
        assert!(matches!(run_spec(&spec), Err(DriverError::Oracle(_))));
    }

    #[test]
    fn halving_schedule_is_rejected_on_constant_backends() {
        for kind in [
            BackendKind::Sequential,
            BackendKind::SimulatedLockFree,
            BackendKind::Hogwild,
            BackendKind::Locked,
        ] {
            let spec = base_spec().backend(kind).halving(0.1, 2);
            assert!(
                matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))),
                "{kind} must reject halving schedules"
            );
        }
    }

    #[test]
    fn epoch_backends_need_budget_for_every_epoch() {
        for kind in [
            BackendKind::SimulatedFullSgd,
            BackendKind::NativeFullSgd,
            BackendKind::GuardedEpoch,
        ] {
            let spec = base_spec().backend(kind).halving(0.1, 7).iterations(4);
            assert!(
                matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))),
                "{kind} must reject budget 4 over 8 epochs"
            );
        }
    }

    #[test]
    fn stale_scheduler_thread_references_are_validated() {
        // A stale-gradient adversary naming a thread the spec does not run
        // must be an error, not an index-out-of-bounds panic in the
        // scheduler.
        let spec = base_spec()
            .threads(1)
            .scheduler(SchedulerSpec::StaleGradient {
                runner: 0,
                victim: 1,
                delay: 4,
            });
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let spec = base_spec().scheduler(SchedulerSpec::StaleGradient {
            runner: 1,
            victim: 1,
            delay: 4,
        });
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        // Native backends ignore the scheduler; the same spec runs there.
        let spec = base_spec()
            .backend(BackendKind::Hogwild)
            .threads(1)
            .scheduler(SchedulerSpec::StaleGradient {
                runner: 0,
                victim: 1,
                delay: 4,
            });
        assert!(run_spec(&spec).is_ok());
    }

    #[test]
    fn epoch_backends_execute_identical_floored_budgets() {
        // 100 iterations over 3 epochs floors to 33 × 3 = 99 on *every*
        // epoch backend — cross-backend head-to-heads stay equal-budget.
        let spec = base_spec().halving(0.1, 2).iterations(100);
        for kind in [
            BackendKind::SimulatedFullSgd,
            BackendKind::NativeFullSgd,
            BackendKind::GuardedEpoch,
        ] {
            let report = run_spec(&spec.clone().backend(kind)).unwrap();
            assert_eq!(report.iterations, 99, "{kind}");
        }
    }

    #[test]
    fn sparse_knob_reaches_every_concurrent_backend() {
        use crate::spec::SparsePathSpec;
        let base = RunSpec::new(
            OracleSpec::new("sparse-quadratic", 16).sigma(0.0),
            BackendKind::Hogwild,
        )
        .threads(2)
        .iterations(600)
        .learning_rate(0.01)
        .x0(vec![1.0; 16])
        .seed(5);
        // Constant-step native backends + the simulator honour the forced
        // paths and report which one ran.
        for kind in [
            BackendKind::Hogwild,
            BackendKind::Locked,
            BackendKind::SimulatedLockFree,
        ] {
            let dense = run_spec(&base.clone().backend(kind).sparse(SparsePathSpec::Dense))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(dense.sparse_path, Some(false), "{kind}");
            let sparse = run_spec(&base.clone().backend(kind).sparse(SparsePathSpec::Sparse))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(sparse.sparse_path, Some(true), "{kind}");
        }
        for kind in [BackendKind::GuardedEpoch, BackendKind::NativeFullSgd] {
            let report = run_spec(&base.clone().backend(kind).sparse(SparsePathSpec::Sparse))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(report.sparse_path, Some(true), "{kind}");
        }
        // Sequential has no dense/sparse distinction.
        let seq = run_spec(&base.clone().backend(BackendKind::Sequential)).unwrap();
        assert_eq!(seq.sparse_path, None);
    }

    #[test]
    fn layout_and_order_knobs_run_on_native_backends() {
        use crate::spec::{ModelLayoutSpec, UpdateOrderSpec};
        let spec = base_spec()
            .backend(BackendKind::Hogwild)
            .layout(ModelLayoutSpec::Padded)
            .order(UpdateOrderSpec::Relaxed);
        let report = run_spec(&spec).unwrap();
        assert!(report.final_dist_sq < 0.5, "dist² {}", report.final_dist_sq);
    }

    #[test]
    fn detailed_run_matches_summary() {
        let spec = base_spec();
        let (mut report, run) = run_simulated_lockfree_detailed(&spec).unwrap();
        assert_eq!(report.fingerprint, Some(run.execution.fingerprint));
        assert_eq!(
            report.contention.as_ref().unwrap().tau_max,
            run.execution.contention.tau_max()
        );
        let mut again = run_spec(&spec).unwrap();
        // Wall time is the one non-deterministic field.
        report.wall_time_secs = 0.0;
        again.wall_time_secs = 0.0;
        assert_eq!(again, report, "deterministic backend");
    }
}
