//! Live-observed run sessions: submit, stream progress, cancel, sweep.
//!
//! ```text
//! cargo run --release --example driver_watch
//! ```
//!
//! Submits a small sweep as background jobs through `Driver::submit_observed`
//! and prints each run's progress lines as they stream in; one deliberately
//! oversized run is cancelled mid-flight to show the stop path. Finally the
//! same sweep is executed through the bounded pool (`Driver::run_many`) and
//! summarised.

use asyncsgd::prelude::*;
use std::sync::Arc;

/// Prints one line per progress/lifecycle event, prefixed with a job label.
struct PrintObserver {
    label: &'static str,
}

impl RunObserver for PrintObserver {
    fn on_event(&self, event: &RunEvent) {
        match event {
            RunEvent::Started {
                backend,
                threads,
                iterations,
                ..
            } => {
                println!(
                    "[{}] started: {backend} n={threads} T={iterations}",
                    self.label
                );
            }
            RunEvent::Progress(p) => {
                println!(
                    "[{}] t={:>8} dist²={:.3e} ({:.1} ms)",
                    self.label,
                    p.iterations,
                    p.dist_sq,
                    p.elapsed_secs * 1e3
                );
            }
            RunEvent::TrajectorySample(_) => {} // Progress already covers the demo
            RunEvent::SnapshotPublished { .. } => {} // serving demo lives in serve_live
            RunEvent::DriftInjected { .. } => {} // streaming demo lives in ingest_drift
            RunEvent::ShedTierChanged { .. } | RunEvent::QueueSaturated { .. } => {} // net-tier events
            RunEvent::Finished(report) => {
                println!(
                    "[{}] finished: T={} dist²={:.3e} stop={}",
                    self.label,
                    report.iterations,
                    report.final_dist_sq,
                    report.stop.as_deref().unwrap_or("-")
                );
            }
        }
    }
}

fn main() {
    let driver = Driver::new();
    let base = RunSpec::new(
        OracleSpec::new("noisy-quadratic", 8).sigma(0.2),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(400_000)
    .learning_rate(0.01)
    .x0(vec![2.0; 8])
    .seed(7)
    .trajectory_every(50_000);

    // Two observed jobs running concurrently.
    let fast = driver.submit_observed(
        base.clone().seed(1),
        Arc::new(PrintObserver { label: "hogwild-a" }),
    );
    let slow = driver.submit_observed(
        base.clone().backend(BackendKind::Locked).seed(2),
        Arc::new(PrintObserver { label: "locked-b" }),
    );

    // A deliberately unbounded job: cancel it once the fast one finishes.
    let doomed = driver.submit_observed(
        base.clone()
            .iterations(u64::MAX / 2)
            .trajectory_every(2_000_000)
            .seed(3),
        Arc::new(PrintObserver { label: "doomed-c" }),
    );

    let fast_report = fast.wait().expect("hogwild spec runs");
    println!(
        "--> hogwild-a done after {} samples",
        fast_report.trajectory.as_ref().map_or(0, Vec::len)
    );
    doomed.cancel();
    let doomed_report = doomed.wait().expect("cancelled runs still report");
    assert_eq!(doomed_report.stop.as_deref(), Some("cancelled"));
    println!(
        "--> doomed-c cancelled after {} iterations",
        doomed_report.iterations
    );
    let _ = slow.wait().expect("locked spec runs");

    // The same comparison as a pooled sweep: results in spec order.
    let sweep: Vec<RunSpec> = [1_u64, 2, 3, 4]
        .iter()
        .map(|&seed| base.clone().iterations(100_000).seed(seed))
        .collect();
    println!("\npooled sweep over {} specs:", sweep.len());
    for (spec, report) in sweep.iter().zip(driver.run_many(&sweep)) {
        let report = report.expect("sweep spec runs");
        println!(
            "  seed {} -> dist² {:.3e} in {:.1} ms",
            spec.seed,
            report.final_dist_sq,
            report.wall_time_secs * 1e3
        );
    }
}
