//! Minimal JSON codec used by the driver's report serialisation.
//!
//! The build environment has no crates.io access, so `serde_json` is not
//! available; this module implements the small, exact subset the driver
//! needs: a [`Value`] tree, a writer, and a recursive-descent parser.
//! Integers round-trip exactly (`u64`/`i64` are kept apart from `f64`),
//! which matters for execution fingerprints. Non-finite floats serialise as
//! `null`, as JSON has no representation for them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    U64(u64),
    /// A negative integer that fits `i64`.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are ordered for deterministic output.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A float value (`null` when non-finite).
    #[must_use]
    pub fn f64(v: f64) -> Self {
        if v.is_finite() {
            Self::F64(v)
        } else {
            Self::Null
        }
    }

    /// An optional value (`null` when `None`).
    #[must_use]
    pub fn opt(v: Option<Value>) -> Self {
        v.unwrap_or(Self::Null)
    }

    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Self::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Self::U64(v) => Some(v as f64),
            Self::I64(v) => Some(v as f64),
            Self::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Self::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Self::Null)
    }

    /// Serialises compactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float formatting.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.iter(),
                    |out, item, d| {
                        item.write(out, indent, d);
                    },
                );
            }
            Self::Obj(map) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    map.iter(),
                    |out, (k, v), d| {
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, d);
                    },
                );
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_integers() {
        let v = Value::obj([
            ("fingerprint", Value::U64(u64::MAX)),
            ("neg", Value::I64(-42)),
            ("pi", Value::F64(0.1)),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::obj([
            (
                "arr",
                Value::Arr(vec![Value::U64(1), Value::Null, Value::Bool(true)]),
            ),
            ("s", Value::Str("line\n\"quote\" \\ tab\t".to_string())),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(Default::default())),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for f in [0.1, -2.5e-9, 1.0 / 3.0, f64::MAX, 5e-324] {
            let text = Value::F64(f).to_json();
            let Value::F64(back) = parse(&text).unwrap() else {
                panic!("expected float from {text}");
            };
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::f64(f64::NAN), Value::Null);
        assert_eq!(Value::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true, "e": -1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_usize), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("e").and_then(Value::as_f64), Some(-1.5));
        assert!(v.get("missing").is_none());
    }
}
