//! The analytic constants of §3 of the paper.

/// The constants `(c, L, M²)` under which the paper's convergence results
/// hold, as provided by a workload for a stated trust region.
///
/// * `c`: strong convexity — `(x−y)ᵀ(∇f(x)−∇f(y)) ≥ c‖x−y‖²` (Eq. 2).
/// * `l`: Lipschitz continuity of the stochastic gradient in expectation —
///   `E‖g̃(x)−g̃(y)‖ ≤ L‖x−y‖` (Eq. 3), evaluated under common random
///   numbers (the same sample coin at `x` and `y`).
/// * `m_sq`: second-moment bound — `E‖g̃(x)‖² ≤ M²` (Eq. 4). Most objectives
///   do not admit a global `M²`; workloads report a bound valid whenever
///   `‖x − x*‖ ≤ radius`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// Strong-convexity modulus `c > 0`.
    pub c: f64,
    /// Expected-Lipschitz constant `L > 0` of the stochastic gradient.
    pub l: f64,
    /// Second-moment bound `M² > 0`.
    pub m_sq: f64,
    /// Radius `R` (around `x*`) within which `m_sq` is valid;
    /// `f64::INFINITY` when the bound is global.
    pub radius: f64,
}

impl Constants {
    /// Creates a constants record.
    ///
    /// # Panics
    ///
    /// Panics if any of `c`, `l`, `m_sq` is not strictly positive and finite,
    /// or if `radius` is not positive (it may be infinite).
    #[must_use]
    pub fn new(c: f64, l: f64, m_sq: f64, radius: f64) -> Self {
        assert!(c.is_finite() && c > 0.0, "c must be positive, got {c}");
        assert!(l.is_finite() && l > 0.0, "L must be positive, got {l}");
        assert!(
            m_sq.is_finite() && m_sq > 0.0,
            "M² must be positive, got {m_sq}"
        );
        assert!(radius > 0.0, "radius must be positive, got {radius}");
        Self { c, l, m_sq, radius }
    }

    /// `M = √(M²)`.
    #[must_use]
    pub fn m(&self) -> f64 {
        self.m_sq.sqrt()
    }

    /// The classic condition-number-like ratio `M²/c²`, which sets the scale
    /// of the sequential failure bound (Theorem 3.1).
    #[must_use]
    pub fn m_sq_over_c_sq(&self) -> f64 {
        self.m_sq / (self.c * self.c)
    }
}

impl std::fmt::Display for Constants {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "c={:.4}, L={:.4}, M²={:.4} (valid within R={:.3})",
            self.c, self.l, self.m_sq, self.radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_derives() {
        let k = Constants::new(0.5, 2.0, 9.0, f64::INFINITY);
        assert_eq!(k.m(), 3.0);
        assert_eq!(k.m_sq_over_c_sq(), 36.0);
        assert!(k.to_string().contains("c=0.5"));
    }

    #[test]
    #[should_panic(expected = "c must be positive")]
    fn rejects_nonpositive_c() {
        let _ = Constants::new(0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "L must be positive")]
    fn rejects_nan_l() {
        let _ = Constants::new(1.0, f64::NAN, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "M² must be positive")]
    fn rejects_infinite_m_sq() {
        let _ = Constants::new(1.0, 1.0, f64::INFINITY, 1.0);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_zero_radius() {
        let _ = Constants::new(1.0, 1.0, 1.0, 0.0);
    }
}
