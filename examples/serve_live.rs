//! Serve a model that is training right now.
//!
//! ```text
//! cargo run --release --example serve_live
//! ```
//!
//! Starts hogwild training on `sparse-quadratic` at d = 64k (O(Δ) sparse
//! path, effectively unbounded budget), hammers it with a handful of
//! closed-loop dot-score clients reading the live shared model's published
//! snapshots, prints live p99 latency + snapshot staleness once per tick,
//! then cancels the training run cleanly and verifies the last snapshot
//! matches the cancelled run's final state.

use asyncsgd::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const DIM: usize = 65_536;
const CLIENTS: usize = 4;
const TICKS: usize = 5;

fn main() {
    let train = RunSpec::new(
        OracleSpec::new("sparse-quadratic", DIM).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(u64::MAX / 2)
    .learning_rate(0.5 / DIM as f64)
    .x0(vec![1.0; DIM])
    .seed(7);
    let serve = ServeSpec::new(train.clone())
        .mode(ReadMode::Snapshot)
        .query(QueryKind::DotScore)
        .clients(CLIENTS)
        .publish_every(4_096)
        .serve_seed(0xBEEF);

    let service = ModelService::start(&train, serve.publish_stride).expect("service starts");
    println!(
        "serving d={DIM} while {} trainer threads run underneath ({CLIENTS} closed-loop clients)",
        train.threads
    );

    let stop = AtomicBool::new(false);
    // Clients push latencies into per-tick shared histograms; the main
    // thread drains and prints them once per tick.
    let latencies: Mutex<asyncsgd::metrics::Histogram> = Mutex::new(Default::default());
    std::thread::scope(|scope| {
        for i in 0..CLIENTS {
            let mut client = QueryClient::new(&service, &serve, 0xBEEF + i as u64);
            let stop = &stop;
            let latencies = &latencies;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let outcome = client.query();
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    latencies.lock().unwrap().push(ns);
                    assert!(outcome.value.is_finite());
                }
            });
        }

        for tick in 1..=TICKS {
            std::thread::sleep(Duration::from_millis(200));
            let window = std::mem::take(&mut *latencies.lock().unwrap());
            let p99_us = window.percentiles().map_or(0.0, |p| p.p99 as f64 / 1e3);
            println!(
                "tick {tick}: {q} queries ({qps:.0}/s), p99 {p99_us:.1} µs, staleness {stale} \
                 iters, trained {iters} iters",
                q = window.total(),
                qps = window.total() as f64 / 0.2,
                stale = service.staleness().unwrap_or(0),
                iters = service.reader().iterations(),
            );
        }

        println!("cancelling training…");
        let cancelled_at = Instant::now();
        let report = service.stop().expect("cancelled runs report Ok");
        println!(
            "training stopped in {:.1} ms: {} iterations, stop={}",
            cancelled_at.elapsed().as_secs_f64() * 1e3,
            report.iterations,
            report.stop.as_deref().unwrap_or("-"),
        );
        stop.store(true, Ordering::Relaxed);

        // The serving plane outlives the run: the last published snapshot
        // is the cancelled run's final state (tags are monotone, so the tag
        // may exceed the executed count by at most the trainer count), and
        // live reads agree.
        let snap = service.reader().snapshot().expect("final publication");
        assert!(snap.iteration >= report.iterations);
        assert_eq!(snap.values, report.final_model);
        println!(
            "final snapshot v{} at iteration {} matches the cancelled report — serving stays up",
            snap.version, snap.iteration
        );
    });
}
