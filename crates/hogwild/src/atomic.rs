//! Lock-free atomic `f64` built on `AtomicU64` bit transmutation.
//!
//! Commodity CPUs have no native floating-point `fetch&add`; the standard
//! construction (also what the paper's model assumes as a primitive) is a
//! compare-and-swap loop over the bit pattern. The loop is lock-free: a
//! failed CAS means *another* update succeeded, so system-wide progress is
//! guaranteed — exactly the property that prevents a delayed thread from
//! obliterating others' progress (§1).
//!
//! Update conservation — concurrent `fetch_add`s never lose an addend — is
//! model-checked in `asgd-chaos` (`AtomicAddModel`): the CAS loop verifies
//! over every bounded-preemption schedule, while a load-then-store variant
//! is caught losing updates with one preemption.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomically updatable `f64`.
///
/// The default operations use sequentially consistent ordering, matching the
/// sequentially consistent shared-memory model assumed in §2 of the paper —
/// the *paper-faithful* mode. The `_relaxed` variants
/// ([`AtomicF64::load_relaxed`], [`AtomicF64::fetch_add_relaxed`]) trade
/// that global order for hardware speed: per-entry atomicity and update
/// conservation (no lost `fetch&add`) still hold — those come from the CAS
/// loop, not the fence — but distinct entries may be observed out of order.
/// Algorithm 1's convergence analysis only needs atomic per-entry reads and
/// non-lost updates, so the relaxed mode is offered as an executor knob
/// (`UpdateOrder::Relaxed`) while SeqCst remains the default.
///
/// # Example
///
/// ```
/// use asgd_hogwild::AtomicF64;
///
/// let x = AtomicF64::new(1.0);
/// assert_eq!(x.fetch_add(0.5), 1.0); // returns the prior value
/// assert_eq!(x.load(), 1.5);
/// ```
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic with the given initial value.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Self {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Atomically reads the value.
    #[must_use]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }

    /// Atomically reads the value with relaxed ordering (still a single
    /// atomic load — no torn reads — but no cross-entry ordering).
    #[must_use]
    pub fn load_relaxed(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Atomically writes the value.
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::SeqCst);
    }

    /// Atomic `fetch&add`: adds `delta` and returns the *previous* value —
    /// the primitive of Algorithm 1, line 7 (paper-faithful SeqCst mode).
    pub fn fetch_add(&self, delta: f64) -> f64 {
        // A failed CAS only needs the freshly observed value, not a fence:
        // Relaxed failure ordering, with a spin hint before the retry (the
        // failure means another core just wrote this line).
        let mut current = self.bits.load(Ordering::SeqCst);
        loop {
            let new = f64::from_bits(current) + delta;
            match self.bits.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => {
                    std::hint::spin_loop();
                    current = actual;
                }
            }
        }
    }

    /// Atomic `fetch&add` with relaxed ordering: a Relaxed load feeding an
    /// `AcqRel`-on-success / Relaxed-on-failure CAS loop. Update
    /// conservation is identical to [`AtomicF64::fetch_add`] (the CAS makes
    /// the read-modify-write atomic either way); what is given up is the
    /// single total order across *different* entries, which Algorithm 1's
    /// inconsistent-view analysis tolerates by design.
    pub fn fetch_add_relaxed(&self, delta: f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let new = f64::from_bits(current) + delta;
            match self.bits.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => {
                    std::hint::spin_loop();
                    current = actual;
                }
            }
        }
    }

    /// Atomic compare-and-swap on the exact bit pattern. Returns `Ok(prev)`
    /// on success and `Err(observed)` on failure.
    ///
    /// # Errors
    ///
    /// Returns the observed value when it differs bitwise from `expected`.
    pub fn compare_exchange(&self, expected: f64, new: f64) -> Result<f64, f64> {
        self.bits
            .compare_exchange(
                expected.to_bits(),
                new.to_bits(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .map(f64::from_bits)
            .map_err(f64::from_bits)
    }
}

/// A value alone on its own 64-byte cache line.
///
/// Shared by the padded model layout (one entry per line) and the sharded
/// store's per-shard update counters (one counter per line): in both cases
/// the point is that threads hammering *different* cells must not ping-pong
/// one line between cores. The alignment matches the coherency line size of
/// every x86-64 and most AArch64 parts; on CPUs with larger lines the type
/// still removes the worst of the false sharing.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl From<f64> for AtomicF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_load_store() {
        let x = AtomicF64::new(2.5);
        assert_eq!(x.load(), 2.5);
        x.store(-1.25);
        assert_eq!(x.load(), -1.25);
        assert_eq!(AtomicF64::default().load(), 0.0);
        assert_eq!(AtomicF64::from(3.0).load(), 3.0);
    }

    #[test]
    fn fetch_add_returns_prior() {
        let x = AtomicF64::new(1.0);
        assert_eq!(x.fetch_add(2.0), 1.0);
        assert_eq!(x.fetch_add(-0.5), 3.0);
        assert_eq!(x.load(), 2.5);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let x = AtomicF64::new(1.0);
        assert_eq!(x.compare_exchange(1.0, 5.0), Ok(1.0));
        assert_eq!(x.compare_exchange(1.0, 9.0), Err(5.0));
        assert_eq!(x.load(), 5.0);
    }

    #[test]
    fn clone_snapshots_value() {
        let x = AtomicF64::new(7.0);
        let y = x.clone();
        x.store(0.0);
        assert_eq!(y.load(), 7.0);
    }

    #[test]
    fn concurrent_fetch_add_conserves_sum() {
        // The defining property of fetch&add (vs racy read-modify-write):
        // no update is ever lost, regardless of interleaving.
        let x = Arc::new(AtomicF64::new(0.0));
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let x = Arc::clone(&x);
                s.spawn(move || {
                    let delta = if t % 2 == 0 { 1.0 } else { -1.0 };
                    for _ in 0..per_thread {
                        x.fetch_add(delta);
                    }
                });
            }
        });
        assert_eq!(x.load(), 0.0);
    }

    #[test]
    fn concurrent_mixed_magnitudes_conserve_exactly() {
        // Powers of two are exact in binary floating point, so the final
        // value is deterministic even under arbitrary interleavings.
        let x = Arc::new(AtomicF64::new(0.0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let x = Arc::clone(&x);
                s.spawn(move || {
                    let delta = 2.0_f64.powi(t);
                    for _ in 0..1000 {
                        x.fetch_add(delta);
                    }
                });
            }
        });
        assert_eq!(x.load(), 1000.0 * (1.0 + 2.0 + 4.0 + 8.0));
    }

    #[test]
    fn relaxed_fetch_add_returns_prior_and_loads_agree() {
        let x = AtomicF64::new(1.0);
        assert_eq!(x.fetch_add_relaxed(2.0), 1.0);
        assert_eq!(x.load_relaxed(), 3.0);
        assert_eq!(x.load(), 3.0);
    }

    #[test]
    fn mixed_ordering_fetch_adds_conserve_the_sum() {
        // The two-ordering conservation property: interleaving SeqCst and
        // relaxed fetch&adds on one cell must still lose no update — the
        // CAS loop, not the memory fence, is what makes the RMW atomic.
        let x = Arc::new(AtomicF64::new(0.0));
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let x = Arc::clone(&x);
                s.spawn(move || {
                    // Exact powers of two so the expected total is exact in
                    // binary floating point under any interleaving.
                    let delta = 2.0_f64.powi(t % 4);
                    for _ in 0..per_thread {
                        if t % 2 == 0 {
                            x.fetch_add(delta);
                        } else {
                            x.fetch_add_relaxed(delta);
                        }
                    }
                });
            }
        });
        let expected = f64::from(per_thread) * 2.0 * (1.0 + 2.0 + 4.0 + 8.0);
        assert_eq!(x.load(), expected);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicF64>();
    }

    #[test]
    fn cache_aligned_occupies_a_full_line() {
        assert_eq!(std::mem::align_of::<CacheAligned<AtomicF64>>(), 64);
        assert_eq!(std::mem::size_of::<CacheAligned<AtomicF64>>(), 64);
        let c = CacheAligned(AtomicF64::new(1.5));
        assert_eq!(c.0.load(), 1.5);
    }
}
