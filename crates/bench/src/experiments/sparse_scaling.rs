//! **O(Δ) vs O(d)** — the sparse fast path's measured d/Δ win.
//!
//! The paper's bounds are parameterized by the gradient sparsity Δ (§3);
//! this experiment measures what that parameterisation is worth on real
//! hardware: the same `sparse-quadratic` workload (Δ = 1) run through the
//! native Hogwild backend on the dense O(d) path and the sparse O(Δ) path,
//! sweeping d ∈ {16, 1k, 64k} × threads ∈ {1, 2, 4, 8} at a fixed
//! iteration budget. At d = 64k the dense path reads and scans 64k entries
//! per iteration to apply one update; the sparse path reads one.
//!
//! Full (non-quick) runs write `BENCH_sparse_path.json` into the current
//! directory — the workspace's perf trajectory artifact.

use crate::ExperimentOutput;
use asgd_driver::json::Value;
use asgd_driver::{BackendKind, Driver, RunSpec, SparsePathSpec};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model dimension.
    pub d: usize,
    /// Worker threads.
    pub threads: usize,
    /// `"dense"` or `"sparse"`.
    pub path: &'static str,
    /// Iteration budget (identical across paths).
    pub iterations: u64,
    /// Wall-clock seconds of the parallel section.
    pub wall_secs: f64,
    /// Iterations per second.
    pub iters_per_sec: f64,
}

fn cell_spec(d: usize, threads: usize, sparse: SparsePathSpec, iterations: u64) -> RunSpec {
    // Δ = 1 single-coordinate gradients have magnitude d·x_j, so stability
    // needs α ~ 1/d; noiseless keeps every run finite at any d.
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", d).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(threads)
    .iterations(iterations)
    .learning_rate(0.5 / d as f64)
    .x0(vec![1.0; d])
    .seed(0xD0_0D)
    .sparse(sparse)
}

/// Runs the sweep through [`Driver::run_many`] with a single-worker pool:
/// like the `speedup` experiment, the throughput columns are the output, so
/// a dense cell must not share cores with the sparse twin it is being
/// compared against.
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    if quick {
        sweep_cells(&[16, 1024], &[1, 2], 2_000)
    } else {
        sweep_cells(&[16, 1024, 65_536], &[1, 2, 4, 8], 20_000)
    }
}

/// Measures an explicit `dims × thread_counts` grid at a caller-chosen
/// iteration budget (both paths per cell, dense first). `bench-check` uses
/// this to re-measure a corner of the committed grid at the committed
/// budget, so its throughput comparison is apples-to-apples.
#[must_use]
pub fn sweep_cells(dims: &[usize], thread_counts: &[usize], iterations: u64) -> Vec<Row> {
    let mut specs = Vec::new();
    for &d in dims {
        for &threads in thread_counts {
            for path in [SparsePathSpec::Dense, SparsePathSpec::Sparse] {
                specs.push(cell_spec(d, threads, path, iterations));
            }
        }
    }
    let reports = Driver::new().workers(1).run_many(&specs);
    specs
        .iter()
        .zip(reports)
        .map(|(spec, report)| {
            let report = report.expect("sparse-scaling spec runs");
            Row {
                d: spec.oracle.dim,
                threads: spec.threads,
                path: if report.sparse_path == Some(true) {
                    "sparse"
                } else {
                    "dense"
                },
                iterations: spec.iterations,
                wall_secs: report.wall_time_secs,
                iters_per_sec: report.iterations_per_sec(),
            }
        })
        .collect()
}

/// The sparse/dense throughput ratio for each `(d, threads)` cell.
#[must_use]
pub fn speedups(rows: &[Row]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        let [dense, sparse] = pair else { continue };
        debug_assert_eq!(dense.path, "dense");
        debug_assert_eq!(sparse.path, "sparse");
        out.push((
            dense.d,
            dense.threads,
            sparse.iters_per_sec / dense.iters_per_sec,
        ));
    }
    out
}

/// Serialises the sweep to the `BENCH_sparse_path.json` value tree.
#[must_use]
pub fn to_json(rows: &[Row]) -> Value {
    Value::obj([
        ("experiment", Value::Str("sparse-scaling".to_string())),
        ("backend", Value::Str("hogwild".to_string())),
        ("oracle", Value::Str("sparse-quadratic".to_string())),
        (
            "rows",
            Value::Arr(
                rows.iter()
                    .map(|r| {
                        Value::obj([
                            ("d", Value::U64(r.d as u64)),
                            ("threads", Value::U64(r.threads as u64)),
                            ("path", Value::Str(r.path.to_string())),
                            ("iterations", Value::U64(r.iterations)),
                            ("wall_time_secs", Value::f64(r.wall_secs)),
                            ("iters_per_sec", Value::f64(r.iters_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the experiment. Non-quick runs also write `BENCH_sparse_path.json`
/// into the current directory.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("sparse_scaling");
    let rows = sweep(quick);
    let mut table = Table::new(
        "O(Δ) sparse path vs O(d) dense path: hogwild on sparse-quadratic (Δ=1), equal budgets",
        &["d", "threads", "path", "wall s", "iters/s"],
    );
    for r in &rows {
        table.row(&[
            r.d.to_string(),
            r.threads.to_string(),
            r.path.to_string(),
            format!("{:.4}", r.wall_secs),
            fmt_f(r.iters_per_sec),
        ]);
    }
    out.tables.push(table);
    for (d, threads, speedup) in speedups(&rows) {
        out.notes.push(format!(
            "d={d} n={threads}: sparse path {speedup:.1}x dense throughput"
        ));
    }
    if !quick {
        let path = std::path::Path::new("BENCH_sparse_path.json");
        match std::fs::write(path, to_json(&rows).to_json_pretty() + "\n") {
            Ok(()) => out.notes.push(format!("[json] {}", path.display())),
            Err(e) => out
                .notes
                .push(format!("[json] failed to write {}: {e}", path.display())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_both_paths_and_round_trips_json() {
        let rows = sweep(true);
        assert_eq!(rows.len(), 2 * 2 * 2, "dims × threads × paths");
        assert!(rows.iter().any(|r| r.path == "sparse"));
        assert!(rows.iter().any(|r| r.path == "dense"));
        for r in &rows {
            assert!(r.wall_secs >= 0.0);
            assert!(r.iters_per_sec > 0.0, "{r:?}");
        }
        let json = to_json(&rows).to_json();
        let back = asgd_driver::json::parse(&json).expect("valid JSON");
        assert_eq!(
            back.get("rows").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(rows.len())
        );
        // No perf assertion here (CI boxes are noisy); the committed
        // BENCH_sparse_path.json carries the full-run numbers.
        assert_eq!(speedups(&rows).len(), rows.len() / 2);
    }
}
