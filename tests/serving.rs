//! The serving subsystem's contract: coherent snapshots are exact
//! trajectory points, serving is pure observation, quiescent live reads
//! equal the final report bit for bit, cancellation under query load stays
//! inside the session latency bound, and `ServeReport` JSON round-trips
//! exactly.

use asyncsgd::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn one_thread_train(iterations: u64) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("noisy-quadratic", 6).sigma(0.3),
        BackendKind::Hogwild,
    )
    .threads(1)
    .iterations(iterations)
    .learning_rate(0.05)
    .x0(vec![1.5, -1.5, 1.0, -1.0, 0.5, -0.5])
    .seed(33)
}

#[test]
fn snapshot_reads_never_observe_a_mixed_vector() {
    // Every snapshot a client observes during a 1-thread run must equal an
    // *exact* trajectory point: the sequential backend replayed to the
    // snapshot's iteration tag reproduces its vector bit for bit. A torn
    // (mixed) vector would almost surely match no trajectory point.
    let spec = one_thread_train(3_000);
    let service = ModelService::start(&spec, 100).expect("starts");
    let reader = service.reader();
    let mut observed: BTreeMap<u64, (u64, Vec<f64>)> = BTreeMap::new();
    let mut buf = Vec::new();
    let mut last_version = 0;
    while !service.is_finished() {
        if let Some((version, iteration)) = reader.snapshot_into(&mut buf) {
            assert!(version >= last_version, "snapshot versions are monotone");
            last_version = version;
            observed.entry(version).or_insert((iteration, buf.clone()));
        }
    }
    let report = service.wait().expect("completes");
    // Include the final publication: its tag is the full iteration count.
    let last = reader.snapshot().expect("final publication");
    assert_eq!(last.iteration, report.iterations);
    observed
        .entry(last.version)
        .or_insert((last.iteration, last.values));
    assert!(!observed.is_empty(), "at least the final snapshot observed");
    for (version, (iteration, values)) in &observed {
        let replay = run_spec(
            &spec
                .clone()
                .backend(BackendKind::Sequential)
                .iterations(*iteration),
        )
        .expect("sequential replay runs");
        assert_eq!(
            replay.final_model.len(),
            values.len(),
            "version {version}: dimension"
        );
        for (j, (a, b)) in values.iter().zip(&replay.final_model).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "version {version} (iteration {iteration}) entry {j}: snapshot {a} vs x_t {b}"
            );
        }
    }
}

#[test]
fn live_reads_on_a_quiescent_model_equal_the_final_report() {
    let spec = one_thread_train(10_000).threads(3);
    let service = ModelService::start(&spec, 512).expect("starts");
    let report = service.wait().expect("completes");
    let reader = service.reader();
    let mut live = vec![0.0; reader.dimension()];
    reader.read_live(&mut live);
    for (j, (a, b)) in live.iter().zip(&report.final_model).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "entry {j}: quiescent live read {a} vs final report {b}"
        );
    }
    for j in 0..reader.dimension() {
        assert_eq!(
            reader.read_entry(j).to_bits(),
            report.final_model[j].to_bits()
        );
    }
    // The final snapshot agrees as well.
    let snap = reader.snapshot().expect("final publication");
    assert_eq!(snap.values, report.final_model);
}

#[test]
fn serving_is_pure_observation() {
    // A 1-thread hogwild run with an attached service and clients hammering
    // it stays bit-identical to the sequential baseline: reads never touch
    // RNG state or update order.
    let spec = one_thread_train(4_000);
    let sequential = run_spec(&spec.clone().backend(BackendKind::Sequential)).expect("baseline");
    for (mode, query) in [
        (ReadMode::Live, QueryKind::Predict),
        (ReadMode::Snapshot, QueryKind::DotScore),
    ] {
        let report = ServeSpec::new(spec.clone())
            .mode(mode)
            .query(query)
            .clients(4)
            .duration_secs(0.25)
            .publish_every(64)
            .run()
            .expect("serves");
        assert!(report.queries > 0, "{mode}/{query}: clients ran");
        assert!(
            report.train.stop.is_none(),
            "{mode}/{query}: training finished naturally before the window closed"
        );
        for (j, (a, b)) in sequential
            .final_model
            .iter()
            .zip(&report.train.final_model)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{mode}/{query} entry {j}: sequential {a} vs served hogwild {b}"
            );
        }
    }
}

#[test]
fn cancellation_under_serving_load_is_bounded_and_leaves_readers_usable() {
    // An effectively unbounded dense run at d = 64k (the worst-case claim
    // cost) must stop within the session latency bound even while client
    // threads are mid-query; the last published snapshot stays readable and
    // matches the cancelled report, and clients keep working afterwards.
    let d = 65_536;
    let spec = RunSpec::new(
        OracleSpec::new("sparse-quadratic", d).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(u64::MAX / 2)
    .learning_rate(1e-7)
    .x0(vec![1.0; d])
    .sparse(SparsePathSpec::Dense)
    .seed(1);
    let service = ModelService::start(&spec, 4_096).expect("starts");
    let serve_spec = ServeSpec::new(spec)
        .mode(ReadMode::Snapshot)
        .query(QueryKind::DotScore)
        .serve_seed(9);
    let stop_clients = AtomicBool::new(false);
    let (latency, report, post_cancel_queries) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..2)
            .map(|i| {
                let mut client = QueryClient::new(&service, &serve_spec, 100 + i);
                let stop_clients = &stop_clients;
                scope.spawn(move || {
                    let mut before = 0u64;
                    let mut after = 0u64;
                    while !stop_clients.load(Ordering::SeqCst) {
                        let outcome = client.query();
                        assert!(outcome.value.is_finite());
                        before += 1;
                        // Leave the trainers breathing room on small boxes.
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    // Readers must survive cancellation un-poisoned.
                    for _ in 0..16 {
                        let outcome = client.query();
                        assert!(outcome.value.is_finite());
                        after += 1;
                    }
                    (before, after)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(80));
        assert!(!service.is_finished(), "still training under load");
        let cancelled_at = Instant::now();
        service.cancel();
        let report = service.wait().expect("cancelled runs report Ok");
        let latency = cancelled_at.elapsed();
        stop_clients.store(true, Ordering::SeqCst);
        let mut mid_query = 0;
        let mut post = 0;
        for handle in clients {
            let (before, after) = handle.join().expect("client thread never poisons");
            mid_query += before;
            post += after;
        }
        assert!(mid_query > 0, "clients were querying during training");
        (latency, report, post)
    });
    assert!(
        latency <= Duration::from_millis(250),
        "cancellation under load took {latency:?}"
    );
    assert_eq!(report.stop.as_deref(), Some("cancelled"));
    assert_eq!(post_cancel_queries, 32, "every post-cancel query answered");
    // The last published snapshot is the cancelled run's final state. Its
    // tag is monotone, so it may exceed the executed count by at most the
    // thread count (a pre-cancel strided tag can include aborted claims).
    let snap = service.reader().snapshot().expect("final publication");
    assert!(
        snap.iteration >= report.iterations && snap.iteration <= report.iterations + 2,
        "final tag {} vs executed {}",
        snap.iteration,
        report.iterations
    );
    assert_eq!(snap.values, report.final_model);
}

#[test]
fn snapshot_events_stream_to_observers_in_version_order() {
    let events: Arc<std::sync::Mutex<Vec<(u64, u64)>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let observer = Arc::new(move |ev: &RunEvent| {
        if let RunEvent::SnapshotPublished { version, iteration } = ev {
            sink.lock().unwrap().push((*version, *iteration));
        }
    });
    let spec = one_thread_train(2_000);
    let service = ModelService::start_observed(&spec, 250, Some(observer)).expect("starts");
    let report = service.wait().expect("completes");
    let events = events.lock().unwrap();
    assert!(events.len() >= 2, "strided + final publications observed");
    for pair in events.windows(2) {
        assert!(
            pair[0].0 < pair[1].0,
            "versions strictly increase: {events:?}"
        );
        assert!(
            pair[0].1 <= pair[1].1,
            "iterations never regress: {events:?}"
        );
    }
    let &(_, last_iteration) = events.last().unwrap();
    assert_eq!(last_iteration, report.iterations, "final publication tag");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Registry-wide codec property in the `RunReport`/`ValidationReport`
    /// proptest style: a `ServeReport` over every oracle kind (both read
    /// modes, optional staleness, full-range integers, awkward floats)
    /// survives the JSON round trip bit for bit.
    #[test]
    fn serve_reports_round_trip_for_every_oracle_kind(
        seed in 0_u64..u64::MAX,
        queries in 1_u64..u64::MAX,
        qps in 0.0_f64..1e9,
        mean_ns in 0.0_f64..1e12,
        p50 in 0_u64..u64::MAX,
        stale_mean in 0.0_f64..1e9,
        duration in 1e-6_f64..1e4,
        stride in 1_u64..1_000_000,
    ) {
        for (i, kind) in asyncsgd::oracle::registry::known_kinds().iter().enumerate() {
            let snapshot_mode = i % 2 == 0;
            let train = RunReport {
                backend: "hogwild".to_string(),
                oracle: (*kind).to_string(),
                threads: i + 1,
                iterations: queries.rotate_left(i as u32),
                seed,
                hit_iteration: (i % 3 == 0).then_some(seed % 1_000),
                min_dist_sq: None,
                final_dist_sq: mean_ns / 1e13 + f64::MIN_POSITIVE,
                final_model: vec![0.5 + duration, -0.25, f64::EPSILON],
                wall_time_secs: duration,
                steps: None,
                fingerprint: None,
                stop: snapshot_mode.then(|| "cancelled".to_string()),
                contention: None,
                stale_rejected: None,
                sparse_path: Some(i % 2 == 1),
                shards: None,
                trajectory: None,
            };
            let report = ServeReport {
                mode: if snapshot_mode { "snapshot" } else { "live" }.to_string(),
                query: ["dot-score", "predict", "fetch"][i % 3].to_string(),
                arrival: if i % 2 == 0 {
                    "closed-loop".to_string()
                } else {
                    format!("rate:{}", qps.max(1.0))
                },
                clients: i * 7 + 1,
                publish_stride: stride,
                duration_secs: duration,
                queries,
                qps,
                latency: LatencySummary {
                    count: queries,
                    mean_ns,
                    p50_ns: p50,
                    p90_ns: p50.saturating_add(1),
                    p99_ns: p50.saturating_add(2),
                    p999_ns: p50.saturating_add(3),
                    max_ns: u64::MAX,
                },
                staleness: snapshot_mode.then(|| StalenessSummary {
                    samples: queries.min(777),
                    mean: stale_mean,
                    p50: seed % 10_000,
                    p99: seed % 100_000,
                    max: u64::MAX - 1,
                }),
                snapshots: stride.saturating_mul(3),
                train,
            };
            let back = ServeReport::from_json(&report.to_json()).expect("decodes");
            prop_assert_eq!(&back, &report, "compact round trip ({})", kind);
            let back = ServeReport::from_json(&report.to_json_pretty()).expect("decodes");
            prop_assert_eq!(&back, &report, "pretty round trip ({})", kind);
        }
    }
}
