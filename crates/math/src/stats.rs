//! Statistics used by the experiment harness.
//!
//! * [`OnlineStats`] — Welford's online mean/variance, for moment checks and
//!   trace summaries.
//! * [`WilsonInterval`] — 95% score interval for the empirical failure
//!   probability `P̂(F_T)` estimated from Bernoulli trials; every
//!   theorem-vs-measurement table reports `bound ≥ upper CI`.
//! * [`LogLogFit`] — least-squares slope in log–log space, used to test the
//!   `√(τ_max·n)` scaling law of Theorem 6.5 (slope ≈ ½) against the linear
//!   law of prior work (slope ≈ 1).

/// Welford online accumulator for mean and variance.
///
/// # Example
///
/// ```
/// use asgd_math::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+∞` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Preferred over the normal approximation because failure probabilities in
/// the convergence experiments are frequently 0 or very small, where Wald
/// intervals collapse to a useless `[0, 0]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilsonInterval {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
}

impl WilsonInterval {
    /// Computes the Wilson score interval at confidence `z` standard normal
    /// quantiles (`z = 1.96` for 95%).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `successes > trials`.
    #[must_use]
    pub fn new(successes: u64, trials: u64, z: f64) -> Self {
        assert!(trials > 0, "Wilson interval needs at least one trial");
        assert!(successes <= trials, "more successes than trials");
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        Self {
            estimate: p,
            // At p = 0 (resp. p = 1) the unclamped bound equals the estimate
            // exactly in real arithmetic, but floating-point rounding can
            // land an ulp beyond it; clamp so the interval always contains p.
            lower: (center - half).max(0.0).min(p),
            upper: (center + half).min(1.0).max(p),
        }
    }

    /// 95% Wilson interval.
    #[must_use]
    pub fn ci95(successes: u64, trials: u64) -> Self {
        Self::new(successes, trials, 1.96)
    }
}

impl std::fmt::Display for WilsonInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}]",
            self.estimate, self.lower, self.upper
        )
    }
}

/// Least-squares fit of `log(y) = slope·log(x) + intercept`.
///
/// Used to verify scaling exponents: Theorem 6.5 predicts iterations-to-
/// convergence growing like `(τ_max·n)^{1/2}`, prior work like `(τ_max)^1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLogFit {
    /// Fitted exponent.
    pub slope: f64,
    /// Fitted log-space intercept.
    pub intercept: f64,
    /// Coefficient of determination of the fit in log space.
    pub r_squared: f64,
}

impl LogLogFit {
    /// Fits the power law through `(x, y)` pairs, ignoring non-positive points
    /// (which have no logarithm).
    ///
    /// Returns `None` if fewer than two usable points remain.
    #[must_use]
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        let logged: Vec<(f64, f64)> = points
            .iter()
            .filter(|(x, y)| *x > 0.0 && *y > 0.0)
            .map(|(x, y)| (x.ln(), y.ln()))
            .collect();
        if logged.len() < 2 {
            return None;
        }
        let n = logged.len() as f64;
        let mean_x = logged.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = logged.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = logged.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
        let sxy: f64 = logged
            .iter()
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let syy: f64 = logged.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            sxy * sxy / (sxx * syy)
        };
        Some(Self {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Predicted `y` at `x` under the fitted power law.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        (self.intercept + self.slope * x.ln()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_small_case() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn wilson_contains_estimate() {
        let w = WilsonInterval::ci95(3, 10);
        assert!(w.lower <= w.estimate && w.estimate <= w.upper);
        assert!((w.estimate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn wilson_zero_successes_has_positive_upper() {
        let w = WilsonInterval::ci95(0, 100);
        assert_eq!(w.estimate, 0.0);
        assert!(w.upper > 0.0 && w.upper < 0.1);
        assert_eq!(w.lower, 0.0);
    }

    #[test]
    fn wilson_all_successes_hits_one() {
        let w = WilsonInterval::ci95(50, 50);
        assert_eq!(w.estimate, 1.0);
        assert_eq!(w.upper, 1.0);
        assert!(w.lower > 0.9);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_zero_trials_panics() {
        let _ = WilsonInterval::ci95(0, 0);
    }

    #[test]
    fn loglog_recovers_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x.powf(0.5))
            })
            .collect();
        let fit = LogLogFit::fit(&pts).unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-9, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.999_999);
        assert!((fit.predict(4.0) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn loglog_skips_nonpositive_and_degenerate() {
        assert!(LogLogFit::fit(&[(1.0, 1.0)]).is_none());
        assert!(LogLogFit::fit(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
        assert!(LogLogFit::fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none()); // sxx = 0
        let fit = LogLogFit::fit(&[(0.0, 5.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)]).unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-9);
    }

    proptest! {
        /// Welford never produces negative variance and the mean stays within
        /// [min, max].
        #[test]
        fn welford_invariants(xs in proptest::collection::vec(-1e6_f64..1e6, 1..128)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.variance() >= -1e-9);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        /// Wilson interval is ordered and inside [0, 1].
        #[test]
        fn wilson_ordered(k in 0_u64..500, extra in 1_u64..500) {
            let n = k + extra;
            let w = WilsonInterval::ci95(k, n);
            prop_assert!(0.0 <= w.lower && w.lower <= w.estimate);
            prop_assert!(w.estimate <= w.upper && w.upper <= 1.0);
        }
    }
}
