//! The session API's contract: observation is pure, cancellation is bounded,
//! pooled sweeps equal serial execution, and trajectories round-trip JSON
//! exactly.

use asyncsgd::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn base_spec() -> RunSpec {
    RunSpec::new(
        OracleSpec::new("noisy-quadratic", 3).sigma(0.2),
        BackendKind::Sequential,
    )
    .threads(1)
    .iterations(2_000)
    .learning_rate(0.05)
    .x0(vec![1.5, -1.5, 1.0])
    .scheduler(SchedulerSpec::Serial)
    .seed(21)
}

/// Counts events and records trajectory samples.
#[derive(Default)]
struct Recorder {
    started: AtomicU64,
    progress: AtomicU64,
    finished: AtomicU64,
    samples: Mutex<Vec<TrajectorySample>>,
}

impl RunObserver for Recorder {
    fn on_event(&self, event: &RunEvent) {
        match event {
            RunEvent::Started { .. } => {
                self.started.fetch_add(1, Ordering::SeqCst);
            }
            RunEvent::Progress(_) => {
                self.progress.fetch_add(1, Ordering::SeqCst);
            }
            RunEvent::TrajectorySample(sample) => {
                self.samples.lock().unwrap().push(sample.clone());
            }
            RunEvent::SnapshotPublished { .. }
            | RunEvent::DriftInjected { .. }
            | RunEvent::ShedTierChanged { .. }
            | RunEvent::QueueSaturated { .. } => {}
            RunEvent::Finished(_) => {
                self.finished.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

#[test]
fn observed_one_thread_hogwild_stays_bit_identical_to_sequential() {
    // The PR-1 invariant, now with a live observer attached to the hogwild
    // run: observation must not consume RNG state or reorder updates.
    let spec = base_spec().trajectory_every(500);
    let sequential = run_spec(&spec).expect("sequential runs");
    let recorder = Arc::new(Recorder::default());
    let ctx = SessionCtx::observed(Arc::clone(&recorder) as Arc<dyn RunObserver>);
    let hogwild =
        run_spec_session(&spec.clone().backend(BackendKind::Hogwild), &ctx).expect("hogwild runs");
    for (j, (a, b)) in sequential
        .final_model
        .iter()
        .zip(&hogwild.final_model)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "entry {j}: sequential {a} vs observed hogwild {b}"
        );
    }
    assert_eq!(recorder.started.load(Ordering::SeqCst), 1);
    assert_eq!(recorder.finished.load(Ordering::SeqCst), 1);
    assert!(recorder.progress.load(Ordering::SeqCst) >= 4);

    // Trajectory parity: same sample indices, bitwise-equal distances (both
    // observe the state with exactly `index` updates applied).
    let seq_traj = sequential.trajectory.as_ref().expect("collected");
    let hog_traj = hogwild.trajectory.as_ref().expect("collected");
    assert_eq!(
        seq_traj.iter().map(|s| s.index).collect::<Vec<_>>(),
        vec![0, 500, 1000, 1500]
    );
    assert_eq!(seq_traj.len(), hog_traj.len());
    for (a, b) in seq_traj.iter().zip(hog_traj) {
        assert_eq!(a.index, b.index);
        assert_eq!(
            a.dist_sq.to_bits(),
            b.dist_sq.to_bits(),
            "index {}: sequential {} vs hogwild {}",
            a.index,
            a.dist_sq,
            b.dist_sq
        );
    }
    // The streamed samples are the collected ones.
    assert_eq!(recorder.samples.lock().unwrap().len(), hog_traj.len());
}

/// Wall-time fields are the only legitimate difference between a pooled and
/// a serial execution of the same spec.
fn scrub_wall_time(mut report: RunReport) -> RunReport {
    report.wall_time_secs = 0.0;
    if let Some(trajectory) = &mut report.trajectory {
        for sample in trajectory {
            sample.elapsed_secs = 0.0;
        }
    }
    report
}

#[test]
fn run_many_over_the_speedup_sweep_matches_serial_backend_runs() {
    // The bench speedup sweep, serial vs pooled. Single-threaded native
    // cells are bit-deterministic, so their reports must be byte-equal
    // modulo wall time; multi-threaded cells still agree on every
    // configuration field.
    let specs = asgd_bench::experiments::speedup::specs(true);
    assert!(specs.len() >= 4, "sweep covers several cells");
    let serial: Vec<RunReport> = specs
        .iter()
        .map(|spec| run_spec(spec).expect("sweep spec runs"))
        .collect();
    let pooled = Driver::new().workers(3).run_many(&specs);
    for ((spec, serial), pooled) in specs.iter().zip(serial).zip(pooled) {
        let pooled = pooled.expect("sweep spec runs");
        assert_eq!(pooled.backend, serial.backend);
        assert_eq!(pooled.oracle, serial.oracle);
        assert_eq!(pooled.threads, serial.threads);
        assert_eq!(pooled.iterations, serial.iterations);
        assert_eq!(pooled.seed, serial.seed);
        if spec.threads == 1 {
            assert_eq!(
                scrub_wall_time(pooled),
                scrub_wall_time(serial),
                "single-threaded cell must be byte-equal modulo wall time"
            );
        }
    }
}

#[test]
fn run_many_is_byte_equal_to_serial_on_deterministic_backends() {
    let mut specs = Vec::new();
    for seed in 0..4_u64 {
        specs.push(base_spec().seed(seed).trajectory_every(700));
        specs.push(
            base_spec()
                .backend(BackendKind::SimulatedLockFree)
                .threads(3)
                .scheduler(SchedulerSpec::Random { seed })
                .seed(seed),
        );
    }
    let serial: Vec<RunReport> = specs
        .iter()
        .map(|spec| run_spec(spec).expect("spec runs"))
        .collect();
    let pooled = Driver::new().workers(2).run_many(&specs);
    for (serial, pooled) in serial.into_iter().zip(pooled) {
        assert_eq!(
            scrub_wall_time(pooled.expect("spec runs")),
            scrub_wall_time(serial)
        );
    }
}

#[test]
fn hogwild_cancellation_latency_is_bounded() {
    // A run with an effectively unbounded step budget must stop within
    // 250 ms of cancel() even at a large model dimension.
    let spec = RunSpec::new(
        OracleSpec::new("sparse-quadratic", 65_536).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(u64::MAX / 2)
    .learning_rate(1e-6)
    .x0(vec![1.0; 65_536])
    .sparse(SparsePathSpec::Dense) // O(d) per claim: the worst case
    .seed(1);
    let handle = Driver::new().submit(spec);
    std::thread::sleep(Duration::from_millis(50));
    assert!(handle.try_report().is_none(), "still running");
    let cancelled_at = Instant::now();
    handle.cancel();
    let report = handle.wait().expect("cancelled runs report Ok");
    let latency = cancelled_at.elapsed();
    assert!(
        latency <= Duration::from_millis(250),
        "cancellation took {latency:?}"
    );
    assert_eq!(report.stop.as_deref(), Some("cancelled"));
    assert!(report.iterations < u64::MAX / 2);
}

#[test]
fn simulated_backends_cancel_through_the_engine() {
    for backend in [
        BackendKind::SimulatedLockFree,
        BackendKind::SimulatedFullSgd,
    ] {
        let mut spec = base_spec()
            .backend(backend)
            .threads(2)
            .iterations(u64::MAX / 4)
            .scheduler(SchedulerSpec::RoundRobin);
        if backend == BackendKind::SimulatedFullSgd {
            spec = spec.halving(0.05, 1);
        }
        let handle = Driver::new().submit(spec);
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
        let report = handle.wait().unwrap_or_else(|e| panic!("{backend}: {e}"));
        assert_eq!(report.stop.as_deref(), Some("cancelled"), "{backend}");
    }
}

#[test]
fn sample_indices_align_across_backends_even_when_stride_divides_t() {
    // T = 2000 with stride 500: the simulated accumulator fold reaches the
    // terminal t = 2000 state, but the sample set must still match the
    // native/sequential claim indices 0..T.
    let spec = base_spec().trajectory_every(500);
    let expected = vec![0_u64, 500, 1000, 1500];
    for backend in [
        BackendKind::Sequential,
        BackendKind::SimulatedLockFree,
        BackendKind::Hogwild,
    ] {
        let report = run_spec(&spec.clone().backend(backend)).unwrap();
        let indices: Vec<u64> = report
            .trajectory
            .expect("collected")
            .iter()
            .map(|s| s.index)
            .collect();
        assert_eq!(indices, expected, "{backend}");
    }
}

#[test]
fn fullsgd_cancelled_before_the_final_epoch_reports_live_progress() {
    // Cancelled epoch runs must never report the untouched zero buffers of
    // an uninitialised final epoch as their result (x* is the origin here,
    // so a zero final_model would masquerade as perfect convergence).
    let x0 = vec![1.5, -1.5, 1.0];
    for backend in [BackendKind::NativeFullSgd, BackendKind::SimulatedFullSgd] {
        let spec = base_spec()
            .backend(backend)
            .threads(2)
            .halving(0.05, 3)
            .iterations(u64::MAX / 8)
            .scheduler(SchedulerSpec::RoundRobin);
        let cancel = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let ctx = SessionCtx::default().with_cancel(Arc::clone(&cancel));
        let report = run_spec_session(&spec, &ctx).unwrap_or_else(|e| panic!("{backend}: {e}"));
        assert_eq!(report.stop.as_deref(), Some("cancelled"), "{backend}");
        // The run stops within one stride of epoch 0: the reported model is
        // epoch 0's live state near x₀ — NOT the final epoch's zero region
        // (which would read as dist² = 0, i.e. fake-perfect convergence).
        assert!(
            report.final_model.iter().any(|&v| v != 0.0),
            "{backend}: zero buffer reported"
        );
        assert!(
            report.final_dist_sq > 0.5,
            "{backend}: dist² {} looks fake-converged",
            report.final_dist_sq
        );
        if backend == BackendKind::SimulatedFullSgd {
            // The engine checks the flag before the very first step.
            assert_eq!(report.final_model, x0, "{backend}");
        }
    }
}

#[test]
fn zero_trajectory_stride_is_rejected() {
    let spec = base_spec().trajectory_every(0);
    assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
}

#[test]
fn every_backend_collects_a_trajectory() {
    let constant = base_spec().threads(2).trajectory_every(300);
    for &backend in BackendKind::all() {
        let spec = match backend {
            BackendKind::SimulatedFullSgd | BackendKind::NativeFullSgd => {
                constant.clone().backend(backend).halving(0.05, 1)
            }
            _ => constant.clone().backend(backend),
        };
        let report = run_spec(&spec).unwrap_or_else(|e| panic!("{backend}: {e}"));
        let trajectory = report
            .trajectory
            .as_ref()
            .unwrap_or_else(|| panic!("{backend}: no trajectory"));
        assert!(!trajectory.is_empty(), "{backend}");
        assert!(
            trajectory.windows(2).all(|w| w[0].index < w[1].index),
            "{backend}: samples ordered by index"
        );
        // And the collected trajectory round-trips JSON exactly.
        assert_eq!(
            RunReport::from_json(&report.to_json()).unwrap(),
            report,
            "{backend}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Registry-wide: for every oracle kind, a run with trajectory
    /// collection produces a non-empty trajectory whose report round-trips
    /// JSON exactly (f64 distances and elapsed times included).
    #[test]
    fn reports_with_trajectories_round_trip_for_every_registry_oracle(
        seed in 0_u64..10_000,
        stride in 1_u64..40,
    ) {
        for kind in asyncsgd::oracle::registry::known_kinds() {
            let spec = RunSpec::new(
                OracleSpec::new(*kind, 6).dataset(48).batch(4).sigma(0.1),
                BackendKind::Sequential,
            )
            .iterations(80)
            .learning_rate(0.01)
            .seed(seed)
            .trajectory_every(stride);
            let report = run_spec(&spec)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let trajectory = report.trajectory.as_ref().expect("collected");
            prop_assert!(!trajectory.is_empty(), "{kind}: empty trajectory");
            prop_assert_eq!(
                trajectory.len() as u64,
                80_u64.div_ceil(stride),
                "{}: samples at every stride multiple below T", kind
            );
            let back = RunReport::from_json(&report.to_json())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            prop_assert_eq!(back, report, "{}: exact round trip", kind);
        }
    }
}
