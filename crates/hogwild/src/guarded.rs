//! Op-level epoch guard: `(epoch, value)` packed into one atomic word.
//!
//! §7 of the paper requires that "a gradient update can only be applied to X
//! in the same epoch when it was generated", naming double-compare-single-
//! swap (DCAS) as one enforcement mechanism. DCAS does not exist on
//! commodity hardware, but packing a 32-bit epoch tag and an `f32` value
//! into one 64-bit word makes a single-word CAS express exactly the DCAS
//! condition — at the cost of `f32` precision. [`GuardedModel`] implements
//! this variant; the main Algorithm-2 implementations use the paper's other
//! sanctioned mechanism (distinct model per epoch, full `f64`), and this
//! type exists to demonstrate and test the guard semantics at the op level.

use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when an update is rejected because its epoch tag does not
/// match the entry's current epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleEpochError {
    /// Epoch the update was generated in.
    pub update_epoch: u32,
    /// Epoch the entry is currently in.
    pub current_epoch: u32,
}

impl std::fmt::Display for StaleEpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale update from epoch {} rejected (entry is in epoch {})",
            self.update_epoch, self.current_epoch
        )
    }
}

impl std::error::Error for StaleEpochError {}

fn pack(epoch: u32, value: f32) -> u64 {
    (u64::from(epoch) << 32) | u64::from(value.to_bits())
}

fn unpack(word: u64) -> (u32, f32) {
    ((word >> 32) as u32, f32::from_bits(word as u32))
}

/// A model whose every entry carries an epoch tag enforced on each update —
/// the single-word-CAS rendition of the paper's DCAS epoch guard.
#[derive(Debug)]
pub struct GuardedModel {
    entries: Vec<AtomicU64>,
}

impl GuardedModel {
    /// Creates a model at epoch 0 initialised to `x0` (values narrowed to
    /// `f32`).
    #[must_use]
    pub fn new(x0: &[f64]) -> Self {
        Self {
            entries: x0
                .iter()
                .map(|&v| AtomicU64::new(pack(0, v as f32)))
                .collect(),
        }
    }

    /// Model dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.entries.len()
    }

    /// Reads `(epoch, value)` of entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[must_use]
    pub fn read(&self, j: usize) -> (u32, f32) {
        unpack(self.entries[j].load(Ordering::SeqCst))
    }

    /// Epoch-guarded `fetch&add`: adds `delta` to entry `j` **only if** the
    /// entry is still in `epoch`. Returns the prior value on success.
    ///
    /// # Errors
    ///
    /// Returns [`StaleEpochError`] if the entry has moved to a different
    /// epoch — the stale update is dropped, which is the whole point of the
    /// guard.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn guarded_add(&self, j: usize, epoch: u32, delta: f32) -> Result<f32, StaleEpochError> {
        let entry = &self.entries[j];
        let mut current = entry.load(Ordering::SeqCst);
        loop {
            let (cur_epoch, cur_value) = unpack(current);
            if cur_epoch != epoch {
                return Err(StaleEpochError {
                    update_epoch: epoch,
                    current_epoch: cur_epoch,
                });
            }
            let new = pack(epoch, cur_value + delta);
            match entry.compare_exchange_weak(current, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Ok(cur_value),
                Err(actual) => current = actual,
            }
        }
    }

    /// Advances entry `j` to `new_epoch`, carrying its value over — the
    /// epoch-transition step (performed entry-wise by whichever thread
    /// starts the new epoch).
    ///
    /// # Errors
    ///
    /// Returns [`StaleEpochError`] if the entry is not in `from_epoch`
    /// anymore (someone else already advanced it).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn advance_epoch(
        &self,
        j: usize,
        from_epoch: u32,
        new_epoch: u32,
    ) -> Result<(), StaleEpochError> {
        let entry = &self.entries[j];
        let mut current = entry.load(Ordering::SeqCst);
        loop {
            let (cur_epoch, cur_value) = unpack(current);
            if cur_epoch != from_epoch {
                return Err(StaleEpochError {
                    update_epoch: from_epoch,
                    current_epoch: cur_epoch,
                });
            }
            let new = pack(new_epoch, cur_value);
            match entry.compare_exchange_weak(current, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Snapshot of all values (epochs discarded).
    #[must_use]
    pub fn snapshot_values(&self) -> Vec<f32> {
        self.entries
            .iter()
            .map(|e| unpack(e.load(Ordering::SeqCst)).1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        for (e, v) in [(0u32, 0.0f32), (7, -1.25), (u32::MAX, f32::MAX)] {
            let (e2, v2) = unpack(pack(e, v));
            assert_eq!(e, e2);
            assert_eq!(v.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn same_epoch_updates_accumulate() {
        let m = GuardedModel::new(&[1.0]);
        assert_eq!(m.guarded_add(0, 0, 0.5), Ok(1.0));
        assert_eq!(m.guarded_add(0, 0, 0.25), Ok(1.5));
        assert_eq!(m.read(0), (0, 1.75));
        assert_eq!(m.dimension(), 1);
    }

    #[test]
    fn stale_epoch_update_is_dropped() {
        let m = GuardedModel::new(&[2.0]);
        m.advance_epoch(0, 0, 1).unwrap();
        let err = m.guarded_add(0, 0, 100.0).unwrap_err();
        assert_eq!(err.update_epoch, 0);
        assert_eq!(err.current_epoch, 1);
        assert!(err.to_string().contains("stale update"));
        // Value untouched, epoch-1 updates proceed.
        assert_eq!(m.read(0), (1, 2.0));
        assert_eq!(m.guarded_add(0, 1, 1.0), Ok(2.0));
    }

    #[test]
    fn advance_epoch_is_exactly_once() {
        let m = GuardedModel::new(&[3.0]);
        assert!(m.advance_epoch(0, 0, 1).is_ok());
        assert!(m.advance_epoch(0, 0, 1).is_err(), "second advance rejected");
    }

    #[test]
    fn concurrent_guarded_adds_conserve_within_epoch() {
        let m = Arc::new(GuardedModel::new(&[0.0]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        m.guarded_add(0, 0, 1.0).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.read(0), (0, 40_000.0));
    }

    #[test]
    fn concurrent_epoch_transition_drops_exactly_the_stale_tail() {
        // Writers add in epoch 0 while one thread advances the epoch; every
        // successful add is reflected, every failed add is not: the final
        // value equals the number of Ok(_) results.
        let m = Arc::new(GuardedModel::new(&[0.0]));
        let oks = std::thread::scope(|s| {
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        let mut oks = 0u32;
                        for _ in 0..50_000 {
                            if m.guarded_add(0, 0, 1.0).is_ok() {
                                oks += 1;
                            }
                        }
                        oks
                    })
                })
                .collect();
            let advancer = {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    // Let some writes land first.
                    std::thread::yield_now();
                    m.advance_epoch(0, 0, 1).expect("sole advancer");
                })
            };
            advancer.join().unwrap();
            writers.into_iter().map(|w| w.join().unwrap()).sum::<u32>()
        });
        let (epoch, value) = m.read(0);
        assert_eq!(epoch, 1);
        assert_eq!(value, oks as f32, "value reflects exactly the accepted adds");
    }
}
