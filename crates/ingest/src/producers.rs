//! Heterogeneous producer fleets: who feeds the stream, and how fast.
//!
//! Modeled on the discrete-event worker simulations of the asynchronous-
//! SGD literature (each worker draws its compute time from its own
//! distribution), but inverted for ingest: here the per-worker
//! distribution is the *inter-observation delay* — a fast ingester pushes
//! back-to-back, a slow one trickles. A fleet mixing both is what makes
//! backpressure policies interesting: the fast producers fill the queue,
//! the slow ones arrive to find it full.

use crate::drift::GroundTruth;
use asgd_oracle::Observation;
use rand::{Rng, RngCore};
use std::sync::Arc;
use std::time::Duration;

/// Per-producer inter-observation delay distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayDist {
    /// No delay: push as fast as the transport allows.
    None,
    /// A fixed pause between observations.
    Fixed(Duration),
    /// Uniform in `[lo, hi]` — jittered producers desynchronize.
    Uniform(Duration, Duration),
}

impl DelayDist {
    /// Draws one delay.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Duration {
        match self {
            Self::None => Duration::ZERO,
            Self::Fixed(d) => *d,
            Self::Uniform(lo, hi) => {
                let (lo, hi) = (lo.as_nanos() as u64, hi.as_nanos() as u64);
                if hi <= lo {
                    return Duration::from_nanos(lo);
                }
                Duration::from_nanos(rng.gen_range(lo..hi))
            }
        }
    }
}

/// One producer's behaviour: its pace and how sparse its observations are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProducerSpec {
    /// Inter-observation delay distribution.
    pub delay: DelayDist,
    /// Nonzero feature coordinates per observation (clamped to `[1, d]`).
    pub sparsity: usize,
}

impl ProducerSpec {
    /// A full-throttle producer.
    #[must_use]
    pub fn fast(sparsity: usize) -> Self {
        Self {
            delay: DelayDist::None,
            sparsity,
        }
    }

    /// A trickling producer with jittered delays around `mean`.
    #[must_use]
    pub fn slow(mean: Duration, sparsity: usize) -> Self {
        Self {
            delay: DelayDist::Uniform(mean / 2, mean * 2),
            sparsity,
        }
    }
}

/// A heterogeneous fleet: `n` producers alternating fast and slow, the
/// slow ones pausing around `slow_mean` between observations.
#[must_use]
pub fn heterogeneous_fleet(n: usize, slow_mean: Duration, sparsity: usize) -> Vec<ProducerSpec> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                ProducerSpec::fast(sparsity)
            } else {
                ProducerSpec::slow(slow_mean, sparsity)
            }
        })
        .collect()
}

/// Deterministic observation generator: draws a sparse probe, labels it
/// against the shared (drifting) [`GroundTruth`], adds optional label
/// noise. Each producer owns one, seeded from its own child seed, so a
/// fleet is reproducible per (seed, producer index).
#[derive(Debug)]
pub struct ObservationGen {
    ground: Arc<GroundTruth>,
    dim: usize,
    sparsity: usize,
    label_noise: f64,
}

impl ObservationGen {
    /// A generator over `ground` with `sparsity` nonzeros per observation
    /// and uniform label noise in `[-label_noise, label_noise]`.
    #[must_use]
    pub fn new(ground: Arc<GroundTruth>, sparsity: usize, label_noise: f64) -> Self {
        let dim = ground.dimension().max(1);
        Self {
            ground,
            dim,
            sparsity: sparsity.clamp(1, dim),
            label_noise,
        }
    }

    /// Draws one labeled observation from the current world.
    pub fn next(&self, rng: &mut dyn RngCore) -> Observation {
        let theta = self.ground.current();
        let mut features = Vec::with_capacity(self.sparsity);
        for _ in 0..self.sparsity {
            let idx = rng.gen_range(0..self.dim as u32);
            // Repeated indices are fine: the residual treats the pair as
            // one accumulated coordinate, exactly like a dense probe.
            let value = rng.gen_range(-1.0..1.0);
            features.push((idx, value));
        }
        let mut label: f64 = features
            .iter()
            .map(|&(idx, v)| theta[idx as usize] * v)
            .sum();
        if self.label_noise > 0.0 {
            label += rng.gen_range(-self.label_noise..self.label_noise);
        }
        Observation::new(features, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delays_sample_within_their_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(DelayDist::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            DelayDist::Fixed(Duration::from_micros(5)).sample(&mut rng),
            Duration::from_micros(5)
        );
        let dist = DelayDist::Uniform(Duration::from_micros(10), Duration::from_micros(20));
        for _ in 0..100 {
            let d = dist.sample(&mut rng);
            assert!(d >= Duration::from_micros(10) && d < Duration::from_micros(20));
        }
        // Degenerate bounds collapse to the lower edge.
        let flat = DelayDist::Uniform(Duration::from_micros(9), Duration::from_micros(9));
        assert_eq!(flat.sample(&mut rng), Duration::from_micros(9));
    }

    #[test]
    fn heterogeneous_fleets_alternate_fast_and_slow() {
        let fleet = heterogeneous_fleet(4, Duration::from_micros(100), 3);
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[0].delay, DelayDist::None);
        assert!(matches!(fleet[1].delay, DelayDist::Uniform(..)));
        assert_eq!(fleet[2].delay, DelayDist::None);
        assert!(fleet.iter().all(|p| p.sparsity == 3));
    }

    #[test]
    fn observations_are_labeled_against_the_current_world() {
        let ground = Arc::new(GroundTruth::new(vec![2.0; 8]));
        let gen = ObservationGen::new(Arc::clone(&ground), 4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let obs = gen.next(&mut rng);
            assert_eq!(obs.features.len(), 4);
            assert!(obs.fits(8));
            // Noise-free labels are exactly θ*·w.
            let expect: f64 = obs.features.iter().map(|&(_, v)| 2.0 * v).sum();
            assert!((obs.label - expect).abs() < 1e-12);
        }
        // After drift, fresh observations teach the new world.
        ground.apply(&crate::drift::DriftKind::Negate);
        let obs = gen.next(&mut rng);
        let expect: f64 = obs.features.iter().map(|&(_, v)| -2.0 * v).sum();
        assert!((obs.label - expect).abs() < 1e-12);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let ground = Arc::new(GroundTruth::new(vec![1.0; 4]));
        let gen = ObservationGen::new(ground, 2, 0.1);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| gen.next(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| gen.next(&mut rng)).collect()
        };
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.features, y.features);
            assert!((x.label - y.label).abs() == 0.0);
        }
    }
}
